//! Cross-shard reconciliation: batched realization of the interactions whose
//! responder and initiator live in different shards.
//!
//! A cross block `(a, b)` is a quota of interactions with the responder drawn
//! uniformly from shard `a` and the initiator uniformly from shard `b`.  The
//! sampler below realizes such a block the same way [`crate::BatchedEngine`]
//! realizes a single-population run: it computes the weight of *productive*
//! ordered category pairs (responder categories weighted by shard `a`'s live
//! counts, initiator categories by shard `b`'s reconcile-pass snapshot), skips the
//! geometrically distributed null prefix, and draws each state-changing event
//! from the exact conditional distribution — `O(k²)` per event, never per
//! interaction.  Responder updates are applied to shard `a`'s counts as they
//! happen, so consecutive events within one block see each other; the
//! initiator side stays frozen at its snapshot (taken at the start of the
//! reconcile pass, after the epoch's intra-shard advancement), which is the
//! sharded engine's documented approximation.

use crate::config::Configuration;
use crate::engine::{geometric_skip, uniform_u128_below};
use crate::opinion::AgentState;
use crate::protocol::OpinionProtocol;
use rand::Rng;

/// Total weight of productive ordered category pairs with the responder drawn
/// from `responder` and the initiator from `initiator` (the two may be the
/// same configuration, which yields the single-population weight).
pub(crate) fn cross_productive_weight<P: OpinionProtocol>(
    protocol: &P,
    responder: &Configuration,
    initiator: &Configuration,
) -> u128 {
    let k = responder.num_opinions();
    let mut total = 0u128;
    for cat in 0..=k {
        total += productive_row(protocol, responder, initiator, cat);
    }
    total
}

/// Weight of productive pairs whose responder lies in category `cat`:
/// `c_cat · Σ_{i : productive(cat, i)} d_i`.  Also the single-population row
/// weight when `responder` and `initiator` are the same configuration —
/// `BatchedEngine`'s enumeration fallback delegates here so the two engines
/// can never drift apart.
pub(crate) fn productive_row<P: OpinionProtocol>(
    protocol: &P,
    responder: &Configuration,
    initiator: &Configuration,
    cat: usize,
) -> u128 {
    let k = responder.num_opinions();
    let c_cat = u128::from(responder.category_count(cat));
    if c_cat == 0 {
        return 0;
    }
    let responder_state = AgentState::from_category(cat, k);
    let mut productive_initiators = 0u128;
    for i in 0..=k {
        let d_i = initiator.category_count(i);
        if d_i == 0 {
            continue;
        }
        if protocol.respond(responder_state, AgentState::from_category(i, k)) != responder_state {
            productive_initiators += u128::from(d_i);
        }
    }
    c_cat * productive_initiators
}

/// Realizes a cross block of `quota` interactions (responder side `responder`,
/// initiator side `initiator`), applying every state-changing responder
/// update to `responder`.  Returns the number of events applied; the whole
/// quota is always consumed (events plus skipped nulls).
pub(crate) fn reconcile_cross_block<P: OpinionProtocol, R: Rng + ?Sized>(
    protocol: &P,
    responder: &mut Configuration,
    initiator: &Configuration,
    quota: u64,
    rows: &mut Vec<u128>,
    rng: &mut R,
) -> u64 {
    let k = responder.num_opinions();
    debug_assert_eq!(k, initiator.num_opinions(), "shards disagree on k");
    let pair_weight = u128::from(responder.population()) * u128::from(initiator.population());
    let mut remaining = quota;
    let mut events = 0u64;
    while remaining > 0 {
        rows.clear();
        let mut total = 0u128;
        for cat in 0..=k {
            let row = productive_row(protocol, responder, initiator, cat);
            rows.push(row);
            total += row;
        }
        if total == 0 {
            // Every remaining interaction in the block is null.
            break;
        }
        let p = total as f64 / pair_weight as f64;
        let Some(skip) = geometric_skip(rng, p, remaining) else {
            // The next event falls beyond the block; the rest is null.
            break;
        };
        remaining -= skip + 1;

        // One uniform draw below `total` decomposes into (responder category,
        // initiator unit) exactly as in `BatchedEngine::advance`: the row
        // scan picks the category, and the remainder modulo the row's
        // initiator weight is an exact uniform draw of the initiator unit.
        let mut target = uniform_u128_below(rng, total);
        let mut responder_cat = k;
        for (cat, &row) in rows.iter().enumerate() {
            if target < row {
                responder_cat = cat;
                break;
            }
            target -= row;
        }
        let responder_state = AgentState::from_category(responder_cat, k);
        let c_responder = u128::from(responder.category_count(responder_cat));
        debug_assert!(c_responder > 0);
        let initiator_total = rows[responder_cat] / c_responder;
        let mut itarget = target % initiator_total;

        let mut initiator_state = AgentState::Undecided;
        for i in 0..=k {
            let d_i = initiator.category_count(i);
            if d_i == 0 {
                continue;
            }
            let candidate = AgentState::from_category(i, k);
            if protocol.respond(responder_state, candidate) == responder_state {
                continue;
            }
            if itarget < u128::from(d_i) {
                initiator_state = candidate;
                break;
            }
            itarget -= u128::from(d_i);
        }

        let new_state = protocol.respond(responder_state, initiator_state);
        debug_assert_ne!(
            new_state, responder_state,
            "sampled event must be productive"
        );
        responder
            .apply_move(responder_state, new_state)
            .expect("cross-shard transition produced an inconsistent move");
        events += 1;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimSeed;

    /// The 2-opinion USD.
    struct Usd2;

    impl OpinionProtocol for Usd2 {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
    }

    /// Always productive: decided responders flip opinion on every
    /// interaction, undecided responders adopt opinion 0.
    struct Cycle;

    impl OpinionProtocol for Cycle {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, _i: AgentState) -> AgentState {
            match r {
                AgentState::Decided(o) => AgentState::decided(1 - o.index()),
                AgentState::Undecided => AgentState::decided(0),
            }
        }
    }

    #[test]
    fn fully_productive_block_realizes_every_interaction() {
        // Under `Cycle` every ordered pair is productive, so the block must
        // realize its whole quota as events.
        let mut responder = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let initiator = Configuration::from_counts(vec![0, 50], 0).unwrap();
        let mut rows = Vec::new();
        let mut rng = SimSeed::from_u64(1).rng();
        let events =
            reconcile_cross_block(&Cycle, &mut responder, &initiator, 6, &mut rows, &mut rng);
        assert_eq!(events, 6);
        assert_eq!(responder.population(), 10);
        assert!(responder.is_consistent());
    }

    #[test]
    fn all_null_block_applies_nothing() {
        // Same opinion on both sides: nothing can change.
        let mut responder = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let initiator = Configuration::from_counts(vec![20, 0], 0).unwrap();
        let mut rows = Vec::new();
        let mut rng = SimSeed::from_u64(2).rng();
        let before = responder.clone();
        let events = reconcile_cross_block(
            &Usd2,
            &mut responder,
            &initiator,
            1_000,
            &mut rows,
            &mut rng,
        );
        assert_eq!(events, 0);
        assert_eq!(responder, before);
    }

    #[test]
    fn block_conserves_the_responder_population() {
        let mut responder = Configuration::from_counts(vec![30, 20], 10).unwrap();
        let initiator = Configuration::from_counts(vec![5, 40], 15).unwrap();
        let mut rows = Vec::new();
        let mut rng = SimSeed::from_u64(3).rng();
        let events =
            reconcile_cross_block(&Usd2, &mut responder, &initiator, 500, &mut rows, &mut rng);
        assert!(events > 0, "a mixed block should produce events");
        assert_eq!(responder.population(), 60);
        assert!(responder.is_consistent());
    }

    #[test]
    fn cross_weight_matches_manual_enumeration() {
        // responder (3, 4, u=2), initiator (5, 0, u=1) under the USD:
        // productive pairs: 0-responder meets 1-initiator (none: d_1 = 0),
        // 1-responder meets 0-initiator (4·5), undecided meets decided
        // (2·5).  Plus 0-responder meets 1-initiator = 3·0 = 0.
        let responder = Configuration::from_counts(vec![3, 4], 2).unwrap();
        let initiator = Configuration::from_counts(vec![5, 0], 1).unwrap();
        assert_eq!(
            cross_productive_weight(&Usd2, &responder, &initiator),
            4 * 5 + 2 * 5
        );
    }

    #[test]
    fn event_rate_matches_the_block_probability() {
        // p = W / (n_a · n_b); over many unit blocks the event frequency must
        // match (each quota-1 block realizes an event with probability p).
        let responder = Configuration::from_counts(vec![30, 20], 10).unwrap();
        let initiator = Configuration::from_counts(vec![25, 25], 10).unwrap();
        let w = cross_productive_weight(&Usd2, &responder, &initiator) as f64;
        let p = w / (60.0 * 60.0);
        let mut rng = SimSeed::from_u64(7).rng();
        let mut rows = Vec::new();
        let trials = 40_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            let mut fresh = responder.clone();
            hits += reconcile_cross_block(&Usd2, &mut fresh, &initiator, 1, &mut rows, &mut rng);
        }
        let freq = hits as f64 / trials as f64;
        assert!(
            (freq - p).abs() < 0.01,
            "event frequency {freq} vs probability {p}"
        );
    }
}
