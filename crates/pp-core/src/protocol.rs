//! Protocol traits.
//!
//! Two levels of generality are provided:
//!
//! * [`PairwiseProtocol`] — a general population protocol over an arbitrary
//!   state type: the transition function `δ : Q² → Q²` may update both the
//!   responder and the initiator.
//! * [`OpinionProtocol`] — the specialization used by the paper and by every
//!   opinion dynamic in this repository: the state space is
//!   `{opinion 1..k, ⊥}` ([`AgentState`]) and only the responder updates.
//!   Every `OpinionProtocol` is automatically a `PairwiseProtocol`, and it is
//!   the interface the fast count-based simulator requires.

use crate::config::Configuration;
use crate::opinion::AgentState;

/// A general population protocol with transition function `δ : Q² → Q²`.
///
/// An interaction is an ordered pair *(responder, initiator)*; `transition`
/// returns the new states of the responder and the initiator in that order.
pub trait PairwiseProtocol {
    /// The agent state type `Q`.
    type State: Copy + Eq;

    /// Applies the transition function to the pair *(responder, initiator)*.
    fn transition(
        &self,
        responder: Self::State,
        initiator: Self::State,
    ) -> (Self::State, Self::State);

    /// A short human-readable protocol name used in reports.
    fn name(&self) -> &str {
        "unnamed protocol"
    }
}

/// A *one-way* opinion dynamic over the state space `{1..k, ⊥}`: in an
/// interaction only the responder updates, as in the paper's USD.
///
/// Implementors only define [`respond`](OpinionProtocol::respond); the blanket
/// [`PairwiseProtocol`] implementation keeps the initiator unchanged.
///
/// # Examples
///
/// ```
/// use pp_core::{AgentState, OpinionProtocol};
///
/// /// The Voter dynamic: the responder always adopts the initiator's opinion.
/// struct Voter { k: usize }
///
/// impl OpinionProtocol for Voter {
///     fn num_opinions(&self) -> usize { self.k }
///     fn respond(&self, responder: AgentState, initiator: AgentState) -> AgentState {
///         match initiator {
///             AgentState::Decided(_) => initiator,
///             AgentState::Undecided => responder,
///         }
///     }
/// }
/// ```
pub trait OpinionProtocol {
    /// The number of opinions `k` the protocol is configured for.
    fn num_opinions(&self) -> usize;

    /// New state of the responder after interacting with `initiator`.
    fn respond(&self, responder: AgentState, initiator: AgentState) -> AgentState;

    /// A short human-readable protocol name used in reports.
    fn name(&self) -> &str {
        "unnamed opinion protocol"
    }

    /// Returns `true` if an interaction between agents in the two given states
    /// is *productive*, i.e. changes the responder's state.
    fn is_productive(&self, responder: AgentState, initiator: AgentState) -> bool {
        self.respond(responder, initiator) != responder
    }

    /// Total weight of *null* ordered category pairs in `config`: the sum of
    /// `c_r · c_i` over all ordered pairs of categories `(r, i)` whose
    /// interaction leaves the responder unchanged (categories `0..k` are the
    /// opinions, `k` is `⊥`; `c` is the category count).  Dividing by `n²`
    /// gives the probability that the next interaction is null.
    ///
    /// This is the opt-in hook for [`crate::engine::BatchedEngine`]'s
    /// skip-ahead: protocols with a closed form (USD, Voter) override it so
    /// the engine can compute the null probability in `O(k)` instead of
    /// enumerating all `(k+1)²` category pairs.  The conservative default
    /// returns `None`, meaning "no closed form known" — the engine then
    /// derives the weight by enumeration, which is exact but `O(k²)` per
    /// state-changing event.  Overrides must match the enumeration exactly;
    /// the engine cross-checks this in debug builds.
    fn null_interaction_weight(&self, config: &Configuration) -> Option<u128> {
        let _ = config;
        None
    }

    /// Weight of *productive* ordered pairs whose responder lies in
    /// `responder_category`: `c_cat · Σ_{i : productive(cat, i)} c_i`.
    ///
    /// Companion hook to
    /// [`null_interaction_weight`](OpinionProtocol::null_interaction_weight):
    /// the batched engine samples the responder category of the next
    /// state-changing event proportionally to these weights.  The
    /// conservative default returns `None` (engine enumerates in `O(k)` per
    /// category); closed-form overrides bring one event down to `O(k)`
    /// total.
    fn productive_responder_weight(
        &self,
        config: &Configuration,
        responder_category: usize,
    ) -> Option<u128> {
        let _ = (config, responder_category);
        None
    }

    /// The productivity table behind the *delta rule* for incremental row
    /// maintenance: a flat row-major `(k+1)×(k+1)` boolean matrix whose entry
    /// `[cat·(k+1) + i]` says whether an initiator in category `i` changes a
    /// responder in category `cat` (categories `0..k` are the opinions, `k`
    /// is `⊥`).
    ///
    /// Because [`respond`](OpinionProtocol::respond) is a pure function of
    /// the two agent states, productivity is independent of the counts, so
    /// the per-category row weight factors as `row_cat = c_cat · S_cat` with
    /// `S_cat = Σ_{i : matrix[cat][i]} c_i`.  A state-changing event moves
    /// exactly one agent `from → to`, which shifts every `S_cat` by
    /// `[matrix[cat][to]] − [matrix[cat][from]]` — the engine patches its
    /// row table in `O(k)` exact integer adds per event, with no protocol
    /// calls, and the patched table is bit-identical to a full rebuild.
    ///
    /// The default derives the matrix from `respond` once per engine, so
    /// every `OpinionProtocol` opts into incremental maintenance
    /// automatically.  Return `None` only if productivity is *not* a pure
    /// function of the category pair (e.g. a protocol whose `respond`
    /// consults interior mutability); the engine then rebuilds the rows from
    /// the counts on every event, as before.
    fn productivity_matrix(&self) -> Option<Vec<bool>> {
        let k = self.num_opinions();
        let mut matrix = vec![false; (k + 1) * (k + 1)];
        for cat in 0..=k {
            let responder = AgentState::from_category(cat, k);
            for i in 0..=k {
                matrix[cat * (k + 1) + i] =
                    self.is_productive(responder, AgentState::from_category(i, k));
            }
        }
        Some(matrix)
    }
}

impl<P: OpinionProtocol> PairwiseProtocol for P {
    type State = AgentState;

    fn transition(&self, responder: AgentState, initiator: AgentState) -> (AgentState, AgentState) {
        (self.respond(responder, initiator), initiator)
    }

    fn name(&self) -> &str {
        OpinionProtocol::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Opinion;

    struct AdoptAlways {
        k: usize,
    }

    impl OpinionProtocol for AdoptAlways {
        fn num_opinions(&self) -> usize {
            self.k
        }
        fn respond(&self, responder: AgentState, initiator: AgentState) -> AgentState {
            match initiator {
                AgentState::Decided(_) => initiator,
                AgentState::Undecided => responder,
            }
        }
        fn name(&self) -> &str {
            "adopt-always"
        }
    }

    #[test]
    fn blanket_pairwise_impl_keeps_initiator_fixed() {
        let p = AdoptAlways { k: 3 };
        let (r, i) = PairwiseProtocol::transition(
            &p,
            AgentState::Undecided,
            AgentState::Decided(Opinion::new(2)),
        );
        assert_eq!(r, AgentState::decided(2));
        assert_eq!(i, AgentState::decided(2));
    }

    #[test]
    fn is_productive_detects_state_changes() {
        let p = AdoptAlways { k: 2 };
        assert!(p.is_productive(AgentState::decided(0), AgentState::decided(1)));
        assert!(!p.is_productive(AgentState::decided(0), AgentState::Undecided));
    }

    #[test]
    fn default_productivity_matrix_matches_is_productive() {
        let p = AdoptAlways { k: 3 };
        let k = p.num_opinions();
        let matrix = p.productivity_matrix().expect("default opts in");
        assert_eq!(matrix.len(), (k + 1) * (k + 1));
        for cat in 0..=k {
            for i in 0..=k {
                assert_eq!(
                    matrix[cat * (k + 1) + i],
                    p.is_productive(
                        AgentState::from_category(cat, k),
                        AgentState::from_category(i, k)
                    ),
                    "matrix disagrees with is_productive at ({cat}, {i})"
                );
            }
        }
    }

    #[test]
    fn names_propagate_through_blanket_impl() {
        let p = AdoptAlways { k: 2 };
        assert_eq!(OpinionProtocol::name(&p), "adopt-always");
        assert_eq!(PairwiseProtocol::name(&p), "adopt-always");
    }
}
