//! Trace recording.
//!
//! Simulators accept a [`Recorder`] that observes the configuration as the
//! run progresses.  [`TraceRecorder`] keeps periodic snapshots (used by the
//! phase-table and undecided-bound experiments); [`NullRecorder`] records
//! nothing and compiles away.

use crate::config::Configuration;
use serde::{Deserialize, Serialize};

/// A point-in-time view of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Number of interactions performed so far.
    pub interactions: u64,
    /// The configuration at that time.
    pub configuration: Configuration,
}

impl Snapshot {
    /// Parallel time of the snapshot: interactions divided by `n`.
    #[must_use]
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.configuration.population() as f64
    }
}

/// Observes a simulation run.
///
/// `record` is called once with the initial configuration (at 0 interactions)
/// and then after every interaction; implementations decide what to keep.
pub trait Recorder {
    /// Called after `interactions` interactions with the current configuration.
    fn record(&mut self, interactions: u64, config: &Configuration);
}

/// A recorder that keeps nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _interactions: u64, _config: &Configuration) {}
}

/// Keeps a snapshot every `every` interactions, plus the most recent
/// observation (so the final state of a run is always available) — memory use
/// is one snapshot per period regardless of run length.
///
/// # Examples
///
/// ```
/// use pp_core::{Configuration, Recorder, TraceRecorder};
///
/// let mut rec = TraceRecorder::every(10);
/// let c = Configuration::uniform(100, 2).unwrap();
/// for t in 0..=25 {
///     rec.record(t, &c);
/// }
/// // Periodic snapshots at 0, 10, 20 plus the final observation at 25.
/// let all = rec.into_snapshots();
/// assert_eq!(all.len(), 4);
/// assert_eq!(all.last().unwrap().interactions, 25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    every: u64,
    snapshots: Vec<Snapshot>,
    latest: Option<Snapshot>,
}

impl TraceRecorder {
    /// Creates a recorder that keeps one snapshot every `every` interactions.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    #[must_use]
    pub fn every(every: u64) -> Self {
        assert!(every > 0, "snapshot period must be positive");
        TraceRecorder {
            every,
            snapshots: Vec::new(),
            latest: None,
        }
    }

    /// A sensible default period for a population of size `n`: one snapshot
    /// per `max(n/10, 1)` interactions (ten per unit of parallel time).
    #[must_use]
    pub fn per_parallel_time(n: u64) -> Self {
        TraceRecorder::every((n / 10).max(1))
    }

    /// The periodic snapshots recorded so far, in chronological order.
    ///
    /// The most recent non-periodic observation is *not* included; use
    /// [`TraceRecorder::into_snapshots`] or [`TraceRecorder::latest`] for it.
    #[must_use]
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// The most recent observation, if it is newer than the last periodic
    /// snapshot.
    #[must_use]
    pub fn latest(&self) -> Option<&Snapshot> {
        self.latest.as_ref()
    }

    /// Consumes the recorder and returns all snapshots (periodic ones followed
    /// by the final observation if it is newer).
    #[must_use]
    pub fn into_snapshots(self) -> Vec<Snapshot> {
        let mut v = self.snapshots;
        if let Some(last) = self.latest {
            if v.last().is_none_or(|s| s.interactions < last.interactions) {
                v.push(last);
            }
        }
        v
    }

    /// Iterates over all recorded snapshots (periodic plus latest).
    pub fn iter(&self) -> impl Iterator<Item = &Snapshot> {
        self.snapshots.iter().chain(self.latest.iter().filter(|l| {
            self.snapshots
                .last()
                .is_none_or(|s| s.interactions < l.interactions)
        }))
    }

    /// The maximum number of undecided agents seen across recorded snapshots.
    #[must_use]
    pub fn max_undecided(&self) -> Option<u64> {
        self.iter().map(|s| s.configuration.undecided()).max()
    }

    /// The minimum number of undecided agents seen across recorded snapshots
    /// at or after the given interaction count (used for the Lemma 4
    /// lower-bound check).
    #[must_use]
    pub fn min_undecided_after(&self, after: u64) -> Option<u64> {
        self.iter()
            .filter(|s| s.interactions >= after)
            .map(|s| s.configuration.undecided())
            .min()
    }
}

impl Recorder for TraceRecorder {
    fn record(&mut self, interactions: u64, config: &Configuration) {
        if interactions.is_multiple_of(self.every) {
            self.snapshots.push(Snapshot {
                interactions,
                configuration: config.clone(),
            });
            self.latest = None;
        } else {
            self.latest = Some(Snapshot {
                interactions,
                configuration: config.clone(),
            });
        }
    }
}

/// Both recorders of a pair observe the run (e.g. a trace plus a custom
/// observer).
#[derive(Debug, Default)]
pub struct PairRecorder<A, B> {
    /// First recorder.
    pub first: A,
    /// Second recorder.
    pub second: B,
}

impl<A: Recorder, B: Recorder> PairRecorder<A, B> {
    /// Creates a pair recorder.
    pub fn new(first: A, second: B) -> Self {
        PairRecorder { first, second }
    }
}

impl<A: Recorder, B: Recorder> Recorder for PairRecorder<A, B> {
    fn record(&mut self, interactions: u64, config: &Configuration) {
        self.first.record(interactions, config);
        self.second.record(interactions, config);
    }
}

impl<F: FnMut(u64, &Configuration)> Recorder for F {
    fn record(&mut self, interactions: u64, config: &Configuration) {
        self(interactions, config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(u: u64) -> Configuration {
        Configuration::from_counts(vec![50, 50], u).unwrap()
    }

    #[test]
    fn records_periodic_snapshots_and_final_state() {
        let mut rec = TraceRecorder::every(5);
        for t in 0..=12 {
            rec.record(t, &cfg(t));
        }
        let times: Vec<u64> = rec
            .into_snapshots()
            .iter()
            .map(|s| s.interactions)
            .collect();
        assert_eq!(times, vec![0, 5, 10, 12]);
    }

    #[test]
    fn memory_stays_bounded_between_periods() {
        let mut rec = TraceRecorder::every(1000);
        for t in 0..5000u64 {
            rec.record(t, &cfg(0));
        }
        assert_eq!(rec.snapshots().len(), 5);
        assert!(rec.latest().is_some());
    }

    #[test]
    fn latest_is_cleared_on_periodic_snapshot() {
        let mut rec = TraceRecorder::every(2);
        rec.record(0, &cfg(0));
        rec.record(1, &cfg(1));
        assert!(rec.latest().is_some());
        rec.record(2, &cfg(2));
        assert!(rec.latest().is_none());
        assert_eq!(rec.snapshots().len(), 2);
    }

    #[test]
    fn undecided_extrema() {
        let mut rec = TraceRecorder::every(1);
        for (t, u) in [(0u64, 5u64), (1, 30), (2, 10), (3, 2)] {
            rec.record(t, &cfg(u));
        }
        assert_eq!(rec.max_undecided(), Some(30));
        assert_eq!(rec.min_undecided_after(2), Some(2));
    }

    #[test]
    fn closures_are_recorders() {
        let mut seen = 0u64;
        {
            let mut f = |t: u64, _c: &Configuration| seen = t;
            f.record(7, &cfg(0));
        }
        assert_eq!(seen, 7);
    }

    #[test]
    fn parallel_time_divides_by_population() {
        let s = Snapshot {
            interactions: 500,
            configuration: cfg(0),
        };
        assert!((s.parallel_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pair_recorder_feeds_both() {
        let mut count_a = 0u32;
        let mut count_b = 0u32;
        {
            let a = |_: u64, _: &Configuration| count_a += 1;
            let b = |_: u64, _: &Configuration| count_b += 1;
            let mut pair = PairRecorder::new(a, b);
            pair.record(1, &cfg(0));
            pair.record(2, &cfg(0));
        }
        assert_eq!(count_a, 2);
        assert_eq!(count_b, 2);
    }

    #[test]
    fn iter_includes_latest_once() {
        let mut rec = TraceRecorder::every(10);
        rec.record(0, &cfg(0));
        rec.record(3, &cfg(1));
        let times: Vec<u64> = rec.iter().map(|s| s.interactions).collect();
        assert_eq!(times, vec![0, 3]);
    }
}
