//! Lockstep multi-replica simulation with shared row computations and
//! parallel replica advancement.
//!
//! Every Monte Carlo experiment in this workspace (hitting times, phase
//! durations, bias sweeps) averages over independent replicas of the same
//! protocol and initial configuration.  Run one at a time, each replica
//! re-derives the per-counts data its skip-ahead engine needs — the
//! productive row table of a [`BatchedEngine`], the activation law of a
//! sampling dynamic — even though those tables are pure functions of the
//! count vector and the replicas walk heavily overlapping regions of the
//! count space.  [`EnsembleEngine`] removes that waste by advancing `R`
//! replicas in *lockstep rounds*:
//!
//! 1. **Shared row computations.** Between state-changing events a replica's
//!    counts are frozen, so the per-counts tables are exact to share: the
//!    ensemble keeps a counts-keyed cache of [`EnsembleReplica::Shared`]
//!    values, computes each table once, and hands the cached copy to every
//!    replica that currently sits at (or later revisits) the same counts.
//!    All replicas start from the identical configuration, and events move
//!    single agents, so the walks revisit cached counts constantly —
//!    especially in effectively low-dimensional workloads (two opinions, no
//!    undecided pool) where [`EnsembleRunResult::shared_reuse_fraction`]
//!    typically exceeds 90%.  Sharing only pays when the table costs more
//!    than the map traffic, so the cache is *adaptive* by default
//!    ([`SharedCacheMode`]): windows with too little measured reuse turn
//!    the map dormant and recompute into per-replica scratch instead.
//! 2. **Parallel replica advancement.** Rounds are scheduled in *windows*
//!    of [`LOCKSTEP_WINDOW_ROUNDS`] rounds.  At each window boundary the
//!    counts-keyed table map is *frozen*; within the window the live
//!    replicas are partitioned into contiguous chunks over the worker
//!    threads of the shared [`crate::parallel`] layer, and every worker
//!    advances its chunk round by round — reading the frozen map
//!    immutably, computing tables the map lacks into a worker-local
//!    overlay, and drawing each replica's geometric skip and event from
//!    that replica's own RNG.  At the window's end the workers' freshly
//!    computed tables are merged back into the map (in worker order) and
//!    the next window begins.  Freezing per window rather than per round
//!    is what makes the pool affordable: scoped worker threads cost tens
//!    of microseconds to fork/join, which a window of
//!    `R × LOCKSTEP_WINDOW_ROUNDS` events amortizes and a single round of
//!    `R` events would not.
//!
//! # Exactness
//!
//! The ensemble is *bit-exact*, not merely exact in distribution — at every
//! thread count: replica `i` produces the same trajectory, interaction
//! counter and [`RunResult`] as a standalone engine constructed with the
//! same seed (conventionally `master.child(i)`, see
//! [`EnsembleChoice::seeds`]).  The argument has three parts:
//!
//! * the shared tables consume no randomness and are pure functions of the
//!   count vector, so dedup, caching, and *where* a table was computed
//!   (map, overlay, or scratch) cannot alter any replica's draws,
//! * each replica owns its RNG stream, and [`EnsembleReplica`] splits the
//!   standalone `advance` into the same sequence of draws (skip first, then
//!   the event) the standalone path performs — interleaving replicas never
//!   reorders draws *within* one stream, and
//! * the worker partition is deterministic (contiguous chunks in replica
//!   order — see the [`crate::parallel`] determinism contract) and workers
//!   share no mutable state, so thread count and scheduling affect only
//!   which core advances a replica, never what it computes.
//!
//! `tests/ensemble_equivalence.rs` pins this claim for the USD and for all
//! five sampling dynamics, including `threads = 1` vs `threads = T`
//! bit-equality.  Cache statistics ([`EnsembleRunResult::shared_hits`] and
//! friends) are *reported* bookkeeping and do depend on the thread count
//! (each worker counts its own probes); per-replica results never do.
//!
//! # Example
//!
//! ```
//! use pp_core::ensemble::{EnsembleChoice, EnsembleEngine};
//! use pp_core::prelude::*;
//!
//! struct TinyUsd;
//! impl OpinionProtocol for TinyUsd {
//!     fn num_opinions(&self) -> usize { 2 }
//!     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
//!         match (r, i) {
//!             (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
//!             (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
//!             _ => r,
//!         }
//!     }
//! }
//!
//! let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
//! let choice = EnsembleChoice::new(8);
//! let replicas: Vec<_> = choice
//!     .seeds(SimSeed::from_u64(7))
//!     .into_iter()
//!     .map(|seed| BatchedEngine::new(TinyUsd, config.clone(), seed))
//!     .collect();
//! let mut ensemble = EnsembleEngine::try_new(replicas)
//!     .unwrap()
//!     .with_parallelism(choice.parallelism());
//! let outcome = ensemble.run(StopCondition::consensus().or_max_interactions(10_000_000));
//! assert!(outcome.all_reached_goal());
//! assert_eq!(outcome.len(), 8);
//! ```

use crate::checkpoint::{
    Checkpoint, EngineCheckpoint, EngineState, EnsembleSnapshot, ReplicaCheckpoint,
};
use crate::config::Configuration;
use crate::engine::{geometric_skip, Advance, BatchedEngine, EngineChoice, StepEngine};
use crate::error::PpError;
use crate::parallel::{self, Parallelism};
use crate::protocol::OpinionProtocol;
use crate::recorder::{NullRecorder, Recorder};
use crate::rng::SimSeed;
use crate::run::{MaintenanceStats, RunOutcome, RunResult};
use crate::stopping::StopCondition;
use crate::telemetry::{MetricsSnapshot, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Default bound on the number of counts-keyed shared tables the ensemble
/// keeps alive (the cache is cleared wholesale when the bound is hit; see
/// [`EnsembleEngine::with_cache_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// Lockstep rounds per scheduling window: the table map freezes at every
/// window boundary, workers advance their replica chunks for this many
/// rounds against the frozen map, and freshly computed tables merge back at
/// the window's end.  Large enough that a window of `R × 64` events
/// amortizes the worker fork/join, small enough that newly discovered
/// count regions become visible to every worker quickly.
pub const LOCKSTEP_WINDOW_ROUNDS: u64 = 64;

/// Workers are only forked when every worker gets at least this many live
/// replicas: below that the per-window fork/join costs more than the
/// advancement it parallelizes.
const MIN_REPLICAS_PER_WORKER: usize = 2;

/// A replica engine that can be advanced in lockstep with its siblings.
///
/// The trait decomposes a skip-ahead `advance` into the pieces the ensemble
/// schedules separately: a per-counts [`Shared`](EnsembleReplica::Shared)
/// table that consumes no randomness (and is therefore exact to dedup across
/// replicas whose counts coincide), the geometric skip draw, and the event
/// draw.  Implementations must consume their RNG in *exactly* the order the
/// standalone [`StepEngine::advance`] does — skip first, then the event —
/// so that a lockstep replica stays bit-identical to a standalone run with
/// the same seed.
pub trait EnsembleReplica: StepEngine {
    /// The per-counts data shared between replicas at the same counts: the
    /// productive row table for [`BatchedEngine`], the activation law for a
    /// sampling dynamic.  Must be a pure function of the count vector.
    /// Shared tables cross worker threads behind [`Arc`]s, so parallel runs
    /// additionally need `Shared: Send + Sync` (every shipped table type
    /// is plain data).
    type Shared;

    /// Computes the shared table for the current counts.  Consumes no RNG.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::UnsupportedEngine`] when the replica cannot
    /// provide a shared skip-ahead table (e.g. a sampling dynamic without
    /// closed-form hooks); [`EnsembleEngine::try_new`] surfaces this as a
    /// construction-time diagnostic.
    fn compute_shared(&self) -> Result<Self::Shared, PpError>;

    /// Derives the shared table for this replica's *current* counts from a
    /// table previously computed at the counts in `prev_key` (cache-key
    /// layout: supports then undecided), by replaying the count delta —
    /// `O(k · changed categories)` instead of a full rebuild.  Consumes no
    /// RNG.  Must be **bit-identical** to
    /// [`compute_shared`](EnsembleReplica::compute_shared); the default
    /// returns `None` (no derivation; the ensemble computes fresh).
    fn derive_shared(&self, prev: &Self::Shared, prev_key: &[u64]) -> Option<Self::Shared> {
        let _ = (prev, prev_key);
        None
    }

    /// The probability that one interaction changes the state, read from the
    /// shared table.  Must equal the value the standalone `advance` derives.
    fn event_probability(&self, shared: &Self::Shared) -> f64;

    /// Draws the geometric number of null interactions preceding the next
    /// event from this replica's own RNG (`None` = the skip provably
    /// overshoots `headroom`; memorylessness makes re-sampling later exact).
    fn draw_skip(&mut self, p: f64, headroom: u64) -> Option<u64>;

    /// Records `skip` null interactions plus the event interaction, then
    /// draws the state-changing event from the shared table (using this
    /// replica's own RNG) and applies it.
    fn apply_event(&mut self, shared: &Self::Shared, skip: u64);

    /// Forwards the interaction counter to `limit` without an event (the
    /// skip overshot, or the configuration is absorbing).
    fn forward_to_limit(&mut self, limit: u64);
}

impl<P: OpinionProtocol> EnsembleReplica for BatchedEngine<P> {
    type Shared = RowTable;

    fn compute_shared(&self) -> Result<RowTable, PpError> {
        let sums = self.initiator_sums();
        let (rows, total) = self.enumerate_rows();
        Ok(RowTable { rows, total, sums })
    }

    fn derive_shared(&self, prev: &RowTable, prev_key: &[u64]) -> Option<RowTable> {
        let matrix = self.productivity_matrix_ref()?;
        let config = StepEngine::configuration(self);
        let k = config.num_opinions();
        if prev.sums.len() != k + 1 || prev_key.len() != k + 1 {
            return None;
        }
        // Replay the count delta onto the productive initiator sums, then
        // re-derive `row = c_cat · S_cat` — exact integers throughout, so
        // the result is bit-identical to `compute_shared` at these counts.
        let mut sums = prev.sums.clone();
        for i in 0..=k {
            let old = prev_key[i];
            let new = config.category_count(i);
            if old == new {
                continue;
            }
            for (cat, sum) in sums.iter_mut().enumerate() {
                if matrix[cat * (k + 1) + i] {
                    if new >= old {
                        *sum += u128::from(new - old);
                    } else {
                        *sum -= u128::from(old - new);
                    }
                }
            }
        }
        let mut rows = vec![0u128; k + 1];
        let mut total = 0u128;
        for (cat, row_slot) in rows.iter_mut().enumerate() {
            let row = u128::from(config.category_count(cat)) * sums[cat];
            *row_slot = row;
            total += row;
        }
        let derived = RowTable { rows, total, sums };
        #[cfg(any(debug_assertions, feature = "exhaustive-checks"))]
        {
            let fresh = self
                .compute_shared()
                .expect("batched replicas always provide row tables");
            assert_eq!(
                derived, fresh,
                "neighbor-delta derivation diverged from a fresh table at {}",
                config
            );
        }
        Some(derived)
    }

    fn event_probability(&self, shared: &RowTable) -> f64 {
        let n = StepEngine::configuration(self).population() as f64;
        shared.total as f64 / (n * n)
    }

    fn draw_skip(&mut self, p: f64, headroom: u64) -> Option<u64> {
        geometric_skip(self.rng_mut(), p, headroom)
    }

    fn apply_event(&mut self, shared: &RowTable, skip: u64) {
        self.record_event_interactions(skip);
        self.draw_and_apply_event(&shared.rows, shared.total);
    }

    fn forward_to_limit(&mut self, limit: u64) {
        self.forward_to(limit);
    }
}

/// The shared per-counts table of a [`BatchedEngine`] replica: productive
/// weight per responder category plus their sum (`W`; the event probability
/// is `W/n²`), and the per-category productive initiator sums `S_cat` that
/// let a neighbor's table be derived by replaying a count delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowTable {
    /// Productive weight per responder category (`k + 1` entries, undecided
    /// last), matching the standalone engine's scratch rows bit for bit.
    pub rows: Vec<u128>,
    /// Sum of the rows.
    pub total: u128,
    /// Per-category productive initiator sums (`row_cat = c_cat · S_cat`);
    /// empty when the protocol opted out of the delta rule, in which case
    /// neighbor-delta derivation is disabled and misses compute fresh.
    pub sums: Vec<u128>,
}

/// An `EngineChoice`-adjacent selector for ensemble runs: how many lockstep
/// replicas to advance, which per-replica backend drives each of them, and
/// how many worker threads spread the replicas.
///
/// Only the batched backend is a valid base — the lockstep engine exists to
/// share skip-ahead tables, which the exact backend does not use, the
/// sharded backend manages per-shard (and spawns threads of its own), and
/// the mean-field backend replaces with a deterministic ODE.  Those
/// combinations are rejected by [`EnsembleChoice::validate`] with an
/// [`PpError::UnsupportedEngine`] naming the offending nesting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnsembleChoice {
    replicas: usize,
    base: EngineChoice,
    /// Defaulted so pre-knob serialized choices keep deserializing once the
    /// real serde is swapped back in (the vendored derive is a no-op).
    #[serde(default)]
    parallelism: Parallelism,
}

impl EnsembleChoice {
    /// An ensemble of `replicas` lockstep copies on the batched base
    /// backend, with automatic worker parallelism (thread count never
    /// affects results — see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    #[must_use]
    pub fn new(replicas: usize) -> Self {
        assert!(replicas >= 1, "an ensemble needs at least one replica");
        EnsembleChoice {
            replicas,
            base: EngineChoice::Batched,
            parallelism: Parallelism::auto(),
        }
    }

    /// Overrides the per-replica base backend (validation will reject
    /// everything but [`EngineChoice::Batched`]; the setter exists so
    /// callers can funnel a user-selected engine through
    /// [`EnsembleChoice::validate`] and get the precise diagnostic).
    #[must_use]
    pub fn with_base(mut self, base: EngineChoice) -> Self {
        self.base = base;
        self
    }

    /// Selects the worker-thread knob (default [`Parallelism::auto`]).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Caps the worker threads at `threads` (shorthand for
    /// [`EnsembleChoice::with_parallelism`] with [`Parallelism::fixed`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.with_parallelism(Parallelism::fixed(threads))
    }

    /// Number of lockstep replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The per-replica base backend.
    #[must_use]
    pub fn base(&self) -> EngineChoice {
        self.base
    }

    /// The worker-thread knob.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Checks that the base backend can run inside the lockstep ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::UnsupportedEngine`] for every base but
    /// [`EngineChoice::Batched`] (`"exact-inside-ensemble"`,
    /// `"sharded-inside-ensemble"`, `"mean-field-inside-ensemble"`,
    /// `"hybrid-inside-ensemble"`).
    pub fn validate(&self) -> Result<(), PpError> {
        match self.base {
            EngineChoice::Batched => Ok(()),
            EngineChoice::Exact => Err(PpError::UnsupportedEngine {
                requested: "exact-inside-ensemble",
            }),
            EngineChoice::Sharded => Err(PpError::UnsupportedEngine {
                requested: "sharded-inside-ensemble",
            }),
            EngineChoice::MeanField => Err(PpError::UnsupportedEngine {
                requested: "mean-field-inside-ensemble",
            }),
            EngineChoice::Hybrid => Err(PpError::UnsupportedEngine {
                requested: "hybrid-inside-ensemble",
            }),
        }
    }

    /// The per-replica seeds of an ensemble run: replica `i` gets
    /// `master.child(i)`.  This is the workspace-wide convention the
    /// bit-exactness guarantee is stated against — a standalone engine
    /// seeded with `master.child(i)` reproduces ensemble replica `i`
    /// exactly.
    #[must_use]
    pub fn seeds(&self, master: SimSeed) -> Vec<SimSeed> {
        (0..self.replicas as u64).map(|i| master.child(i)).collect()
    }
}

/// The aggregate outcome of one [`EnsembleEngine::run`]: every replica's
/// [`RunResult`] (index-aligned with the construction order) plus the
/// lockstep bookkeeping the throughput experiments report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleRunResult {
    results: Vec<RunResult>,
    rounds: u64,
    shared_hits: u64,
    shared_misses: u64,
    #[serde(default)]
    shared_derived: u64,
    cache_evictions: u64,
    workers: u64,
    /// Events advanced by dormant scheduling windows (a subset of
    /// `shared_misses` — the adaptive cache books dormant events as misses).
    #[serde(default)]
    dormant_events: u64,
}

impl EnsembleRunResult {
    /// Per-replica results, in construction order (replica `i` matches a
    /// standalone run with seed `master.child(i)`).
    #[must_use]
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// The result of replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn replica(&self, i: usize) -> &RunResult {
        &self.results[i]
    }

    /// Number of replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the ensemble held no replicas (never true for results
    /// produced by [`EnsembleEngine::run`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Lockstep rounds the run took (per scheduling window, the longest
    /// worker's round count).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The largest worker-thread count any scheduling window resolved to
    /// (the count shrinks toward one as replicas finish and the live set
    /// no longer feeds every worker).
    #[must_use]
    pub fn workers(&self) -> u64 {
        self.workers
    }

    /// Shared-table lookups answered from the counts-keyed cache (the
    /// frozen map or a worker's same-window overlay).
    #[must_use]
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Shared-table lookups that had to compute a fresh table.
    #[must_use]
    pub fn shared_misses(&self) -> u64 {
        self.shared_misses
    }

    /// Counts-key misses answered by *neighbor-delta derivation*: the table
    /// was derived from the replica's previously used table by replaying
    /// the count delta ([`EnsembleReplica::derive_shared`]) instead of
    /// being rebuilt from the full counts.  Derivations are counted as
    /// misses by the adaptive cache policy (they bypass the map), so
    /// `shared_misses − shared_derived` is the number of full rebuilds.
    #[must_use]
    pub fn shared_derived(&self) -> u64 {
        self.shared_derived
    }

    /// How often the cache was cleared because it hit its capacity bound.
    #[must_use]
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// Events advanced through dormant scheduling windows (the adaptive
    /// cache's standalone fallback; always 0 under [`SharedCacheMode::Always`]).
    #[must_use]
    pub fn dormant_events(&self) -> u64 {
        self.dormant_events
    }

    /// The run's lockstep bookkeeping and the replicas' engine counters as
    /// one flat [`MetricsSnapshot`] under the canonical metric names — the
    /// surface `usd_run` serializes and the summary printers read, replacing
    /// per-caller aggregation over the bespoke accessors.
    ///
    /// Per-replica counters (`batched.*`, `maintenance.*`,
    /// `engine.rejection_misses`) are summed across replicas; the
    /// `maintenance.*_fraction` gauges are recomputed from the aggregated
    /// counters rather than absorbed (a gauge absorb is last-write-wins).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let mut agg = MaintenanceStats::default();
        for result in &self.results {
            if let Some(t) = result.telemetry() {
                snap.absorb(t);
            } else {
                if let Some(misses) = result.rejection_misses() {
                    snap.add_counter("engine.rejection_misses", misses);
                }
                if let Some(stats) = result.maintenance() {
                    snap.absorb_maintenance(&stats);
                }
            }
            if let Some(stats) = result.maintenance() {
                agg.absorb(stats);
            }
        }
        if let Some(f) = agg.rows_patched_fraction() {
            snap.set_gauge("maintenance.rows_patched_fraction", f);
        }
        if let Some(f) = agg.law_patched_fraction() {
            snap.set_gauge("maintenance.law_patched_fraction", f);
        }
        snap.add_counter("ensemble.rounds", self.rounds);
        snap.add_counter("ensemble.shared_hits", self.shared_hits);
        snap.add_counter("ensemble.shared_misses", self.shared_misses);
        snap.add_counter("ensemble.shared_derived", self.shared_derived);
        snap.add_counter("ensemble.cache_evictions", self.cache_evictions);
        snap.add_counter("ensemble.dormant_events", self.dormant_events);
        snap.set_gauge("ensemble.replicas", self.results.len() as f64);
        snap.set_gauge("ensemble.workers", self.workers as f64);
        snap.set_gauge(
            "ensemble.shared_reuse_fraction",
            self.shared_reuse_fraction(),
        );
        snap
    }

    /// Fraction of shared-table lookups served without recomputation — the
    /// dedup win the lockstep design buys (0 when nothing was looked up).
    #[must_use]
    pub fn shared_reuse_fraction(&self) -> f64 {
        let lookups = self.shared_hits + self.shared_misses;
        if lookups == 0 {
            0.0
        } else {
            self.shared_hits as f64 / lookups as f64
        }
    }

    /// Total interactions advanced across all replicas (the numerator of
    /// the aggregate interactions/sec metric).
    #[must_use]
    pub fn total_interactions(&self) -> u128 {
        self.results
            .iter()
            .map(|r| u128::from(r.interactions()))
            .sum()
    }

    /// Whether every replica reached its structural goal (consensus or
    /// settlement) rather than running out of budget.
    #[must_use]
    pub fn all_reached_goal(&self) -> bool {
        self.results.iter().all(|r| r.outcome().is_goal())
    }
}

/// How the ensemble shares per-counts tables across replicas.
///
/// Sharing is only a win when the table is dearer than the map traffic that
/// caches it: a hit saves one table computation but costs a hash lookup, a
/// miss additionally pays an insert and two allocations.  For the j-Majority
/// family (an `O(k²j³)` dynamic program per table, reuse above 90% in the
/// two-opinion regime) the cache is the whole point; for the USD (an `O(k)`
/// integer table) it can cost an order of magnitude more than it saves.
/// The mode never affects *results* — only wall-clock — because shared
/// tables are pure functions of the counts and consume no randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharedCacheMode {
    /// Windowed self-tuning (the default): cache while the measured reuse
    /// rate clears [`SharedCacheMode::ADAPTIVE_MIN_HIT`], go dormant when
    /// it does not — dormant scheduling windows advance each replica
    /// through its own standalone `advance` in chunks, at standalone cost —
    /// and re-probe after a dormancy period that backs off exponentially
    /// while probes keep failing.
    #[default]
    Adaptive,
    /// Cache unconditionally.
    Always,
    /// Never cache: every scheduling window advances the replicas through
    /// their own standalone `advance` (the ensemble then costs what the
    /// replica loop costs, interleaved at chunk granularity — and still
    /// parallelizes over the worker pool).
    Never,
}

impl SharedCacheMode {
    /// The window hit rate below which [`SharedCacheMode::Adaptive`] turns
    /// the map dormant.
    pub const ADAPTIVE_MIN_HIT: f64 = 0.75;
    /// Lookups per adaptivity window.
    pub const WINDOW: u64 = 4096;
    /// Dormant scheduling windows after the first failed probe; doubled per
    /// consecutive failure up to `<< MAX_BACKOFF`.
    pub const DORMANT_ROUNDS: u64 = 8;
    /// Cap on the exponential dormancy backoff.
    pub const MAX_BACKOFF: u32 = 6;
    /// Events each live replica advances per dormant scheduling window
    /// (chunking keeps the replica's state hot and the scheduling overhead
    /// negligible).
    pub const DORMANT_CHUNK_EVENTS: u32 = 256;
}

/// Counts-keyed cache of shared per-counts tables.  Keys are the full
/// category count vector (supports then undecided); values are refcounted
/// behind [`Arc`]s so a hit costs one pointer clone and tables flow to
/// worker threads without copying.  The map is only ever *read* while
/// workers run (it freezes per scheduling window) and only ever *written*
/// between windows, on the coordinating thread.
#[derive(Debug)]
struct SharedCache<S> {
    map: HashMap<Box<[u64]>, Arc<S>>,
    capacity: usize,
    mode: SharedCacheMode,
    hits: u64,
    misses: u64,
    derived: u64,
    evictions: u64,
    window_lookups: u64,
    window_hits: u64,
    dormant_windows: u64,
    backoff: u32,
}

impl<S> SharedCache<S> {
    fn new(capacity: usize, mode: SharedCacheMode) -> Self {
        SharedCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            mode,
            hits: 0,
            misses: 0,
            derived: 0,
            evictions: 0,
            window_lookups: 0,
            window_hits: 0,
            dormant_windows: 0,
            backoff: 0,
        }
    }

    /// Whether the coming scheduling window should resolve tables through
    /// the (frozen) map.  A `false` window is dormant: the replicas advance
    /// through their standalone paths (in chunks) at standalone cost.
    fn window_uses_map(&mut self) -> bool {
        match self.mode {
            SharedCacheMode::Always => true,
            SharedCacheMode::Never => false,
            SharedCacheMode::Adaptive => {
                if self.dormant_windows > 0 {
                    self.dormant_windows -= 1;
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Accounts the events a dormant window advanced without any table
    /// sharing (they enter the reuse statistics as misses).
    fn note_dormant_events(&mut self, events: u64) {
        self.misses += events;
    }

    /// Merges one scheduling window's worker outputs back into the cache:
    /// lookup statistics fold in worker order, freshly computed tables are
    /// inserted in each worker's computation order (when the map is full it
    /// is cleared wholesale: the replicas cluster around the current
    /// stretch of their drifting trajectories, so dropping the
    /// long-departed tail costs a brief warm-up, not a sustained miss
    /// rate), and the adaptivity window advances.
    fn merge_window(&mut self, outputs: Vec<WindowOutput<S>>) -> u64 {
        let mut rounds = 0;
        for output in outputs {
            rounds = rounds.max(output.rounds);
            self.hits += output.hits;
            self.misses += output.misses;
            self.derived += output.derived;
            self.window_hits += output.hits;
            self.window_lookups += output.hits + output.misses;
            for (key, table) in output.tables {
                if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
                    self.map.clear();
                    self.evictions += 1;
                }
                self.map.insert(key, table);
            }
        }
        if self.window_lookups >= SharedCacheMode::WINDOW {
            // End of an adaptivity window: a reuse rate that no longer pays
            // for the map traffic turns the map dormant until the next
            // probe, with exponentially backed-off dormancy while probes
            // keep failing (entries are kept — probes start warm).
            let rate = self.window_hits as f64 / self.window_lookups as f64;
            if self.mode == SharedCacheMode::Adaptive {
                if rate < SharedCacheMode::ADAPTIVE_MIN_HIT {
                    self.dormant_windows = SharedCacheMode::DORMANT_ROUNDS << self.backoff;
                    self.backoff = (self.backoff + 1).min(SharedCacheMode::MAX_BACKOFF);
                } else {
                    self.backoff = 0;
                }
            }
            self.window_lookups = 0;
            self.window_hits = 0;
        }
        rounds
    }
}

/// A replica's most recently used shared table together with the counts key
/// it was computed at — the *neighbor* that counts-key misses derive from.
type PrevShared<S> = Option<(Box<[u64]>, Arc<S>)>;

/// One worker's mutable view of a replica: the engine, the slot its
/// finished [`RunResult`] lands in (index-aligned with construction order
/// through the deterministic partition), the replica's neighbor table
/// for delta derivation, and the replica's recorder (fed the same
/// event-by-event observation stream [`StepEngine::run_engine_recorded`]
/// produces; [`NullRecorder`]s on the plain [`EnsembleEngine::run`] path).
struct ReplicaSlot<'a, E: EnsembleReplica, R: Recorder> {
    replica: &'a mut E,
    result: &'a mut Option<RunResult>,
    prev: &'a mut PrevShared<E::Shared>,
    recorder: &'a mut R,
}

/// What one worker brings back from a scheduling window: the tables it had
/// to compute (in computation order), its lookup statistics, and how many
/// rounds it actually ran (workers stop early once their chunk finishes).
struct WindowOutput<S> {
    tables: Vec<(Box<[u64]>, Arc<S>)>,
    hits: u64,
    misses: u64,
    derived: u64,
    rounds: u64,
    events: u64,
}

/// Builds the counts key of a configuration into `key` (supports then
/// undecided — the same layout `SharedCache` stores).
fn counts_key(config: &Configuration, key: &mut Vec<u64>) {
    key.clear();
    key.extend_from_slice(config.supports());
    key.push(config.undecided());
}

/// Finishes a replica whose stop condition is met, mirroring the standalone
/// driver's goal-before-budget order.  Returns `false` when the replica
/// stays live.
fn try_finish<E: EnsembleReplica, R: Recorder>(
    slot: &mut ReplicaSlot<'_, E, R>,
    stop: &StopCondition,
) -> bool {
    let replica = &*slot.replica;
    if stop.goal_met(replica.configuration()) {
        let outcome = if replica.configuration().is_consensus() {
            RunOutcome::Consensus
        } else {
            RunOutcome::OpinionSettled
        };
        *slot.result = Some(finish(replica, outcome));
        return true;
    }
    if stop
        .max_interactions()
        .is_some_and(|b| replica.interactions() >= b)
    {
        *slot.result = Some(finish(replica, RunOutcome::BudgetExhausted));
        return true;
    }
    false
}

/// Advances one worker's chunk through a mapped scheduling window: up to
/// [`LOCKSTEP_WINDOW_ROUNDS`] lockstep rounds against the frozen `map`,
/// with misses computed into a worker-local overlay that the coordinator
/// merges afterwards.
fn advance_window_mapped<E: EnsembleReplica, R: Recorder>(
    slots: &mut [ReplicaSlot<'_, E, R>],
    map: &HashMap<Box<[u64]>, Arc<E::Shared>>,
    stop: &StopCondition,
    limit: u64,
) -> WindowOutput<E::Shared> {
    let mut out = WindowOutput {
        tables: Vec::new(),
        hits: 0,
        misses: 0,
        derived: 0,
        rounds: 0,
        events: 0,
    };
    let mut overlay: HashMap<Box<[u64]>, Arc<E::Shared>> = HashMap::new();
    let mut key: Vec<u64> = Vec::new();
    for _ in 0..LOCKSTEP_WINDOW_ROUNDS {
        let mut advanced_any = false;
        for slot in slots.iter_mut() {
            if slot.result.is_some() || try_finish(slot, stop) {
                continue;
            }
            advanced_any = true;
            let replica = &mut *slot.replica;
            // Resolve the shared table: frozen global map first, then this
            // window's worker-local overlay, then derive from the replica's
            // previously used table by replaying the count delta, then
            // compute fresh.  All four paths yield bit-identical tables
            // (pure functions of the counts).
            counts_key(replica.configuration(), &mut key);
            let shared = if let Some(table) = map.get(key.as_slice()) {
                out.hits += 1;
                Arc::clone(table)
            } else if let Some(table) = overlay.get(key.as_slice()) {
                out.hits += 1;
                Arc::clone(table)
            } else {
                out.misses += 1;
                let derived = slot
                    .prev
                    .as_ref()
                    .and_then(|(prev_key, prev)| replica.derive_shared(prev, prev_key));
                let table = match derived {
                    Some(table) => {
                        out.derived += 1;
                        Arc::new(table)
                    }
                    None => Arc::new(
                        replica
                            .compute_shared()
                            .expect("replica stopped providing shared tables mid-run"),
                    ),
                };
                let boxed = key.clone().into_boxed_slice();
                overlay.insert(boxed.clone(), Arc::clone(&table));
                *slot.prev = Some((boxed.clone(), Arc::clone(&table)));
                out.tables.push((boxed, Arc::clone(&table)));
                table
            };
            let p = replica.event_probability(&shared);
            if p <= 0.0 {
                replica.forward_to_limit(limit);
                assert!(
                    stop.max_interactions().is_some() || stop.goal_met(replica.configuration()),
                    "absorbing configuration {} can never meet the stop condition",
                    replica.configuration()
                );
                continue;
            }
            let headroom = limit - replica.interactions();
            match replica.draw_skip(p, headroom) {
                Some(skip) => {
                    replica.apply_event(&shared, skip);
                    out.events += 1;
                    slot.recorder
                        .record(replica.interactions(), replica.configuration());
                }
                None => replica.forward_to_limit(limit),
            }
        }
        if !advanced_any {
            break;
        }
        out.rounds += 1;
    }
    out
}

/// Advances one worker's chunk through a dormant scheduling window (cache
/// policy decided the map does not pay): every live replica advances
/// through its own standalone `advance`, a chunk of events at a time —
/// bit-identical draws at standalone cost and locality, no table
/// resolution, no refcount traffic.  Returns the events advanced.
fn advance_window_dormant<E: EnsembleReplica, R: Recorder>(
    slots: &mut [ReplicaSlot<'_, E, R>],
    stop: &StopCondition,
    limit: u64,
) -> u64 {
    let mut events = 0u64;
    for slot in slots.iter_mut() {
        if slot.result.is_some() || try_finish(slot, stop) {
            continue;
        }
        let replica = &mut *slot.replica;
        for _ in 0..SharedCacheMode::DORMANT_CHUNK_EVENTS {
            if stop.goal_met(replica.configuration())
                || stop
                    .max_interactions()
                    .is_some_and(|b| replica.interactions() >= b)
            {
                break;
            }
            match StepEngine::advance(replica, limit) {
                Advance::Event => {
                    events += 1;
                    slot.recorder
                        .record(replica.interactions(), replica.configuration());
                }
                Advance::LimitReached => break,
                Advance::Absorbed => {
                    assert!(
                        stop.max_interactions().is_some() || stop.goal_met(replica.configuration()),
                        "absorbing configuration {} can never meet the stop condition",
                        replica.configuration()
                    );
                    break;
                }
            }
        }
    }
    events
}

/// Advances `R` replicas of one protocol/configuration in lockstep rounds
/// with counts-deduplicated shared tables and worker-parallel replica
/// advancement (module docs have the full design and exactness argument).
///
/// Worker threads come from the shared [`crate::parallel`] layer; select
/// the count with [`EnsembleEngine::with_parallelism`].  Thread count never
/// affects results, only wall-clock.
#[derive(Debug)]
pub struct EnsembleEngine<E: EnsembleReplica>
where
    E::Shared: std::fmt::Debug,
{
    replicas: Vec<E>,
    cache: SharedCache<E::Shared>,
    parallelism: Parallelism,
    rounds: u64,
    dormant_events: u64,
    tel: Telemetry,
}

impl<E: EnsembleReplica> EnsembleEngine<E>
where
    E::Shared: std::fmt::Debug,
{
    /// Builds a lockstep ensemble over the given replicas (conventionally
    /// all constructed from one configuration with seeds
    /// [`EnsembleChoice::seeds`]).
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Config`] (empty population) when `replicas` is
    /// empty, [`PpError::OpinionCountMismatch`] when the replicas disagree
    /// on the opinion count, and propagates the first replica's
    /// [`EnsembleReplica::compute_shared`] error when the backend cannot
    /// provide shared tables (e.g. a sampling dynamic without skip-ahead
    /// hooks).
    pub fn try_new(replicas: Vec<E>) -> Result<Self, PpError> {
        let Some(first) = replicas.first() else {
            return Err(PpError::Config(crate::error::ConfigError::EmptyPopulation));
        };
        let k = first.configuration().num_opinions();
        for replica in &replicas {
            if replica.configuration().num_opinions() != k {
                return Err(PpError::OpinionCountMismatch {
                    protocol: k,
                    configuration: replica.configuration().num_opinions(),
                });
            }
        }
        // Surface "this backend cannot share tables" at construction, not
        // mid-run: the shipped dynamics support every configuration, so a
        // failure here is the caller requesting an unsupported combination.
        first.compute_shared()?;
        Ok(EnsembleEngine {
            replicas,
            cache: SharedCache::new(DEFAULT_CACHE_CAPACITY, SharedCacheMode::default()),
            parallelism: Parallelism::auto(),
            rounds: 0,
            dormant_events: 0,
            tel: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle: scheduling windows open
    /// `ensemble.window` spans, worker chunks open `ensemble.mapped` /
    /// `ensemble.dormant` spans on their worker track, and each run folds
    /// its lockstep counters (`ensemble.*`) into the registry.  Telemetry
    /// never consumes randomness, so attaching a handle cannot change any
    /// replica's trajectory (see [`crate::telemetry`]).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Bounds the number of cached shared tables (default
    /// [`DEFAULT_CACHE_CAPACITY`]).  Smaller caches trade recomputation for
    /// memory; the cache is cleared wholesale when the bound is hit.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = SharedCache::new(capacity, self.cache.mode);
        self
    }

    /// Selects the shared-table caching policy (default
    /// [`SharedCacheMode::Adaptive`]).  Never affects results, only
    /// wall-clock — see [`SharedCacheMode`].
    #[must_use]
    pub fn with_cache_mode(mut self, mode: SharedCacheMode) -> Self {
        self.cache = SharedCache::new(self.cache.capacity, mode);
        self
    }

    /// Selects the worker-thread knob (default [`Parallelism::auto`]).
    /// Never affects results, only wall-clock — see the module docs.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The worker-thread knob this engine runs with.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The replicas, in construction order.
    #[must_use]
    pub fn replicas(&self) -> &[E] {
        &self.replicas
    }

    /// Number of replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the ensemble holds no replicas (construction rejects this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Runs every replica until it meets the stop condition, advancing the
    /// live replicas in worker-parallel lockstep windows, and returns the
    /// index-aligned per-replica results.  Each replica's result is
    /// identical to what the standalone `run_engine` would return for the
    /// same seed, at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the stop condition is unbounded, if a replica reaches an
    /// absorbing configuration that cannot meet a budget-less stop
    /// condition (the same loud-failure contract as
    /// [`StepEngine::run_engine_recorded`]), or if a replica stops
    /// providing shared tables mid-run (impossible for the shipped
    /// backends).
    pub fn run(&mut self, stop: StopCondition) -> EnsembleRunResult
    where
        E: Send,
        E::Shared: Send + Sync,
    {
        let mut recorders = vec![NullRecorder; self.replicas.len()];
        self.run_recorded(stop, &mut recorders)
    }

    /// Runs every replica like [`EnsembleEngine::run`], feeding replica
    /// `i`'s initial and every changed configuration to `recorders[i]` —
    /// the same observation stream [`StepEngine::run_engine_recorded`]
    /// produces for a standalone same-seed run: one `record` call with the
    /// starting configuration, then one per state-changing event (skipped
    /// null interactions are not observed; budget-exhausted forwarding
    /// records nothing, exactly like the standalone skip-ahead path).
    ///
    /// Recorders run on the worker threads (hence `R: Send`) but only ever
    /// observe their own replica, in that replica's event order.
    ///
    /// # Panics
    ///
    /// Panics if `recorders.len() != self.len()`, plus everything
    /// [`EnsembleEngine::run`] panics on.
    pub fn run_recorded<R>(&mut self, stop: StopCondition, recorders: &mut [R]) -> EnsembleRunResult
    where
        E: Send,
        E::Shared: Send + Sync,
        R: Recorder + Send,
    {
        self.run_windows_recorded(stop, recorders, u64::MAX)
            .expect("an unbounded window budget can never pause")
    }

    /// Runs at most `max_windows` scheduling windows toward the stop
    /// condition, recording nothing.  Returns `None` when the window budget
    /// ran out with live replicas remaining — the *pause* point the
    /// checkpoint layer captures at (see [`crate::checkpoint`]): call
    /// [`Checkpoint::capture`] on the paused engine, and resume (here or in
    /// a restored engine) by calling this again **with the same `stop`**.
    /// Pausing discards the paused leg's partial bookkeeping; the
    /// completing call recomputes every replica's [`RunResult`] purely from
    /// replica state, so per-replica results are bit-identical to an
    /// uninterrupted [`EnsembleEngine::run`].
    ///
    /// # Panics
    ///
    /// Everything [`EnsembleEngine::run`] panics on.
    pub fn run_windows(
        &mut self,
        stop: StopCondition,
        max_windows: u64,
    ) -> Option<EnsembleRunResult>
    where
        E: Send,
        E::Shared: Send + Sync,
    {
        let mut recorders = vec![NullRecorder; self.replicas.len()];
        self.run_windows_recorded(stop, &mut recorders, max_windows)
    }

    /// Recorded counterpart of [`EnsembleEngine::run_windows`].  Every call
    /// re-records each replica's current configuration first (the same
    /// leading snapshot [`StepEngine::run_engine_recorded`] emits), so a
    /// resumed run's stream starts with a duplicate of the pause-point
    /// entry; splice streams accordingly.
    ///
    /// # Panics
    ///
    /// Everything [`EnsembleEngine::run_recorded`] panics on.
    pub fn run_windows_recorded<R>(
        &mut self,
        stop: StopCondition,
        recorders: &mut [R],
        max_windows: u64,
    ) -> Option<EnsembleRunResult>
    where
        E: Send,
        E::Shared: Send + Sync,
        R: Recorder + Send,
    {
        assert!(
            stop.is_bounded(),
            "stop condition can never terminate the run"
        );
        assert_eq!(
            recorders.len(),
            self.replicas.len(),
            "one recorder per replica"
        );
        for (replica, recorder) in self.replicas.iter().zip(recorders.iter_mut()) {
            recorder.record(replica.interactions(), replica.configuration());
        }
        let rounds_before = self.rounds;
        let dormant_before = self.dormant_events;
        // Events observed by the recorders this run (one `record` call per
        // event, plus the initial snapshot) — drained into the registry as
        // `ensemble.recorded_events` when telemetry is attached.
        let mut events_observed = 0u64;
        let hits_before = self.cache.hits;
        let misses_before = self.cache.misses;
        let derived_before = self.cache.derived;
        let evictions_before = self.cache.evictions;
        let replica_count = self.replicas.len();
        let mut results: Vec<Option<RunResult>> = vec![None; replica_count];
        // Per-replica neighbor tables for delta derivation; scoped to one
        // run (stale tables from a previous run would still derive
        // correctly, but the counts jump at re-initialization makes a
        // fresh start cheaper).
        let mut prevs: Vec<PrevShared<E::Shared>> = (0..replica_count).map(|_| None).collect();
        let limit = stop.max_interactions().unwrap_or(u64::MAX);
        let mut workers_used = 1u64;
        let mut windows_run = 0u64;

        loop {
            // Per-window live view: exclusive access to every unfinished
            // replica, its result slot and its recorder, in construction
            // order, ready for the deterministic contiguous partition.
            let mut slots: Vec<ReplicaSlot<'_, E, R>> = self
                .replicas
                .iter_mut()
                .zip(results.iter_mut())
                .zip(prevs.iter_mut())
                .zip(recorders.iter_mut())
                .filter(|(((_, result), _), _)| result.is_none())
                .map(|(((replica, result), prev), recorder)| ReplicaSlot {
                    replica,
                    result,
                    prev,
                    recorder,
                })
                .collect();
            if slots.is_empty() {
                break;
            }
            if windows_run >= max_windows {
                // Pause: live replicas remain but the window budget is
                // spent.  Partial results and neighbor tables are dropped —
                // the completing call recomputes both, bit-identically.
                return None;
            }
            // Re-resolved per window so tail windows (most replicas
            // finished) fall back to inline execution instead of forking
            // workers for a handful of live replicas.
            let workers = self
                .parallelism
                .resolve(slots.len() / MIN_REPLICAS_PER_WORKER)
                .max(1);
            workers_used = workers_used.max(workers as u64);
            let _window = self.tel.span("ensemble.window");
            if self.cache.window_uses_map() {
                // Freeze the map for the window: workers read it immutably
                // and compute anything it lacks into their own overlays.
                let map = &self.cache.map;
                let outputs = parallel::map_chunks_traced(
                    workers,
                    &self.tel,
                    "ensemble.mapped",
                    &mut slots,
                    |_, chunk| advance_window_mapped(chunk, map, &stop, limit),
                );
                drop(slots);
                events_observed += outputs.iter().map(|o| o.events).sum::<u64>();
                self.rounds += self.cache.merge_window(outputs);
            } else {
                let events = parallel::map_chunks_traced(
                    workers,
                    &self.tel,
                    "ensemble.dormant",
                    &mut slots,
                    |_, chunk| advance_window_dormant(chunk, &stop, limit),
                );
                drop(slots);
                self.rounds += 1;
                let events: u64 = events.into_iter().sum();
                events_observed += events;
                self.dormant_events += events;
                self.cache.note_dormant_events(events);
            }
            windows_run += 1;
        }

        let result = EnsembleRunResult {
            results: results
                .into_iter()
                .map(|r| r.expect("every replica finished"))
                .collect(),
            rounds: self.rounds - rounds_before,
            shared_hits: self.cache.hits - hits_before,
            shared_misses: self.cache.misses - misses_before,
            shared_derived: self.cache.derived - derived_before,
            cache_evictions: self.cache.evictions - evictions_before,
            workers: workers_used,
            dormant_events: self.dormant_events - dormant_before,
        };
        if self.tel.is_enabled() {
            self.tel.counter("ensemble.rounds").add(result.rounds);
            self.tel
                .counter("ensemble.shared_hits")
                .add(result.shared_hits);
            self.tel
                .counter("ensemble.shared_misses")
                .add(result.shared_misses);
            self.tel
                .counter("ensemble.shared_derived")
                .add(result.shared_derived);
            self.tel
                .counter("ensemble.cache_evictions")
                .add(result.cache_evictions);
            self.tel
                .counter("ensemble.dormant_events")
                .add(result.dormant_events);
            self.tel
                .counter("ensemble.recorded_events")
                .add(events_observed);
            self.tel
                .gauge("ensemble.replicas")
                .set(result.results.len() as f64);
            self.tel
                .gauge("ensemble.workers")
                .set(result.workers as f64);
        }
        Some(result)
    }

    /// Snapshots the ensemble's trajectory-relevant state for
    /// [`Checkpoint::capture`]: every replica's [`EngineSnapshot`] (in
    /// construction order) plus the cumulative `rounds` / `dormant_events`
    /// bookkeeping.  Capture only at a *pause* point — between
    /// [`EnsembleEngine::run_windows`] calls — never mid-window.  The
    /// shared-table cache, neighbor tables and adaptivity statistics are
    /// *not* captured: tables are pure functions of the counts, so a
    /// restored ensemble recomputes them bit-identically (a cold cache
    /// costs wall-clock, never a diverged draw).
    pub fn capture_state(&self) -> EnsembleSnapshot
    where
        E: ReplicaCheckpoint,
    {
        EnsembleSnapshot {
            replicas: self
                .replicas
                .iter()
                .map(ReplicaCheckpoint::capture_replica)
                .collect(),
            rounds: self.rounds,
            dormant_events: self.dormant_events,
        }
    }

    /// Restores an ensemble from a checkpoint captured by
    /// [`Checkpoint::capture`] on an [`EnsembleEngine`].  Resuming with
    /// [`EnsembleEngine::run_windows`] **under the same stop condition** the
    /// interrupted run used produces per-replica results bit-identical to
    /// the uninterrupted run, at every thread count (parallelism, cache
    /// mode/capacity and telemetry are construction-time knobs — reapply
    /// them with the usual builders; none of them affects results).
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] when the checkpoint holds a
    /// different engine kind, and propagates replica-restore and
    /// [`EnsembleEngine::try_new`] validation errors.
    pub fn restore(ctx: &E::Context, checkpoint: &Checkpoint) -> Result<Self, PpError>
    where
        E: ReplicaCheckpoint,
    {
        match checkpoint.engine() {
            EngineState::Ensemble(snapshot) => Self::restore_snapshot(ctx, snapshot),
            _ => Err(checkpoint.kind_mismatch("ensemble")),
        }
    }

    /// Restores an ensemble directly from an [`EnsembleSnapshot`] (the
    /// payload [`EnsembleEngine::restore`] unwraps).
    ///
    /// # Errors
    ///
    /// Propagates per-replica restore errors and
    /// [`EnsembleEngine::try_new`] validation errors.
    pub fn restore_snapshot(ctx: &E::Context, snapshot: &EnsembleSnapshot) -> Result<Self, PpError>
    where
        E: ReplicaCheckpoint,
    {
        let replicas = snapshot
            .replicas
            .iter()
            .map(|s| E::restore_replica(ctx, s))
            .collect::<Result<Vec<_>, _>>()?;
        let mut engine = Self::try_new(replicas)?;
        engine.rounds = snapshot.rounds;
        engine.dormant_events = snapshot.dormant_events;
        Ok(engine)
    }
}

impl<E> EngineCheckpoint for EnsembleEngine<E>
where
    E: EnsembleReplica + ReplicaCheckpoint,
    E::Shared: std::fmt::Debug,
{
    fn capture_engine(&self) -> EngineState {
        EngineState::Ensemble(self.capture_state())
    }
}

/// A finished replica's result, carrying the same metadata the standalone
/// `run_engine` records.
fn finish<E: StepEngine>(replica: &E, outcome: RunOutcome) -> RunResult {
    RunResult::new(
        outcome,
        replica.interactions(),
        replica.configuration().clone(),
    )
    .with_scheduler(replica.scheduler_name())
    .with_rejection_misses(replica.rejection_misses())
    .with_maintenance(replica.maintenance())
    .with_telemetry(replica.telemetry())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::AgentState;

    /// The 2-opinion USD with closed-form batching hooks.
    #[derive(Debug, Clone)]
    struct Usd2;

    impl OpinionProtocol for Usd2 {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
        fn name(&self) -> &str {
            "usd-2"
        }
    }

    fn ensemble(
        counts: Vec<u64>,
        undecided: u64,
        replicas: usize,
    ) -> EnsembleEngine<BatchedEngine<Usd2>> {
        let config = Configuration::from_counts(counts, undecided).unwrap();
        let members = EnsembleChoice::new(replicas)
            .seeds(SimSeed::from_u64(99))
            .into_iter()
            .map(|seed| BatchedEngine::new(Usd2, config.clone(), seed))
            .collect();
        EnsembleEngine::try_new(members).unwrap()
    }

    #[test]
    fn replicas_match_standalone_runs_bit_for_bit() {
        let config = Configuration::from_counts(vec![400, 100], 0).unwrap();
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let mut ens = ensemble(vec![400, 100], 0, 6);
        let outcome = ens.run(stop);
        for (i, seed) in EnsembleChoice::new(6)
            .seeds(SimSeed::from_u64(99))
            .into_iter()
            .enumerate()
        {
            let mut standalone = BatchedEngine::new(Usd2, config.clone(), seed);
            let expected = standalone.run_engine(stop);
            assert_eq!(outcome.replica(i), &expected, "replica {i} diverged");
        }
        assert!(outcome.all_reached_goal());
        assert!(outcome.rounds() > 0);
        assert!(outcome.workers() >= 1);
    }

    #[test]
    fn every_thread_count_produces_identical_results() {
        // The worker partition is deterministic and workers share no
        // mutable state, so the thread knob trades wall-clock only.
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let reference = ensemble(vec![400, 150], 50, 7)
            .with_parallelism(Parallelism::single())
            .run(stop);
        for threads in [2usize, 3, 8] {
            let outcome = ensemble(vec![400, 150], 50, 7)
                .with_parallelism(Parallelism::fixed(threads))
                .run(stop);
            assert_eq!(
                outcome.results(),
                reference.results(),
                "threads = {threads} diverged"
            );
        }
        let auto = ensemble(vec![400, 150], 50, 7)
            .with_parallelism(Parallelism::auto())
            .run(stop);
        assert_eq!(auto.results(), reference.results(), "auto diverged");
    }

    #[test]
    fn shared_tables_are_deduplicated_across_identical_replicas() {
        // All replicas start at identical counts, so the first rounds
        // compute one table per worker at most: misses stay far below
        // lookups.
        let mut ens = ensemble(vec![900, 100], 0, 16).with_cache_mode(SharedCacheMode::Always);
        let outcome = ens.run(StopCondition::consensus().or_max_interactions(5_000_000));
        assert!(outcome.shared_hits() > 0);
        assert!(
            outcome.shared_reuse_fraction() > 0.3,
            "reuse fraction {} too low",
            outcome.shared_reuse_fraction()
        );
        assert_eq!(outcome.cache_evictions(), 0);
        assert!(outcome.total_interactions() > 0);
    }

    #[test]
    fn every_cache_mode_produces_identical_results() {
        // The caching policy trades wall-clock only: all three modes must
        // return bit-identical per-replica results.
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let reference = ensemble(vec![500, 150], 50, 5)
            .with_cache_mode(SharedCacheMode::Always)
            .run(stop);
        for mode in [SharedCacheMode::Adaptive, SharedCacheMode::Never] {
            let outcome = ensemble(vec![500, 150], 50, 5)
                .with_cache_mode(mode)
                .run(stop);
            assert_eq!(outcome.results(), reference.results(), "{mode:?} diverged");
        }
        // The uncached mode never touches the map.
        let never = ensemble(vec![500, 150], 50, 5)
            .with_cache_mode(SharedCacheMode::Never)
            .run(stop);
        assert_eq!(never.shared_hits(), 0);
        assert!(never.shared_misses() > 0);
    }

    #[test]
    fn tiny_cache_capacity_still_produces_exact_results() {
        let config = Configuration::from_counts(vec![300, 100], 0).unwrap();
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let mut ens = ensemble(vec![300, 100], 0, 4)
            .with_cache_capacity(2)
            .with_cache_mode(SharedCacheMode::Always);
        let outcome = ens.run(stop);
        assert!(outcome.cache_evictions() > 0, "capacity 2 must evict");
        for (i, seed) in EnsembleChoice::new(4)
            .seeds(SimSeed::from_u64(99))
            .into_iter()
            .enumerate()
        {
            let mut standalone = BatchedEngine::new(Usd2, config.clone(), seed);
            assert_eq!(outcome.replica(i), &standalone.run_engine(stop));
        }
    }

    #[test]
    fn budget_exhaustion_matches_standalone_accounting() {
        let stop = StopCondition::consensus().or_max_interactions(200);
        let mut ens = ensemble(vec![500, 500], 0, 3);
        let outcome = ens.run(stop);
        for result in outcome.results() {
            if result.outcome() == RunOutcome::BudgetExhausted {
                assert_eq!(result.interactions(), 200);
            } else {
                assert!(result.interactions() <= 200);
            }
        }
    }

    #[test]
    fn absorbed_replicas_exhaust_the_budget() {
        // Every agent undecided: the USD can never change anything.
        let mut ens = ensemble(vec![0, 0], 64, 3);
        let outcome = ens.run(StopCondition::consensus().or_max_interactions(10_000));
        for result in outcome.results() {
            assert_eq!(result.outcome(), RunOutcome::BudgetExhausted);
            assert_eq!(result.interactions(), 10_000);
        }
    }

    #[test]
    fn empty_ensembles_are_rejected() {
        let err = EnsembleEngine::<BatchedEngine<Usd2>>::try_new(Vec::new()).unwrap_err();
        assert!(matches!(err, PpError::Config(_)));
    }

    #[test]
    fn ensemble_choice_validates_bases_and_derives_seeds() {
        let choice = EnsembleChoice::new(4);
        assert_eq!(choice.replicas(), 4);
        assert_eq!(choice.base(), EngineChoice::Batched);
        assert_eq!(choice.parallelism(), Parallelism::auto());
        assert!(choice.validate().is_ok());
        let seeds = choice.seeds(SimSeed::from_u64(5));
        assert_eq!(seeds.len(), 4);
        assert_eq!(seeds[2], SimSeed::from_u64(5).child(2));
        for (base, name) in [
            (EngineChoice::Exact, "exact-inside-ensemble"),
            (EngineChoice::Sharded, "sharded-inside-ensemble"),
            (EngineChoice::MeanField, "mean-field-inside-ensemble"),
            (EngineChoice::Hybrid, "hybrid-inside-ensemble"),
        ] {
            let err = choice.with_base(base).validate().unwrap_err();
            assert_eq!(err, PpError::UnsupportedEngine { requested: name });
        }
        // The thread knob rides along without affecting validation.
        let threaded = choice.threads(3);
        assert_eq!(threaded.parallelism(), Parallelism::fixed(3));
        assert!(threaded.validate().is_ok());
        assert_eq!(threaded.replicas(), 4);
    }

    #[test]
    fn run_result_aggregates_are_consistent() {
        let mut ens = ensemble(vec![190, 10], 0, 5);
        let outcome = ens.run(StopCondition::consensus().or_max_interactions(2_000_000));
        assert_eq!(outcome.len(), 5);
        assert!(!outcome.is_empty());
        let total: u128 = outcome
            .results()
            .iter()
            .map(|r| u128::from(r.interactions()))
            .sum();
        assert_eq!(outcome.total_interactions(), total);
        let lookups = outcome.shared_hits() + outcome.shared_misses();
        assert!(lookups > 0);
        assert!(outcome.shared_reuse_fraction() <= 1.0);
    }

    /// A recorder that keeps the full observation stream, for comparing the
    /// ensemble's per-replica callbacks against the standalone driver's.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    struct Log(Vec<(u64, Vec<u64>, u64)>);

    impl Recorder for Log {
        fn record(&mut self, interactions: u64, config: &Configuration) {
            self.0
                .push((interactions, config.supports().to_vec(), config.undecided()));
        }
    }

    #[test]
    fn recorder_streams_match_standalone_runs() {
        let config = Configuration::from_counts(vec![300, 100], 20).unwrap();
        let stop = StopCondition::consensus().or_max_interactions(2_000_000);
        let expected: Vec<Log> = EnsembleChoice::new(5)
            .seeds(SimSeed::from_u64(99))
            .into_iter()
            .map(|seed| {
                let mut log = Log::default();
                BatchedEngine::new(Usd2, config.clone(), seed).run_engine_recorded(stop, &mut log);
                log
            })
            .collect();
        assert!(expected.iter().all(|log| log.0.len() > 1));
        // Mapped windows (Always), dormant windows (Never) and the mix
        // (Adaptive) must all produce the standalone observation stream,
        // at any thread count.
        for mode in [
            SharedCacheMode::Always,
            SharedCacheMode::Never,
            SharedCacheMode::Adaptive,
        ] {
            for threads in [1usize, 3] {
                let mut ens = ensemble(vec![300, 100], 20, 5)
                    .with_cache_mode(mode)
                    .with_parallelism(Parallelism::fixed(threads));
                let mut recorders = vec![Log::default(); 5];
                let outcome = ens.run_recorded(stop, &mut recorders);
                assert!(outcome.all_reached_goal());
                assert_eq!(
                    recorders, expected,
                    "{mode:?} at {threads} threads diverged"
                );
            }
        }
    }

    #[test]
    fn recorder_count_must_match_replica_count() {
        let mut ens = ensemble(vec![50, 50], 0, 3);
        let mut recorders = vec![Log::default(); 2];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ens.run_recorded(
                StopCondition::consensus().or_max_interactions(100),
                &mut recorders,
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn telemetry_records_window_spans_without_changing_results() {
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let silent = ensemble(vec![400, 100], 30, 6)
            .with_parallelism(Parallelism::fixed(2))
            .run(stop);
        let tel = Telemetry::enabled();
        let mut ens = ensemble(vec![400, 100], 30, 6).with_parallelism(Parallelism::fixed(2));
        ens.set_telemetry(tel.clone());
        let traced = ens.run(stop);
        // Attaching telemetry must not perturb a single replica.
        assert_eq!(silent.results(), traced.results());
        let spans = tel.spans();
        assert!(spans.iter().any(|s| s.name == "ensemble.window"));
        assert!(spans.iter().any(|s| s.name == "ensemble.mapped.forkjoin"));
        assert!(spans
            .iter()
            .any(|s| s.name == "ensemble.mapped" && s.tid >= 1));
        crate::telemetry::check_span_nesting(&spans).expect("window spans must nest");
        let snap = tel.snapshot();
        assert_eq!(
            snap.counter("ensemble.shared_hits"),
            Some(traced.shared_hits())
        );
        assert_eq!(snap.counter("ensemble.rounds"), Some(traced.rounds()));
        assert!(snap.counter("ensemble.recorded_events").unwrap() > 0);
        assert_eq!(snap.gauge("ensemble.replicas"), Some(6.0));
    }

    #[test]
    fn metrics_snapshot_aggregates_replica_counters() {
        let mut ens = ensemble(vec![500, 100], 0, 4).with_cache_mode(SharedCacheMode::Always);
        let outcome = ens.run(StopCondition::consensus().or_max_interactions(5_000_000));
        let snap = outcome.metrics_snapshot();
        assert_eq!(
            snap.counter("ensemble.shared_hits"),
            Some(outcome.shared_hits())
        );
        assert_eq!(snap.counter("ensemble.dormant_events"), Some(0));
        assert_eq!(snap.gauge("ensemble.replicas"), Some(4.0));
        // Replica engine counters fold in under the canonical names.
        let drawn = snap.counter("batched.events_drawn").unwrap();
        assert!(drawn > 0);
        let total_events: u64 = outcome
            .results()
            .iter()
            .map(|r| {
                r.telemetry()
                    .unwrap()
                    .counter("batched.events_drawn")
                    .unwrap()
            })
            .sum();
        assert_eq!(drawn, total_events);
        // Fraction gauges are recomputed from the aggregate, not absorbed.
        let agg: MaintenanceStats =
            outcome
                .results()
                .iter()
                .fold(MaintenanceStats::default(), |mut acc, r| {
                    acc.absorb(r.maintenance().unwrap());
                    acc
                });
        assert_eq!(
            snap.gauge("maintenance.rows_patched_fraction"),
            agg.rows_patched_fraction()
        );
    }

    #[test]
    fn checkpoint_restores_the_identical_trajectory_tail_at_any_thread_count() {
        // Uninterrupted reference run.
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let expected = ensemble(vec![400, 100], 30, 6).run(stop);

        for threads in [1usize, 3] {
            // Interrupted run: spend a few scheduling windows, pause with
            // live replicas, capture, and throw the engine away.
            let mut paused =
                ensemble(vec![400, 100], 30, 6).with_parallelism(Parallelism::fixed(threads));
            assert!(
                paused.run_windows(stop, 2).is_none(),
                "two windows must not finish six replicas"
            );
            let json = Checkpoint::capture(&paused).to_json();
            drop(paused);

            // Restore from the serialized checkpoint and finish under the
            // same stop condition.
            let checkpoint = Checkpoint::from_json(&json).unwrap();
            let mut restored = EnsembleEngine::<BatchedEngine<Usd2>>::restore(&Usd2, &checkpoint)
                .unwrap()
                .with_parallelism(Parallelism::fixed(threads));
            let resumed = restored
                .run_windows(stop, u64::MAX)
                .expect("an unbounded window budget always finishes");
            assert_eq!(
                resumed.results(),
                expected.results(),
                "restored tail diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn pause_and_resume_in_place_matches_the_uninterrupted_run() {
        // Pausing the *same* engine (no serialization round-trip) and
        // resuming must also be invisible to the per-replica results.
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let expected = ensemble(vec![300, 100], 20, 5).run(stop);
        let mut ens = ensemble(vec![300, 100], 20, 5);
        let mut outcome = ens.run_windows(stop, 1);
        let mut pauses = 0u32;
        while outcome.is_none() {
            pauses += 1;
            assert!(pauses < 1_000_000, "run never completed");
            outcome = ens.run_windows(stop, 1);
        }
        assert!(pauses > 0, "a one-window budget must pause at least once");
        assert_eq!(outcome.unwrap().results(), expected.results());
    }

    #[test]
    fn restore_rejects_foreign_kinds() {
        let ens = ensemble(vec![50, 50], 0, 2);
        let replica_only = Checkpoint::capture(&ens.replicas()[0]);
        let err = EnsembleEngine::<BatchedEngine<Usd2>>::restore(&Usd2, &replica_only).unwrap_err();
        match err {
            PpError::Checkpoint { reason } => {
                assert!(reason.contains("batched"), "{reason}");
                assert!(reason.contains("ensemble"), "{reason}");
            }
            other => panic!("expected a checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn ensemble_engines_and_shared_tables_cross_threads() {
        // The parallel path moves replicas to workers and shares tables
        // behind Arcs: pin the auto-trait obligations so a regression (an
        // Rc or RefCell sneaking back into the shared state) fails here,
        // not in a consumer crate.
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send::<BatchedEngine<Usd2>>();
        assert_send_sync::<RowTable>();
        assert_send_sync::<Parallelism>();
        assert_send_sync::<EnsembleChoice>();
    }
}
