//! Lockstep multi-replica simulation with shared row computations.
//!
//! Every Monte Carlo experiment in this workspace (hitting times, phase
//! durations, bias sweeps) averages over independent replicas of the same
//! protocol and initial configuration.  Run one at a time, each replica
//! re-derives the per-counts data its skip-ahead engine needs — the
//! productive row table of a [`BatchedEngine`], the activation law of a
//! sampling dynamic — even though those tables are pure functions of the
//! count vector and the replicas walk heavily overlapping regions of the
//! count space.  [`EnsembleEngine`] removes that waste by advancing `R`
//! replicas in *lockstep epochs*:
//!
//! 1. **Shared row computations.** Between state-changing events a replica's
//!    counts are frozen, so the per-counts tables are exact to share: the
//!    ensemble keeps a counts-keyed cache of [`EnsembleReplica::Shared`]
//!    values, computes each table once, and hands the cached copy to every
//!    replica that currently sits at (or later revisits) the same counts.
//!    All replicas start from the identical configuration, and events move
//!    single agents, so the walks revisit cached counts constantly —
//!    especially in effectively low-dimensional workloads (two opinions, no
//!    undecided pool) where [`EnsembleRunResult::shared_reuse_fraction`]
//!    typically exceeds 90%.  Sharing only pays when the table costs more
//!    than the map traffic, so the cache is *adaptive* by default
//!    ([`SharedCacheMode`]): windows with too little measured reuse turn
//!    the map dormant and recompute into per-replica scratch instead.
//! 2. **Batched draws.** Each lockstep round makes three passes over the
//!    live replicas, stored contiguously: resolve the shared tables (no
//!    RNG), draw every replica's geometric skip, then draw and apply every
//!    replica's state-changing event.  The RNG work runs in tight
//!    homogeneous passes instead of being interleaved with table
//!    derivations.
//!
//! # Exactness
//!
//! The ensemble is *bit-exact*, not merely exact in distribution: replica
//! `i` produces the same trajectory, interaction counter and [`RunResult`]
//! as a standalone engine constructed with the same seed
//! (conventionally `master.child(i)`, see [`EnsembleChoice::seeds`]).  The
//! argument has two halves:
//!
//! * the shared tables consume no randomness and are pure functions of the
//!   count vector, so dedup and caching cannot alter any replica's draws,
//!   and
//! * each replica owns its RNG stream, and [`EnsembleReplica`] splits the
//!   standalone `advance` into the same sequence of draws (skip first, then
//!   the event) the standalone path performs — interleaving replicas never
//!   reorders draws *within* one stream.
//!
//! `tests/ensemble_equivalence.rs` pins this claim for the USD and for all
//! five sampling dynamics.
//!
//! # Example
//!
//! ```
//! use pp_core::ensemble::{EnsembleChoice, EnsembleEngine};
//! use pp_core::prelude::*;
//!
//! struct TinyUsd;
//! impl OpinionProtocol for TinyUsd {
//!     fn num_opinions(&self) -> usize { 2 }
//!     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
//!         match (r, i) {
//!             (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
//!             (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
//!             _ => r,
//!         }
//!     }
//! }
//!
//! let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
//! let choice = EnsembleChoice::new(8);
//! let replicas: Vec<_> = choice
//!     .seeds(SimSeed::from_u64(7))
//!     .into_iter()
//!     .map(|seed| BatchedEngine::new(TinyUsd, config.clone(), seed))
//!     .collect();
//! let mut ensemble = EnsembleEngine::try_new(replicas).unwrap();
//! let outcome = ensemble.run(StopCondition::consensus().or_max_interactions(10_000_000));
//! assert!(outcome.all_reached_goal());
//! assert_eq!(outcome.len(), 8);
//! ```

use crate::config::Configuration;
use crate::engine::{geometric_skip, Advance, BatchedEngine, EngineChoice, StepEngine};
use crate::error::PpError;
use crate::protocol::OpinionProtocol;
use crate::rng::SimSeed;
use crate::run::{RunOutcome, RunResult};
use crate::stopping::StopCondition;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::rc::Rc;

/// Default bound on the number of counts-keyed shared tables the ensemble
/// keeps alive (the cache is cleared wholesale when the bound is hit; see
/// [`EnsembleEngine::with_cache_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// A replica engine that can be advanced in lockstep with its siblings.
///
/// The trait decomposes a skip-ahead `advance` into the pieces the ensemble
/// schedules separately: a per-counts [`Shared`](EnsembleReplica::Shared)
/// table that consumes no randomness (and is therefore exact to dedup across
/// replicas whose counts coincide), the geometric skip draw, and the event
/// draw.  Implementations must consume their RNG in *exactly* the order the
/// standalone [`StepEngine::advance`] does — skip first, then the event —
/// so that a lockstep replica stays bit-identical to a standalone run with
/// the same seed.
pub trait EnsembleReplica: StepEngine {
    /// The per-counts data shared between replicas at the same counts: the
    /// productive row table for [`BatchedEngine`], the activation law for a
    /// sampling dynamic.  Must be a pure function of the count vector.
    type Shared;

    /// Computes the shared table for the current counts.  Consumes no RNG.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::UnsupportedEngine`] when the replica cannot
    /// provide a shared skip-ahead table (e.g. a sampling dynamic without
    /// closed-form hooks); [`EnsembleEngine::try_new`] surfaces this as a
    /// construction-time diagnostic.
    fn compute_shared(&self) -> Result<Self::Shared, PpError>;

    /// The probability that one interaction changes the state, read from the
    /// shared table.  Must equal the value the standalone `advance` derives.
    fn event_probability(&self, shared: &Self::Shared) -> f64;

    /// Draws the geometric number of null interactions preceding the next
    /// event from this replica's own RNG (`None` = the skip provably
    /// overshoots `headroom`; memorylessness makes re-sampling later exact).
    fn draw_skip(&mut self, p: f64, headroom: u64) -> Option<u64>;

    /// Records `skip` null interactions plus the event interaction, then
    /// draws the state-changing event from the shared table (using this
    /// replica's own RNG) and applies it.
    fn apply_event(&mut self, shared: &Self::Shared, skip: u64);

    /// Forwards the interaction counter to `limit` without an event (the
    /// skip overshot, or the configuration is absorbing).
    fn forward_to_limit(&mut self, limit: u64);
}

impl<P: OpinionProtocol> EnsembleReplica for BatchedEngine<P> {
    type Shared = RowTable;

    fn compute_shared(&self) -> Result<RowTable, PpError> {
        let (rows, total) = self.enumerate_rows();
        Ok(RowTable { rows, total })
    }

    fn event_probability(&self, shared: &RowTable) -> f64 {
        let n = StepEngine::configuration(self).population() as f64;
        shared.total as f64 / (n * n)
    }

    fn draw_skip(&mut self, p: f64, headroom: u64) -> Option<u64> {
        geometric_skip(self.rng_mut(), p, headroom)
    }

    fn apply_event(&mut self, shared: &RowTable, skip: u64) {
        self.record_event_interactions(skip);
        self.draw_and_apply_event(&shared.rows, shared.total);
    }

    fn forward_to_limit(&mut self, limit: u64) {
        self.forward_to(limit);
    }
}

/// The shared per-counts table of a [`BatchedEngine`] replica: productive
/// weight per responder category plus their sum (`W`; the event probability
/// is `W/n²`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowTable {
    /// Productive weight per responder category (`k + 1` entries, undecided
    /// last), matching the standalone engine's scratch rows bit for bit.
    pub rows: Vec<u128>,
    /// Sum of the rows.
    pub total: u128,
}

/// An `EngineChoice`-adjacent selector for ensemble runs: how many lockstep
/// replicas to advance, and which per-replica backend drives each of them.
///
/// Only the batched backend is a valid base — the lockstep engine exists to
/// share skip-ahead tables, which the exact backend does not use, the
/// sharded backend manages per-shard (and spawns threads of its own), and
/// the mean-field backend replaces with a deterministic ODE.  Those
/// combinations are rejected by [`EnsembleChoice::validate`] with an
/// [`PpError::UnsupportedEngine`] naming the offending nesting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnsembleChoice {
    replicas: usize,
    base: EngineChoice,
}

impl EnsembleChoice {
    /// An ensemble of `replicas` lockstep copies on the batched base
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    #[must_use]
    pub fn new(replicas: usize) -> Self {
        assert!(replicas >= 1, "an ensemble needs at least one replica");
        EnsembleChoice {
            replicas,
            base: EngineChoice::Batched,
        }
    }

    /// Overrides the per-replica base backend (validation will reject
    /// everything but [`EngineChoice::Batched`]; the setter exists so
    /// callers can funnel a user-selected engine through
    /// [`EnsembleChoice::validate`] and get the precise diagnostic).
    #[must_use]
    pub fn with_base(mut self, base: EngineChoice) -> Self {
        self.base = base;
        self
    }

    /// Number of lockstep replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The per-replica base backend.
    #[must_use]
    pub fn base(&self) -> EngineChoice {
        self.base
    }

    /// Checks that the base backend can run inside the lockstep ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::UnsupportedEngine`] for every base but
    /// [`EngineChoice::Batched`] (`"exact-inside-ensemble"`,
    /// `"sharded-inside-ensemble"`, `"mean-field-inside-ensemble"`).
    pub fn validate(&self) -> Result<(), PpError> {
        match self.base {
            EngineChoice::Batched => Ok(()),
            EngineChoice::Exact => Err(PpError::UnsupportedEngine {
                requested: "exact-inside-ensemble",
            }),
            EngineChoice::Sharded => Err(PpError::UnsupportedEngine {
                requested: "sharded-inside-ensemble",
            }),
            EngineChoice::MeanField => Err(PpError::UnsupportedEngine {
                requested: "mean-field-inside-ensemble",
            }),
        }
    }

    /// The per-replica seeds of an ensemble run: replica `i` gets
    /// `master.child(i)`.  This is the workspace-wide convention the
    /// bit-exactness guarantee is stated against — a standalone engine
    /// seeded with `master.child(i)` reproduces ensemble replica `i`
    /// exactly.
    #[must_use]
    pub fn seeds(&self, master: SimSeed) -> Vec<SimSeed> {
        (0..self.replicas as u64).map(|i| master.child(i)).collect()
    }
}

/// The aggregate outcome of one [`EnsembleEngine::run`]: every replica's
/// [`RunResult`] (index-aligned with the construction order) plus the
/// lockstep bookkeeping the throughput experiments report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleRunResult {
    results: Vec<RunResult>,
    rounds: u64,
    shared_hits: u64,
    shared_misses: u64,
    cache_evictions: u64,
}

impl EnsembleRunResult {
    /// Per-replica results, in construction order (replica `i` matches a
    /// standalone run with seed `master.child(i)`).
    #[must_use]
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// The result of replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn replica(&self, i: usize) -> &RunResult {
        &self.results[i]
    }

    /// Number of replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the ensemble held no replicas (never true for results
    /// produced by [`EnsembleEngine::run`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Lockstep rounds the run took (the longest replica's event count plus
    /// its finishing round).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Shared-table lookups answered from the counts-keyed cache.
    #[must_use]
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Shared-table lookups that had to compute a fresh table.
    #[must_use]
    pub fn shared_misses(&self) -> u64 {
        self.shared_misses
    }

    /// How often the cache was cleared because it hit its capacity bound.
    #[must_use]
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// Fraction of shared-table lookups served without recomputation — the
    /// dedup win the lockstep design buys (0 when nothing was looked up).
    #[must_use]
    pub fn shared_reuse_fraction(&self) -> f64 {
        let lookups = self.shared_hits + self.shared_misses;
        if lookups == 0 {
            0.0
        } else {
            self.shared_hits as f64 / lookups as f64
        }
    }

    /// Total interactions advanced across all replicas (the numerator of
    /// the aggregate interactions/sec metric).
    #[must_use]
    pub fn total_interactions(&self) -> u128 {
        self.results
            .iter()
            .map(|r| u128::from(r.interactions()))
            .sum()
    }

    /// Whether every replica reached its structural goal (consensus or
    /// settlement) rather than running out of budget.
    #[must_use]
    pub fn all_reached_goal(&self) -> bool {
        self.results.iter().all(|r| r.outcome().is_goal())
    }
}

/// How the ensemble shares per-counts tables across replicas.
///
/// Sharing is only a win when the table is dearer than the map traffic that
/// caches it: a hit saves one table computation but costs a hash lookup, a
/// miss additionally pays an insert and two allocations.  For the j-Majority
/// family (an `O(k²j³)` dynamic program per table, reuse above 90% in the
/// two-opinion regime) the cache is the whole point; for the USD (an `O(k)`
/// integer table) it can cost an order of magnitude more than it saves.
/// The mode never affects *results* — only wall-clock — because shared
/// tables are pure functions of the counts and consume no randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharedCacheMode {
    /// Windowed self-tuning (the default): cache while the measured reuse
    /// rate clears [`SharedCacheMode::ADAPTIVE_MIN_HIT`], go dormant when
    /// it does not — dormant rounds advance each replica through its own
    /// standalone `advance` in chunks, at standalone cost — and re-probe
    /// after a dormancy period that backs off exponentially while probes
    /// keep failing.
    #[default]
    Adaptive,
    /// Cache unconditionally.
    Always,
    /// Never cache: every round advances the replicas through their own
    /// standalone `advance` (the ensemble then costs what the replica loop
    /// costs, interleaved at chunk granularity).
    Never,
}

impl SharedCacheMode {
    /// The window hit rate below which [`SharedCacheMode::Adaptive`] turns
    /// the map dormant.
    pub const ADAPTIVE_MIN_HIT: f64 = 0.75;
    /// Lookups per adaptivity window.
    pub const WINDOW: u64 = 4096;
    /// Dormant scheduling rounds after the first failed probe; doubled per
    /// consecutive failure up to `<< MAX_BACKOFF`.
    pub const DORMANT_ROUNDS: u64 = 8;
    /// Cap on the exponential dormancy backoff.
    pub const MAX_BACKOFF: u32 = 6;
    /// Events each live replica advances per dormant scheduling round
    /// (chunking keeps the replica's state hot and the scheduling overhead
    /// negligible).
    pub const DORMANT_CHUNK_EVENTS: u32 = 256;
}

/// Counts-keyed cache of shared per-counts tables.  Keys are the full
/// category count vector (supports then undecided); values are refcounted so
/// a hit costs one pointer clone.
#[derive(Debug)]
struct SharedCache<S> {
    map: HashMap<Box<[u64]>, Rc<S>>,
    capacity: usize,
    mode: SharedCacheMode,
    key_scratch: Vec<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
    window_lookups: u64,
    window_hits: u64,
    dormant_rounds: u64,
    backoff: u32,
}

impl<S> SharedCache<S> {
    fn new(capacity: usize, mode: SharedCacheMode) -> Self {
        SharedCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            mode,
            key_scratch: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            window_lookups: 0,
            window_hits: 0,
            dormant_rounds: 0,
            backoff: 0,
        }
    }

    /// Whether the coming scheduling round should resolve tables through
    /// the map.  A `false` round is dormant: the replicas advance through
    /// their standalone paths (in chunks) at standalone cost.
    fn round_uses_map(&mut self) -> bool {
        match self.mode {
            SharedCacheMode::Always => true,
            SharedCacheMode::Never => false,
            SharedCacheMode::Adaptive => {
                if self.dormant_rounds > 0 {
                    self.dormant_rounds -= 1;
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Accounts the events a dormant round advanced without any table
    /// sharing (they enter the reuse statistics as misses).
    fn note_dormant_events(&mut self, events: u64) {
        self.misses += events;
    }

    /// Looks up the shared table for `config`, computing and caching it on a
    /// miss.  When the cache is full it is cleared wholesale: the replicas
    /// cluster around the current stretch of their (drifting) trajectories,
    /// so dropping the long-departed tail costs a brief warm-up, not a
    /// sustained miss rate.
    fn get_or_compute(&mut self, config: &Configuration, compute: impl FnOnce() -> S) -> Rc<S> {
        self.key_scratch.clear();
        self.key_scratch.extend_from_slice(config.supports());
        self.key_scratch.push(config.undecided());
        let found = self.map.get(self.key_scratch.as_slice()).map(Rc::clone);
        self.window_lookups += 1;
        self.window_hits += u64::from(found.is_some());
        if self.window_lookups >= SharedCacheMode::WINDOW {
            // End of window: under the adaptive mode, a reuse rate that no
            // longer pays for the map traffic turns the map dormant until
            // the next probe, with exponentially backed-off dormancy while
            // probes keep failing (entries are kept — probes start warm).
            let rate = self.window_hits as f64 / self.window_lookups as f64;
            if self.mode == SharedCacheMode::Adaptive {
                if rate < SharedCacheMode::ADAPTIVE_MIN_HIT {
                    self.dormant_rounds = SharedCacheMode::DORMANT_ROUNDS << self.backoff;
                    self.backoff = (self.backoff + 1).min(SharedCacheMode::MAX_BACKOFF);
                } else {
                    self.backoff = 0;
                }
            }
            self.window_lookups = 0;
            self.window_hits = 0;
        }
        if let Some(found) = found {
            self.hits += 1;
            return found;
        }
        self.misses += 1;
        if self.map.len() >= self.capacity {
            self.map.clear();
            self.evictions += 1;
        }
        let value = Rc::new(compute());
        self.map.insert(
            self.key_scratch.clone().into_boxed_slice(),
            Rc::clone(&value),
        );
        value
    }
}

/// Where one live replica stands within the current lockstep round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundState {
    /// Shared table resolved; the skip has not been drawn yet.
    Pending,
    /// The skip landed: an event with this many preceding nulls is due.
    Event(u64),
    /// The skip overshot the limit; the counter was forwarded.
    LimitReached,
    /// No state change is possible from the current configuration, ever.
    Absorbed,
}

/// Advances `R` replicas of one protocol/configuration in lockstep epochs
/// with counts-deduplicated shared tables and batched draws (module docs
/// have the full design and exactness argument).
///
/// Not [`Send`]: the shared tables are refcounted with [`Rc`].  Ensemble
/// parallelism composes with the *experiment*-level thread pool (each thread
/// drives its own ensemble), not with threads inside one ensemble.
#[derive(Debug)]
pub struct EnsembleEngine<E: EnsembleReplica>
where
    E::Shared: std::fmt::Debug,
{
    replicas: Vec<E>,
    cache: SharedCache<E::Shared>,
    rounds: u64,
}

impl<E: EnsembleReplica> EnsembleEngine<E>
where
    E::Shared: std::fmt::Debug,
{
    /// Builds a lockstep ensemble over the given replicas (conventionally
    /// all constructed from one configuration with seeds
    /// [`EnsembleChoice::seeds`]).
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Config`] (empty population) when `replicas` is
    /// empty, [`PpError::OpinionCountMismatch`] when the replicas disagree
    /// on the opinion count, and propagates the first replica's
    /// [`EnsembleReplica::compute_shared`] error when the backend cannot
    /// provide shared tables (e.g. a sampling dynamic without skip-ahead
    /// hooks).
    pub fn try_new(replicas: Vec<E>) -> Result<Self, PpError> {
        let Some(first) = replicas.first() else {
            return Err(PpError::Config(crate::error::ConfigError::EmptyPopulation));
        };
        let k = first.configuration().num_opinions();
        for replica in &replicas {
            if replica.configuration().num_opinions() != k {
                return Err(PpError::OpinionCountMismatch {
                    protocol: k,
                    configuration: replica.configuration().num_opinions(),
                });
            }
        }
        // Surface "this backend cannot share tables" at construction, not
        // mid-run: the shipped dynamics support every configuration, so a
        // failure here is the caller requesting an unsupported combination.
        first.compute_shared()?;
        Ok(EnsembleEngine {
            replicas,
            cache: SharedCache::new(DEFAULT_CACHE_CAPACITY, SharedCacheMode::default()),
            rounds: 0,
        })
    }

    /// Bounds the number of cached shared tables (default
    /// [`DEFAULT_CACHE_CAPACITY`]).  Smaller caches trade recomputation for
    /// memory; the cache is cleared wholesale when the bound is hit.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = SharedCache::new(capacity, self.cache.mode);
        self
    }

    /// Selects the shared-table caching policy (default
    /// [`SharedCacheMode::Adaptive`]).  Never affects results, only
    /// wall-clock — see [`SharedCacheMode`].
    #[must_use]
    pub fn with_cache_mode(mut self, mode: SharedCacheMode) -> Self {
        self.cache = SharedCache::new(self.cache.capacity, mode);
        self
    }

    /// The replicas, in construction order.
    #[must_use]
    pub fn replicas(&self) -> &[E] {
        &self.replicas
    }

    /// Number of replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the ensemble holds no replicas (construction rejects this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Runs every replica until it meets the stop condition, advancing the
    /// live replicas in lockstep rounds, and returns the index-aligned
    /// per-replica results.  Each replica's result is identical to what the
    /// standalone `run_engine` would return for the same seed.
    ///
    /// # Panics
    ///
    /// Panics if the stop condition is unbounded, if a replica reaches an
    /// absorbing configuration that cannot meet a budget-less stop
    /// condition (the same loud-failure contract as
    /// [`StepEngine::run_engine_recorded`]), or if a replica stops
    /// providing shared tables mid-run (impossible for the shipped
    /// backends).
    pub fn run(&mut self, stop: StopCondition) -> EnsembleRunResult {
        assert!(
            stop.is_bounded(),
            "stop condition can never terminate the run"
        );
        let rounds_before = self.rounds;
        let hits_before = self.cache.hits;
        let misses_before = self.cache.misses;
        let evictions_before = self.cache.evictions;
        let replica_count = self.replicas.len();
        let mut results: Vec<Option<RunResult>> = (0..replica_count).map(|_| None).collect();
        let mut live: Vec<usize> = (0..replica_count).collect();
        let mut planned: Vec<(usize, Rc<E::Shared>, RoundState)> =
            Vec::with_capacity(replica_count);
        let limit = stop.max_interactions().unwrap_or(u64::MAX);

        while !live.is_empty() {
            self.rounds += 1;

            // Pass 0: finish replicas whose stop condition is met, in the
            // same goal-before-budget order as the standalone driver.
            let replicas = &mut self.replicas;
            live.retain(|&i| {
                let replica = &replicas[i];
                if stop.goal_met(replica.configuration()) {
                    let outcome = if replica.configuration().is_consensus() {
                        RunOutcome::Consensus
                    } else {
                        RunOutcome::OpinionSettled
                    };
                    results[i] = Some(finish(replica, outcome));
                    return false;
                }
                if stop
                    .max_interactions()
                    .is_some_and(|b| replica.interactions() >= b)
                {
                    results[i] = Some(finish(replica, RunOutcome::BudgetExhausted));
                    return false;
                }
                true
            });

            // A dormant round (cache policy decided the map does not pay)
            // advances every live replica through its own standalone
            // `advance`, a chunk of events at a time — bit-identical draws
            // at standalone cost and locality, no table resolution, no
            // refcount traffic.  Finishing is left to the next retain pass.
            if !self.cache.round_uses_map() {
                let mut advanced = 0u64;
                for &i in &live {
                    let replica = &mut self.replicas[i];
                    for _ in 0..SharedCacheMode::DORMANT_CHUNK_EVENTS {
                        if stop.goal_met(replica.configuration())
                            || stop
                                .max_interactions()
                                .is_some_and(|b| replica.interactions() >= b)
                        {
                            break;
                        }
                        match StepEngine::advance(replica, limit) {
                            Advance::Event => advanced += 1,
                            Advance::LimitReached => break,
                            Advance::Absorbed => {
                                assert!(
                                    stop.max_interactions().is_some()
                                        || stop.goal_met(replica.configuration()),
                                    "absorbing configuration {} can never meet the stop condition",
                                    replica.configuration()
                                );
                                break;
                            }
                        }
                    }
                }
                self.cache.note_dormant_events(advanced);
                continue;
            }

            // Pass 1 (no RNG): resolve the shared tables, deduplicated by
            // counts across the live replicas.
            planned.clear();
            for &i in &live {
                let replica = &self.replicas[i];
                let shared = self.cache.get_or_compute(replica.configuration(), || {
                    replica
                        .compute_shared()
                        .expect("replica stopped providing shared tables mid-run")
                });
                planned.push((i, shared, RoundState::Pending));
            }

            // Pass 2 (one RNG draw per replica): the geometric skips.
            for (i, shared, state) in planned.iter_mut() {
                let replica = &mut self.replicas[*i];
                let p = replica.event_probability(shared);
                if p <= 0.0 {
                    replica.forward_to_limit(limit);
                    *state = RoundState::Absorbed;
                    continue;
                }
                let headroom = limit - replica.interactions();
                *state = match replica.draw_skip(p, headroom) {
                    Some(skip) => RoundState::Event(skip),
                    None => {
                        replica.forward_to_limit(limit);
                        RoundState::LimitReached
                    }
                };
            }

            // Pass 3 (event draws): realize the state-changing events.
            for (i, shared, state) in planned.drain(..) {
                match state {
                    RoundState::Event(skip) => self.replicas[i].apply_event(&shared, skip),
                    RoundState::Absorbed => {
                        let replica = &self.replicas[i];
                        assert!(
                            stop.max_interactions().is_some()
                                || stop.goal_met(replica.configuration()),
                            "absorbing configuration {} can never meet the stop condition",
                            replica.configuration()
                        );
                    }
                    RoundState::LimitReached | RoundState::Pending => {}
                }
            }
        }

        EnsembleRunResult {
            results: results
                .into_iter()
                .map(|r| r.expect("every replica finished"))
                .collect(),
            rounds: self.rounds - rounds_before,
            shared_hits: self.cache.hits - hits_before,
            shared_misses: self.cache.misses - misses_before,
            cache_evictions: self.cache.evictions - evictions_before,
        }
    }
}

/// A finished replica's result, carrying the same metadata the standalone
/// `run_engine` records.
fn finish<E: StepEngine>(replica: &E, outcome: RunOutcome) -> RunResult {
    RunResult::new(
        outcome,
        replica.interactions(),
        replica.configuration().clone(),
    )
    .with_scheduler(replica.scheduler_name())
    .with_rejection_misses(replica.rejection_misses())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::AgentState;

    /// The 2-opinion USD with closed-form batching hooks.
    #[derive(Debug, Clone)]
    struct Usd2;

    impl OpinionProtocol for Usd2 {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
        fn name(&self) -> &str {
            "usd-2"
        }
    }

    fn ensemble(
        counts: Vec<u64>,
        undecided: u64,
        replicas: usize,
    ) -> EnsembleEngine<BatchedEngine<Usd2>> {
        let config = Configuration::from_counts(counts, undecided).unwrap();
        let members = EnsembleChoice::new(replicas)
            .seeds(SimSeed::from_u64(99))
            .into_iter()
            .map(|seed| BatchedEngine::new(Usd2, config.clone(), seed))
            .collect();
        EnsembleEngine::try_new(members).unwrap()
    }

    #[test]
    fn replicas_match_standalone_runs_bit_for_bit() {
        let config = Configuration::from_counts(vec![400, 100], 0).unwrap();
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let mut ens = ensemble(vec![400, 100], 0, 6);
        let outcome = ens.run(stop);
        for (i, seed) in EnsembleChoice::new(6)
            .seeds(SimSeed::from_u64(99))
            .into_iter()
            .enumerate()
        {
            let mut standalone = BatchedEngine::new(Usd2, config.clone(), seed);
            let expected = standalone.run_engine(stop);
            assert_eq!(outcome.replica(i), &expected, "replica {i} diverged");
        }
        assert!(outcome.all_reached_goal());
        assert!(outcome.rounds() > 0);
    }

    #[test]
    fn shared_tables_are_deduplicated_across_identical_replicas() {
        // All replicas start at identical counts, so round 1 computes one
        // table for all of them: misses stay far below lookups.
        let mut ens = ensemble(vec![900, 100], 0, 16).with_cache_mode(SharedCacheMode::Always);
        let outcome = ens.run(StopCondition::consensus().or_max_interactions(5_000_000));
        assert!(outcome.shared_hits() > 0);
        assert!(
            outcome.shared_reuse_fraction() > 0.3,
            "reuse fraction {} too low",
            outcome.shared_reuse_fraction()
        );
        assert_eq!(outcome.cache_evictions(), 0);
        assert!(outcome.total_interactions() > 0);
    }

    #[test]
    fn every_cache_mode_produces_identical_results() {
        // The caching policy trades wall-clock only: all three modes must
        // return bit-identical per-replica results.
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let reference = ensemble(vec![500, 150], 50, 5)
            .with_cache_mode(SharedCacheMode::Always)
            .run(stop);
        for mode in [SharedCacheMode::Adaptive, SharedCacheMode::Never] {
            let outcome = ensemble(vec![500, 150], 50, 5)
                .with_cache_mode(mode)
                .run(stop);
            assert_eq!(outcome.results(), reference.results(), "{mode:?} diverged");
        }
        // The uncached mode never touches the map.
        let never = ensemble(vec![500, 150], 50, 5)
            .with_cache_mode(SharedCacheMode::Never)
            .run(stop);
        assert_eq!(never.shared_hits(), 0);
        assert!(never.shared_misses() > 0);
    }

    #[test]
    fn tiny_cache_capacity_still_produces_exact_results() {
        let config = Configuration::from_counts(vec![300, 100], 0).unwrap();
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let mut ens = ensemble(vec![300, 100], 0, 4)
            .with_cache_capacity(2)
            .with_cache_mode(SharedCacheMode::Always);
        let outcome = ens.run(stop);
        assert!(outcome.cache_evictions() > 0, "capacity 2 must evict");
        for (i, seed) in EnsembleChoice::new(4)
            .seeds(SimSeed::from_u64(99))
            .into_iter()
            .enumerate()
        {
            let mut standalone = BatchedEngine::new(Usd2, config.clone(), seed);
            assert_eq!(outcome.replica(i), &standalone.run_engine(stop));
        }
    }

    #[test]
    fn budget_exhaustion_matches_standalone_accounting() {
        let stop = StopCondition::consensus().or_max_interactions(200);
        let mut ens = ensemble(vec![500, 500], 0, 3);
        let outcome = ens.run(stop);
        for result in outcome.results() {
            if result.outcome() == RunOutcome::BudgetExhausted {
                assert_eq!(result.interactions(), 200);
            } else {
                assert!(result.interactions() <= 200);
            }
        }
    }

    #[test]
    fn absorbed_replicas_exhaust_the_budget() {
        // Every agent undecided: the USD can never change anything.
        let mut ens = ensemble(vec![0, 0], 64, 3);
        let outcome = ens.run(StopCondition::consensus().or_max_interactions(10_000));
        for result in outcome.results() {
            assert_eq!(result.outcome(), RunOutcome::BudgetExhausted);
            assert_eq!(result.interactions(), 10_000);
        }
    }

    #[test]
    fn empty_ensembles_are_rejected() {
        let err = EnsembleEngine::<BatchedEngine<Usd2>>::try_new(Vec::new()).unwrap_err();
        assert!(matches!(err, PpError::Config(_)));
    }

    #[test]
    fn ensemble_choice_validates_bases_and_derives_seeds() {
        let choice = EnsembleChoice::new(4);
        assert_eq!(choice.replicas(), 4);
        assert_eq!(choice.base(), EngineChoice::Batched);
        assert!(choice.validate().is_ok());
        let seeds = choice.seeds(SimSeed::from_u64(5));
        assert_eq!(seeds.len(), 4);
        assert_eq!(seeds[2], SimSeed::from_u64(5).child(2));
        for (base, name) in [
            (EngineChoice::Exact, "exact-inside-ensemble"),
            (EngineChoice::Sharded, "sharded-inside-ensemble"),
            (EngineChoice::MeanField, "mean-field-inside-ensemble"),
        ] {
            let err = choice.with_base(base).validate().unwrap_err();
            assert_eq!(err, PpError::UnsupportedEngine { requested: name });
        }
    }

    #[test]
    fn run_result_aggregates_are_consistent() {
        let mut ens = ensemble(vec![190, 10], 0, 5);
        let outcome = ens.run(StopCondition::consensus().or_max_interactions(2_000_000));
        assert_eq!(outcome.len(), 5);
        assert!(!outcome.is_empty());
        let total: u128 = outcome
            .results()
            .iter()
            .map(|r| u128::from(r.interactions()))
            .sum();
        assert_eq!(outcome.total_interactions(), total);
        let lookups = outcome.shared_hits() + outcome.shared_misses();
        assert!(lookups > 0);
        assert!(outcome.shared_reuse_fraction() <= 1.0);
    }
}
