//! Run results.

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// All agents agree on one opinion (`x_i = n`).
    Consensus,
    /// At most one opinion retains non-zero support (undecided agents may
    /// remain, but the eventual winner is already determined).
    OpinionSettled,
    /// The interaction budget was exhausted before the goal was reached.
    BudgetExhausted,
}

impl RunOutcome {
    /// Returns `true` if the run reached its structural goal (consensus or
    /// settlement) rather than running out of budget.
    #[must_use]
    pub fn is_goal(self) -> bool {
        !matches!(self, RunOutcome::BudgetExhausted)
    }
}

/// How an engine kept its sampling law (row table or activation law) in sync
/// with the evolving counts over one run: how often the law was *patched* in
/// `O(delta)` from the applied event versus *rebuilt* from scratch.
///
/// Incremental maintenance is bit-identical to rebuilding by construction
/// (all maintained weights are exact integers), so these counters measure
/// cost, not accuracy: a run dominated by `rows_rebuilt`/`law_rebuilds` is
/// paying the full per-event law cost the incremental layer exists to avoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceStats {
    /// Row tables updated in place by applying the event's `(from, to)` delta.
    pub rows_patched: u64,
    /// Row tables recomputed from the full counts (first event, invalidation
    /// after external count edits, or a protocol without the delta rule).
    pub rows_rebuilt: u64,
    /// Activation laws updated in place across a `±1` counts change.
    pub law_patches: u64,
    /// Activation laws recomputed from the full counts on purpose (first
    /// event, parameter change, or incremental maintenance disabled).
    pub law_rebuilds: u64,
    /// Activation laws recomputed because the integer closed form ran out of
    /// headroom and the evaluation fell back to the floating-point program —
    /// a *per-event* cost (e.g. the j-Majority at `j = 7`, `n = 10⁶`), kept
    /// separate from `law_rebuilds` so the u128-headroom caveat is visible
    /// instead of lumped in with intentional cold rebuilds.
    pub law_fallback_rebuilds: u64,
}

impl MaintenanceStats {
    /// Accumulates another engine's counters into this one (used when a run
    /// aggregates several engines, e.g. ensemble replicas or shards).
    pub fn absorb(&mut self, other: MaintenanceStats) {
        self.rows_patched += other.rows_patched;
        self.rows_rebuilt += other.rows_rebuilt;
        self.law_patches += other.law_patches;
        self.law_rebuilds += other.law_rebuilds;
        self.law_fallback_rebuilds += other.law_fallback_rebuilds;
    }

    /// Fraction of row-table refreshes served by the incremental patch, if
    /// any refresh happened.
    #[must_use]
    pub fn rows_patched_fraction(&self) -> Option<f64> {
        let total = self.rows_patched + self.rows_rebuilt;
        (total > 0).then(|| self.rows_patched as f64 / total as f64)
    }

    /// Fraction of activation-law refreshes served by the incremental patch,
    /// if any refresh happened.  Fallback rebuilds count toward the
    /// denominator: a workload past the integer-headroom gate pays the full
    /// law cost per event, and this fraction should say so.
    #[must_use]
    pub fn law_patched_fraction(&self) -> Option<f64> {
        let total = self.law_patches + self.law_rebuilds + self.law_fallback_rebuilds;
        (total > 0).then(|| self.law_patches as f64 / total as f64)
    }
}

/// The result of a single simulation run.
///
/// # Examples
///
/// ```
/// use pp_core::{Configuration, RunOutcome, RunResult};
///
/// let final_config = Configuration::from_counts(vec![100, 0], 0).unwrap();
/// let r = RunResult::new(RunOutcome::Consensus, 12_345, final_config);
/// assert!(r.reached_consensus());
/// assert_eq!(r.winner().unwrap().index(), 0);
/// assert!((r.parallel_time() - 123.45).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    outcome: RunOutcome,
    interactions: u64,
    final_configuration: Configuration,
    scheduler: Option<String>,
    rejection_misses: Option<u64>,
    #[serde(default)]
    maintenance: Option<MaintenanceStats>,
    #[serde(default)]
    telemetry: Option<MetricsSnapshot>,
}

/// Equality compares what the run *computed* — outcome, interaction count,
/// final configuration, scheduler, rejection counters — and deliberately
/// ignores the [`MaintenanceStats`] and the telemetry snapshot:
/// patch-vs-rebuild counts, cache statistics and timings describe how an
/// engine kept its tables in sync and may legitimately differ between
/// bit-identical runs (a lockstep ensemble replica and its standalone twin,
/// or the same ensemble at two thread counts, produce the same trajectory
/// with different maintenance schedules and wall times).
impl PartialEq for RunResult {
    fn eq(&self, other: &Self) -> bool {
        self.outcome == other.outcome
            && self.interactions == other.interactions
            && self.final_configuration == other.final_configuration
            && self.scheduler == other.scheduler
            && self.rejection_misses == other.rejection_misses
    }
}

impl RunResult {
    /// Creates a run result (with no scheduler recorded; see
    /// [`RunResult::with_scheduler`]).
    #[must_use]
    pub fn new(outcome: RunOutcome, interactions: u64, final_configuration: Configuration) -> Self {
        RunResult {
            outcome,
            interactions,
            final_configuration,
            scheduler: None,
            rejection_misses: None,
            maintenance: None,
            telemetry: None,
        }
    }

    /// Records the name of the interaction scheduler that produced this run,
    /// so experiment reports can identify it.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: impl Into<String>) -> Self {
        self.scheduler = Some(scheduler.into());
        self
    }

    /// The name of the interaction scheduler that produced this run, if the
    /// simulator recorded one.
    #[must_use]
    pub fn scheduler(&self) -> Option<&str> {
        self.scheduler.as_deref()
    }

    /// Records how many unproductive draws the engine discarded in
    /// rejection-sampling fallbacks during this run (`None` = the engine has
    /// no rejection path; see `StepEngine::rejection_misses`).
    #[must_use]
    pub fn with_rejection_misses(mut self, misses: Option<u64>) -> Self {
        self.rejection_misses = misses;
        self
    }

    /// The number of unproductive draws discarded by rejection-sampling
    /// fallbacks, if the engine counted any — the measured baseline for
    /// replacing rejection loops with closed-form conditional samplers.
    #[must_use]
    pub fn rejection_misses(&self) -> Option<u64> {
        self.rejection_misses
    }

    /// Records the engine's law-maintenance counters (`None` = the engine
    /// does not maintain laws across events; see `StepEngine::maintenance`).
    #[must_use]
    pub fn with_maintenance(mut self, maintenance: Option<MaintenanceStats>) -> Self {
        self.maintenance = maintenance;
        self
    }

    /// How the engine's sampling laws were kept in sync with the counts
    /// (patched in `O(delta)` vs rebuilt from scratch), if it counted.
    #[must_use]
    pub fn maintenance(&self) -> Option<MaintenanceStats> {
        self.maintenance
    }

    /// Records the engine's flat telemetry snapshot (`None` = the engine
    /// exposes no metrics; see `StepEngine::telemetry`).  Like the
    /// maintenance counters, the snapshot is ignored by equality.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Option<MetricsSnapshot>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The engine's unified metrics snapshot for this run (the one-surface
    /// replacement for the bespoke `rejection_misses` / `maintenance`
    /// accessors, which remain as deprecated-in-spirit aliases).
    #[must_use]
    pub fn telemetry(&self) -> Option<&MetricsSnapshot> {
        self.telemetry.as_ref()
    }

    /// Why the run stopped.
    #[must_use]
    pub fn outcome(&self) -> RunOutcome {
        self.outcome
    }

    /// Number of interactions performed.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions divided by the population size `n` — the standard
    /// conversion between the population protocol model's interaction count
    /// and the gossip model's parallel rounds.
    #[must_use]
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.final_configuration.population() as f64
    }

    /// The configuration at the end of the run.
    #[must_use]
    pub fn final_configuration(&self) -> &Configuration {
        &self.final_configuration
    }

    /// Returns `true` if the final configuration is a consensus.
    #[must_use]
    pub fn reached_consensus(&self) -> bool {
        self.final_configuration.is_consensus()
    }

    /// Returns `true` if the final configuration has at most one live opinion.
    #[must_use]
    pub fn opinion_settled(&self) -> bool {
        self.final_configuration.is_opinion_settled()
    }

    /// The winning opinion: the consensus opinion if consensus was reached,
    /// or the unique surviving opinion if the run settled, otherwise `None`.
    #[must_use]
    pub fn winner(&self) -> Option<Opinion> {
        if self.final_configuration.is_consensus() {
            self.final_configuration.consensus_opinion()
        } else if self.final_configuration.is_opinion_settled()
            && self.final_configuration.max_support() > 0
        {
            Some(self.final_configuration.max_opinion())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_for_settled_but_not_consensus() {
        let cfg = Configuration::from_counts(vec![0, 40, 0], 60).unwrap();
        let r = RunResult::new(RunOutcome::OpinionSettled, 99, cfg);
        assert!(!r.reached_consensus());
        assert!(r.opinion_settled());
        assert_eq!(r.winner(), Some(Opinion::new(1)));
    }

    #[test]
    fn no_winner_when_budget_exhausted_with_multiple_live_opinions() {
        let cfg = Configuration::from_counts(vec![40, 40], 20).unwrap();
        let r = RunResult::new(RunOutcome::BudgetExhausted, 1000, cfg);
        assert_eq!(r.winner(), None);
        assert!(!r.outcome().is_goal());
    }

    #[test]
    fn outcome_goal_flags() {
        assert!(RunOutcome::Consensus.is_goal());
        assert!(RunOutcome::OpinionSettled.is_goal());
        assert!(!RunOutcome::BudgetExhausted.is_goal());
    }

    #[test]
    fn rejection_misses_are_recorded_when_provided() {
        let cfg = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let r = RunResult::new(RunOutcome::Consensus, 5, cfg);
        assert_eq!(r.rejection_misses(), None);
        let r = r.with_rejection_misses(Some(42));
        assert_eq!(r.rejection_misses(), Some(42));
    }

    #[test]
    fn maintenance_stats_are_recorded_and_aggregated() {
        let cfg = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let r = RunResult::new(RunOutcome::Consensus, 5, cfg);
        assert_eq!(r.maintenance(), None);
        let mut stats = MaintenanceStats {
            rows_patched: 30,
            rows_rebuilt: 10,
            law_patches: 0,
            law_rebuilds: 0,
            law_fallback_rebuilds: 0,
        };
        stats.absorb(MaintenanceStats {
            rows_patched: 0,
            rows_rebuilt: 0,
            law_patches: 3,
            law_rebuilds: 1,
            law_fallback_rebuilds: 4,
        });
        let r = r.with_maintenance(Some(stats));
        let recorded = r.maintenance().unwrap();
        assert_eq!(recorded.rows_patched, 30);
        assert_eq!(recorded.law_rebuilds, 1);
        assert_eq!(recorded.law_fallback_rebuilds, 4);
        assert_eq!(recorded.rows_patched_fraction(), Some(0.75));
        assert_eq!(recorded.law_patched_fraction(), Some(0.375));
        assert_eq!(MaintenanceStats::default().rows_patched_fraction(), None);
    }

    #[test]
    fn equality_ignores_maintenance_counters() {
        // A lockstep replica and its standalone twin produce bit-identical
        // trajectories under different maintenance schedules; equality must
        // not distinguish them.
        let cfg = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let bare = RunResult::new(RunOutcome::Consensus, 5, cfg);
        let counted = bare.clone().with_maintenance(Some(MaintenanceStats {
            rows_patched: 4,
            rows_rebuilt: 1,
            law_patches: 0,
            law_rebuilds: 0,
            law_fallback_rebuilds: 0,
        }));
        assert_eq!(bare, counted);
        let other = RunResult::new(
            RunOutcome::Consensus,
            6,
            Configuration::from_counts(vec![10, 0], 0).unwrap(),
        );
        assert_ne!(bare, other);
    }

    #[test]
    fn scheduler_name_is_recorded_when_provided() {
        let cfg = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let bare = RunResult::new(RunOutcome::Consensus, 5, cfg.clone());
        assert_eq!(bare.scheduler(), None);
        let named = bare.with_scheduler("uniform ordered pairs (self-interactions allowed)");
        assert_eq!(
            named.scheduler(),
            Some("uniform ordered pairs (self-interactions allowed)")
        );
    }
}
