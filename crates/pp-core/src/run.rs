//! Run results.

use crate::config::Configuration;
use crate::opinion::Opinion;
use serde::{Deserialize, Serialize};

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// All agents agree on one opinion (`x_i = n`).
    Consensus,
    /// At most one opinion retains non-zero support (undecided agents may
    /// remain, but the eventual winner is already determined).
    OpinionSettled,
    /// The interaction budget was exhausted before the goal was reached.
    BudgetExhausted,
}

impl RunOutcome {
    /// Returns `true` if the run reached its structural goal (consensus or
    /// settlement) rather than running out of budget.
    #[must_use]
    pub fn is_goal(self) -> bool {
        !matches!(self, RunOutcome::BudgetExhausted)
    }
}

/// The result of a single simulation run.
///
/// # Examples
///
/// ```
/// use pp_core::{Configuration, RunOutcome, RunResult};
///
/// let final_config = Configuration::from_counts(vec![100, 0], 0).unwrap();
/// let r = RunResult::new(RunOutcome::Consensus, 12_345, final_config);
/// assert!(r.reached_consensus());
/// assert_eq!(r.winner().unwrap().index(), 0);
/// assert!((r.parallel_time() - 123.45).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    outcome: RunOutcome,
    interactions: u64,
    final_configuration: Configuration,
    scheduler: Option<String>,
    rejection_misses: Option<u64>,
}

impl RunResult {
    /// Creates a run result (with no scheduler recorded; see
    /// [`RunResult::with_scheduler`]).
    #[must_use]
    pub fn new(outcome: RunOutcome, interactions: u64, final_configuration: Configuration) -> Self {
        RunResult {
            outcome,
            interactions,
            final_configuration,
            scheduler: None,
            rejection_misses: None,
        }
    }

    /// Records the name of the interaction scheduler that produced this run,
    /// so experiment reports can identify it.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: impl Into<String>) -> Self {
        self.scheduler = Some(scheduler.into());
        self
    }

    /// The name of the interaction scheduler that produced this run, if the
    /// simulator recorded one.
    #[must_use]
    pub fn scheduler(&self) -> Option<&str> {
        self.scheduler.as_deref()
    }

    /// Records how many unproductive draws the engine discarded in
    /// rejection-sampling fallbacks during this run (`None` = the engine has
    /// no rejection path; see `StepEngine::rejection_misses`).
    #[must_use]
    pub fn with_rejection_misses(mut self, misses: Option<u64>) -> Self {
        self.rejection_misses = misses;
        self
    }

    /// The number of unproductive draws discarded by rejection-sampling
    /// fallbacks, if the engine counted any — the measured baseline for
    /// replacing rejection loops with closed-form conditional samplers.
    #[must_use]
    pub fn rejection_misses(&self) -> Option<u64> {
        self.rejection_misses
    }

    /// Why the run stopped.
    #[must_use]
    pub fn outcome(&self) -> RunOutcome {
        self.outcome
    }

    /// Number of interactions performed.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions divided by the population size `n` — the standard
    /// conversion between the population protocol model's interaction count
    /// and the gossip model's parallel rounds.
    #[must_use]
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.final_configuration.population() as f64
    }

    /// The configuration at the end of the run.
    #[must_use]
    pub fn final_configuration(&self) -> &Configuration {
        &self.final_configuration
    }

    /// Returns `true` if the final configuration is a consensus.
    #[must_use]
    pub fn reached_consensus(&self) -> bool {
        self.final_configuration.is_consensus()
    }

    /// Returns `true` if the final configuration has at most one live opinion.
    #[must_use]
    pub fn opinion_settled(&self) -> bool {
        self.final_configuration.is_opinion_settled()
    }

    /// The winning opinion: the consensus opinion if consensus was reached,
    /// or the unique surviving opinion if the run settled, otherwise `None`.
    #[must_use]
    pub fn winner(&self) -> Option<Opinion> {
        if self.final_configuration.is_consensus() {
            self.final_configuration.consensus_opinion()
        } else if self.final_configuration.is_opinion_settled()
            && self.final_configuration.max_support() > 0
        {
            Some(self.final_configuration.max_opinion())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_for_settled_but_not_consensus() {
        let cfg = Configuration::from_counts(vec![0, 40, 0], 60).unwrap();
        let r = RunResult::new(RunOutcome::OpinionSettled, 99, cfg);
        assert!(!r.reached_consensus());
        assert!(r.opinion_settled());
        assert_eq!(r.winner(), Some(Opinion::new(1)));
    }

    #[test]
    fn no_winner_when_budget_exhausted_with_multiple_live_opinions() {
        let cfg = Configuration::from_counts(vec![40, 40], 20).unwrap();
        let r = RunResult::new(RunOutcome::BudgetExhausted, 1000, cfg);
        assert_eq!(r.winner(), None);
        assert!(!r.outcome().is_goal());
    }

    #[test]
    fn outcome_goal_flags() {
        assert!(RunOutcome::Consensus.is_goal());
        assert!(RunOutcome::OpinionSettled.is_goal());
        assert!(!RunOutcome::BudgetExhausted.is_goal());
    }

    #[test]
    fn rejection_misses_are_recorded_when_provided() {
        let cfg = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let r = RunResult::new(RunOutcome::Consensus, 5, cfg);
        assert_eq!(r.rejection_misses(), None);
        let r = r.with_rejection_misses(Some(42));
        assert_eq!(r.rejection_misses(), Some(42));
    }

    #[test]
    fn scheduler_name_is_recorded_when_provided() {
        let cfg = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let bare = RunResult::new(RunOutcome::Consensus, 5, cfg.clone());
        assert_eq!(bare.scheduler(), None);
        let named = bare.with_scheduler("uniform ordered pairs (self-interactions allowed)");
        assert_eq!(
            named.scheduler(),
            Some("uniform ordered pairs (self-interactions allowed)")
        );
    }
}
