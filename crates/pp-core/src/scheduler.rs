//! Interaction schedulers.
//!
//! The population protocol model selects, at every discrete time step, an
//! ordered pair of agents *(responder, initiator)* uniformly at random.  The
//! paper explicitly allows agents to interact with themselves (Section 2), so
//! the default scheduler samples the two indices independently; a variant
//! without self-interactions is provided for sensitivity checks.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An ordered pair of agent indices: `(responder, initiator)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderedPair {
    /// Index of the responder (the agent that may change state).
    pub responder: usize,
    /// Index of the initiator.
    pub initiator: usize,
}

impl OrderedPair {
    /// Creates a pair.
    #[must_use]
    pub fn new(responder: usize, initiator: usize) -> Self {
        OrderedPair {
            responder,
            initiator,
        }
    }

    /// Returns `true` if the pair is a self-interaction.
    #[must_use]
    pub fn is_self_interaction(&self) -> bool {
        self.responder == self.initiator
    }
}

/// A source of interaction pairs for an agent-level simulation.
pub trait InteractionScheduler {
    /// Draws the next ordered pair for a population of `n` agents.
    fn next_pair<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> OrderedPair;

    /// A short human-readable scheduler name used in reports.
    ///
    /// Required (no default): every scheduler shows up by name in
    /// [`crate::RunResult::scheduler`], so an implementor must identify
    /// itself instead of inheriting a meaningless placeholder.
    fn name(&self) -> &str;
}

/// The paper's scheduler: both indices drawn independently and uniformly from
/// `0..n`, so self-interactions occur with probability `1/n`.
///
/// # Examples
///
/// ```
/// use pp_core::{InteractionScheduler, UniformPairScheduler};
/// use rand::SeedableRng;
///
/// let mut sched = UniformPairScheduler::with_self_interactions();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let pair = sched.next_pair(100, &mut rng);
/// assert!(pair.responder < 100 && pair.initiator < 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformPairScheduler {
    allow_self: bool,
}

impl UniformPairScheduler {
    /// The paper's model: ordered pairs drawn uniformly from `n²`
    /// possibilities, self-interactions allowed.
    #[must_use]
    pub fn with_self_interactions() -> Self {
        UniformPairScheduler { allow_self: true }
    }

    /// A common variant where the two agents are always distinct (uniform over
    /// `n(n-1)` ordered pairs).
    #[must_use]
    pub fn without_self_interactions() -> Self {
        UniformPairScheduler { allow_self: false }
    }

    /// Returns `true` if this scheduler may produce self-interactions.
    #[must_use]
    pub fn allows_self_interactions(&self) -> bool {
        self.allow_self
    }
}

impl Default for UniformPairScheduler {
    fn default() -> Self {
        UniformPairScheduler::with_self_interactions()
    }
}

impl InteractionScheduler for UniformPairScheduler {
    fn next_pair<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> OrderedPair {
        assert!(n > 0, "population must be non-empty");
        let responder = rng.gen_range(0..n);
        let initiator = if self.allow_self {
            rng.gen_range(0..n)
        } else {
            assert!(n > 1, "a population of one agent has no distinct pairs");
            // Rejection-free sampling of an index different from `responder`.
            let raw = rng.gen_range(0..n - 1);
            if raw >= responder {
                raw + 1
            } else {
                raw
            }
        };
        OrderedPair {
            responder,
            initiator,
        }
    }

    fn name(&self) -> &str {
        if self.allow_self {
            "uniform ordered pairs (self-interactions allowed)"
        } else {
            "uniform ordered pairs (distinct agents)"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pairs_are_in_range() {
        let mut s = UniformPairScheduler::with_self_interactions();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let p = s.next_pair(37, &mut rng);
            assert!(p.responder < 37 && p.initiator < 37);
        }
    }

    #[test]
    fn without_self_interactions_never_repeats_index() {
        let mut s = UniformPairScheduler::without_self_interactions();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let p = s.next_pair(5, &mut rng);
            assert!(!p.is_self_interaction());
        }
    }

    #[test]
    fn self_interactions_occur_at_roughly_one_over_n() {
        let mut s = UniformPairScheduler::with_self_interactions();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20;
        let trials = 200_000;
        let selfs = (0..trials)
            .filter(|_| s.next_pair(n, &mut rng).is_self_interaction())
            .count();
        let frac = selfs as f64 / trials as f64;
        assert!((frac - 1.0 / n as f64).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn marginals_are_uniform() {
        let mut s = UniformPairScheduler::with_self_interactions();
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 4;
        let trials = 80_000usize;
        let mut responder_hits = vec![0u64; n];
        for _ in 0..trials {
            responder_hits[s.next_pair(n, &mut rng).responder] += 1;
        }
        for &h in &responder_hits {
            let frac = h as f64 / trials as f64;
            assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        }
    }

    #[test]
    fn without_self_marginals_are_uniform_over_others() {
        let mut s = UniformPairScheduler::without_self_interactions();
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 3;
        let trials = 90_000usize;
        let mut joint = vec![vec![0u64; n]; n];
        for _ in 0..trials {
            let p = s.next_pair(n, &mut rng);
            joint[p.responder][p.initiator] += 1;
        }
        for (r, row) in joint.iter().enumerate() {
            for (i, &cell) in row.iter().enumerate() {
                let frac = cell as f64 / trials as f64;
                if r == i {
                    assert_eq!(cell, 0);
                } else {
                    // 6 ordered distinct pairs => 1/6 each.
                    assert!((frac - 1.0 / 6.0).abs() < 0.02, "frac({r},{i}) = {frac}");
                }
            }
        }
    }
}
