//! The multi-fidelity switching policy: an online controller that decides,
//! from cheap deterministic statistics of the live counts, whether a run
//! should currently be driven at **stochastic** fidelity (batched/exact
//! event sampling) or at **mean-field** fidelity (the deterministic ODE
//! limit, `O(k)` per step independent of `n`).
//!
//! This module owns the *policy* — [`FidelityController`], its
//! [`FidelityConfig`] thresholds and the [`FidelitySignal`] it consumes.
//! The concrete engine that acts on the policy (`HybridEngine`) lives in
//! `usd-core`, because switching needs the USD's `MeanFieldEngine` and
//! protocol; the controller itself is protocol-agnostic and fully
//! deterministic.
//!
//! # Detector derivation
//!
//! Let `x = (x₁, …, x_k, u)` be the live counts over a population of `n`
//! agents and `a_i = x_i / n`, `w = u / n` the fractions.  The mean-field
//! ODE gives the *drift* of each category: over one interaction the
//! expected change of category `i` is `d_i / n` agents, where `d_i` is the
//! ODE derivative of `a_i` (for the USD: `ȧ_i = a_i(2w + a_i − 1)`,
//! `ẇ = Σ a_i(1 − w − a_i) − w(1 − w)`).  Over a horizon of `n`
//! interactions (one parallel-time unit) the drift moves category `i` by
//! `≈ n·|d_i|` agents, while the intrinsic sampling fluctuation of a count
//! of size `x_i` is on the scale `√x_i`.  Their quotient
//!
//! ```text
//! ratio_i = n·|d_i| / √max(x_i, 1)
//! ```
//!
//! is the per-category **drift/noise ratio**; the signal's
//! [`noise_ratio`](FidelitySignal::noise_ratio) is the *minimum* over the
//! live categories (supports with `x_i > 0`, plus the undecided pool when
//! non-empty), i.e. the fidelity of the most fluctuation-exposed category.
//! When that minimum is large, every live category is drift-dominated and
//! the deterministic ODE tracks the stochastic process to within its
//! fluctuation band — the run can transit at mean-field speed.  When it is
//! small, random fluctuations shape the outcome (tie-breaking, absorption,
//! near-extinction of a minority) and only stochastic sampling is honest.
//!
//! Two absolute guards complement the ratio, both in units of `√n` (the
//! universal fluctuation scale of a population protocol):
//! [`min_live_mass`](FidelitySignal::min_live_mass) — the smallest live
//! category — must stay above `mass_floor·√n`, because a category of a few
//! agents can die by chance no matter how strong its drift; and
//! [`gap_to_absorption`](FidelitySignal::gap_to_absorption) — `n` minus the
//! largest support — must stay above the same floor, because the endgame
//! coupon-collector stretch near consensus is fluctuation-driven.
//!
//! # Hysteresis and dwell
//!
//! Promotion (stochastic → mean-field) requires the ratio to clear
//! [`promote_ratio`](FidelityConfig::promote_ratio) *and* both mass guards;
//! demotion (mean-field → stochastic) fires as soon as the ratio falls
//! below the lower [`demote_ratio`](FidelityConfig::demote_ratio) or a
//! guard fails.  The band between the two thresholds is the hysteresis
//! that keeps a signal hovering near one threshold from flapping the
//! backend.
//!
//! The default band is deliberately **asymmetric** (promote at 8, demote
//! at 1.5).  Promotion demands a clearly drift-dominated signal.  But the
//! minimum ratio is not monotone along a transit: when a minority opinion
//! crosses its quasi-stationary saddle (`2w + a_i − 1 ≈ 0`) its drift
//! briefly vanishes and the minimum ratio dips, even though the bulk is
//! still far from absorption and the dip's depth grows with `√n` — at
//! large `n` the dip bottoms out well above the demote line, while at
//! small `n` it pierces it and the run honestly falls back to sampling.
//! Setting the demote threshold low therefore lets large-`n` runs ride the
//! ODE through the saddle (this is where the order-of-magnitude speedups
//! come from), and leaves the *endgame* demotion to the absolute mass
//! guards: near absorption the gap guard, not the ratio, hands the run
//! back to stochastic sampling.  On top of the band, a **minimum dwell**
//! ([`FidelityConfig::min_dwell`] interactions, defaulting to `n` — one
//! parallel-time unit) must elapse after a switch before the next one; the
//! very first switch of a run is exempt, so a deeply biased start promotes
//! immediately.
//!
//! # Rounding / conservation scheme
//!
//! Fidelity switches transfer state through the checkpoint snapshot
//! vehicle of [`crate::checkpoint`]:
//!
//! * **stochastic → mean-field** is lossless: the integer counts become
//!   `f64` fractions `x_i / n` exactly (every count up to `2⁵³` is exactly
//!   representable).
//! * **mean-field → stochastic** quantizes the `f64` state back to integer
//!   counts by **largest-remainder rounding** over all `k + 1` categories:
//!   each category takes `⌊n·a_i⌋` and the remaining agents (at most `k`)
//!   go to the categories with the largest fractional parts, ties broken
//!   by category index.  The rounded counts always sum to exactly `n` —
//!   population conservation is exact, never approximate — and the scheme
//!   is a pure function of the `f64` state, so it is deterministic.
//!
//! # Determinism contract
//!
//! The controller consumes **no randomness** and reads only the live
//! counts: two runs with the same seed and thresholds evaluate the same
//! signals at the same pause boundaries and switch at the same
//! interactions.  Both fidelities are single-threaded per run, so hybrid
//! trajectories are bit-identical at every thread count; and because the
//! controller state (current fidelity, switch count, last switch point)
//! rides in the checkpoint metadata, a run resumed mid-ODE-phase or across
//! a switch replays the identical tail — the same contract every other
//! backend honours, pinned by `tests/hybrid_equivalence.rs`.

use crate::checkpoint::Checkpoint;
use std::fmt;

/// Which fidelity the hybrid engine is currently running at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Event-exact stochastic sampling (the batched backend).
    Stochastic,
    /// The deterministic ODE limit (the mean-field backend).
    MeanField,
}

impl Fidelity {
    /// The stable identifier used in telemetry and diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Stochastic => "stochastic",
            Fidelity::MeanField => "mean-field",
        }
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The deterministic per-evaluation statistics the controller consumes
/// (see the [module docs](self) for the derivation).  Computed from the
/// live counts by the engine that hosts the controller; building one
/// consumes no randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelitySignal {
    /// `min_i n·|d_i| / √max(x_i, 1)` over the live categories — the
    /// drift/fluctuation quotient of the most fluctuation-exposed one.
    pub noise_ratio: f64,
    /// The smallest live category mass (supports `> 0`, plus the undecided
    /// pool when non-empty); `u64::MAX` when everything is extinct.
    pub min_live_mass: u64,
    /// `n` minus the largest support — the remaining distance to the
    /// absorbing consensus configuration.
    pub gap_to_absorption: u64,
    /// The population `n` (sets the `√n` fluctuation scale and the default
    /// dwell).
    pub population: u64,
}

/// Detector thresholds for the [`FidelityController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityConfig {
    /// Promote to mean-field when the noise ratio is at least this
    /// (must exceed [`demote_ratio`](FidelityConfig::demote_ratio) — the
    /// gap is the hysteresis band).
    pub promote_ratio: f64,
    /// Demote to stochastic when the noise ratio falls below this.
    pub demote_ratio: f64,
    /// Both mass guards (minimum live mass, gap to absorption) must stay
    /// at or above `mass_floor · √n` for mean-field fidelity.
    pub mass_floor: f64,
    /// Minimum interactions between consecutive switches (the thrash
    /// guard; the first switch of a run is exempt).  `0` means "derive
    /// from the population": one parallel-time unit, `n` interactions.
    pub min_dwell: u64,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig {
            promote_ratio: 8.0,
            demote_ratio: 1.5,
            mass_floor: 0.25,
            min_dwell: 0,
        }
    }
}

impl FidelityConfig {
    /// Checks the thresholds are usable: finite, positive ratios with
    /// `promote_ratio > demote_ratio` (a non-empty hysteresis band) and a
    /// finite non-negative mass floor.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.promote_ratio.is_finite() && self.promote_ratio > 0.0) {
            return Err(format!(
                "fidelity promote ratio {} must be a positive finite number",
                self.promote_ratio
            ));
        }
        if !(self.demote_ratio.is_finite() && self.demote_ratio > 0.0) {
            return Err(format!(
                "fidelity demote ratio {} must be a positive finite number",
                self.demote_ratio
            ));
        }
        if self.promote_ratio <= self.demote_ratio {
            return Err(format!(
                "fidelity promote ratio {} must exceed the demote ratio {} — the gap between \
                 them is the hysteresis band that prevents backend thrashing",
                self.promote_ratio, self.demote_ratio
            ));
        }
        if !(self.mass_floor.is_finite() && self.mass_floor >= 0.0) {
            return Err(format!(
                "fidelity mass floor {} must be a non-negative finite number",
                self.mass_floor
            ));
        }
        Ok(())
    }

    /// The dwell this config resolves to for a population of `n`:
    /// [`min_dwell`](FidelityConfig::min_dwell), or `n` (one parallel-time
    /// unit) when left at `0`.
    #[must_use]
    pub fn resolved_dwell(&self, population: u64) -> u64 {
        if self.min_dwell == 0 {
            population
        } else {
            self.min_dwell
        }
    }
}

/// Checkpoint metadata keys the controller writes (all values `u64`;
/// `f64` thresholds ride as exact bit patterns).
const META_PROMOTE: &str = "hybrid.promote_ratio_bits";
const META_DEMOTE: &str = "hybrid.demote_ratio_bits";
const META_MASS_FLOOR: &str = "hybrid.mass_floor_bits";
const META_DWELL: &str = "hybrid.min_dwell";
const META_FIDELITY: &str = "hybrid.fidelity";
const META_SWITCHES: &str = "hybrid.switches";
const META_SWITCHED: &str = "hybrid.switched";
const META_LAST_SWITCH: &str = "hybrid.last_switch_at";

/// The online fidelity controller: thresholds plus the current switching
/// state (see the [module docs](self) for the decision rule).
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityController {
    config: FidelityConfig,
    current: Fidelity,
    /// The interaction count of the last switch, `None` before the first.
    last_switch_at: Option<u64>,
    switches: u64,
}

impl FidelityController {
    /// Starts a controller at stochastic fidelity.
    #[must_use]
    pub fn new(config: FidelityConfig) -> Self {
        FidelityController {
            config,
            current: Fidelity::Stochastic,
            last_switch_at: None,
            switches: 0,
        }
    }

    /// The thresholds this controller runs under.
    #[must_use]
    pub fn config(&self) -> &FidelityConfig {
        &self.config
    }

    /// The fidelity the run is currently at.
    #[must_use]
    pub fn current(&self) -> Fidelity {
        self.current
    }

    /// How many fidelity switches have happened so far.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The pure decision: which fidelity the signal asks for, with
    /// hysteresis relative to the current one (no dwell, no state change).
    #[must_use]
    pub fn desired(&self, signal: &FidelitySignal) -> Fidelity {
        let sqrt_n = (signal.population as f64).sqrt();
        let floor = self.config.mass_floor * sqrt_n;
        let guards_hold =
            (signal.min_live_mass as f64) >= floor && (signal.gap_to_absorption as f64) >= floor;
        match self.current {
            Fidelity::Stochastic => {
                if guards_hold && signal.noise_ratio >= self.config.promote_ratio {
                    Fidelity::MeanField
                } else {
                    Fidelity::Stochastic
                }
            }
            Fidelity::MeanField => {
                if !guards_hold || signal.noise_ratio < self.config.demote_ratio {
                    Fidelity::Stochastic
                } else {
                    Fidelity::MeanField
                }
            }
        }
    }

    /// Evaluates the signal at a pause boundary reached after
    /// `interactions` total interactions and returns the fidelity to run
    /// at next, applying hysteresis and the minimum-dwell guard (skipped
    /// before the first switch, so a strongly biased start can promote
    /// immediately).
    pub fn evaluate(&mut self, signal: &FidelitySignal, interactions: u64) -> Fidelity {
        let desired = self.desired(signal);
        if desired == self.current {
            return self.current;
        }
        if let Some(at) = self.last_switch_at {
            let dwell = self.config.resolved_dwell(signal.population);
            if interactions.saturating_sub(at) < dwell {
                return self.current;
            }
        }
        self.current = desired;
        self.last_switch_at = Some(interactions);
        self.switches += 1;
        self.current
    }

    /// Stamps the controller (thresholds + switching state) into a
    /// checkpoint's metadata, so a resumed run continues under the exact
    /// same policy state.
    #[must_use]
    pub fn write_meta(&self, checkpoint: Checkpoint) -> Checkpoint {
        checkpoint
            .with_meta(META_PROMOTE, self.config.promote_ratio.to_bits())
            .with_meta(META_DEMOTE, self.config.demote_ratio.to_bits())
            .with_meta(META_MASS_FLOOR, self.config.mass_floor.to_bits())
            .with_meta(META_DWELL, self.config.min_dwell)
            .with_meta(
                META_FIDELITY,
                match self.current {
                    Fidelity::Stochastic => 0,
                    Fidelity::MeanField => 1,
                },
            )
            .with_meta(META_SWITCHES, self.switches)
            .with_meta(META_SWITCHED, u64::from(self.last_switch_at.is_some()))
            .with_meta(META_LAST_SWITCH, self.last_switch_at.unwrap_or(0))
    }

    /// Rebuilds a controller from checkpoint metadata written by
    /// [`FidelityController::write_meta`]; `None` when the metadata is
    /// absent or incomplete (not a hybrid checkpoint).
    #[must_use]
    pub fn read_meta(checkpoint: &Checkpoint) -> Option<Self> {
        let config = FidelityConfig {
            promote_ratio: f64::from_bits(checkpoint.meta(META_PROMOTE)?),
            demote_ratio: f64::from_bits(checkpoint.meta(META_DEMOTE)?),
            mass_floor: f64::from_bits(checkpoint.meta(META_MASS_FLOOR)?),
            min_dwell: checkpoint.meta(META_DWELL)?,
        };
        let current = match checkpoint.meta(META_FIDELITY)? {
            0 => Fidelity::Stochastic,
            _ => Fidelity::MeanField,
        };
        let last_switch_at = if checkpoint.meta(META_SWITCHED)? == 0 {
            None
        } else {
            Some(checkpoint.meta(META_LAST_SWITCH)?)
        };
        Some(FidelityController {
            config,
            current,
            last_switch_at,
            switches: checkpoint.meta(META_SWITCHES)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{EngineSnapshot, EngineState};

    fn signal(noise_ratio: f64, min_mass: u64, gap: u64, n: u64) -> FidelitySignal {
        FidelitySignal {
            noise_ratio,
            min_live_mass: min_mass,
            gap_to_absorption: gap,
            population: n,
        }
    }

    #[test]
    fn default_config_validates_and_resolves_dwell() {
        let config = FidelityConfig::default();
        config.validate().unwrap();
        assert_eq!(config.resolved_dwell(50_000), 50_000);
        let fixed = FidelityConfig {
            min_dwell: 7,
            ..config
        };
        assert_eq!(fixed.resolved_dwell(50_000), 7);
    }

    #[test]
    fn invalid_configs_are_named() {
        let bad_band = FidelityConfig {
            promote_ratio: 3.0,
            demote_ratio: 3.0,
            ..FidelityConfig::default()
        };
        assert!(bad_band.validate().unwrap_err().contains("hysteresis"));
        let bad_floor = FidelityConfig {
            mass_floor: f64::NAN,
            ..FidelityConfig::default()
        };
        assert!(bad_floor.validate().is_err());
        let bad_ratio = FidelityConfig {
            promote_ratio: 0.0,
            ..FidelityConfig::default()
        };
        assert!(bad_ratio.validate().is_err());
    }

    #[test]
    fn promotion_requires_ratio_and_both_guards() {
        // n = 1_000_000 → √n = 1000, floor = 0.25·√n = 250 agents.
        let mut ctl = FidelityController::new(FidelityConfig::default());
        assert_eq!(ctl.current(), Fidelity::Stochastic);
        // Strong drift but a guard fails: stay stochastic.
        assert_eq!(
            ctl.evaluate(&signal(100.0, 100, 500_000, 1_000_000), 0),
            Fidelity::Stochastic
        );
        assert_eq!(
            ctl.evaluate(&signal(100.0, 500_000, 100, 1_000_000), 0),
            Fidelity::Stochastic
        );
        // Ratio below the promote threshold: stay stochastic.
        assert_eq!(
            ctl.evaluate(&signal(7.9, 500_000, 500_000, 1_000_000), 0),
            Fidelity::Stochastic
        );
        // Everything clears: promote (first switch needs no dwell).
        assert_eq!(
            ctl.evaluate(&signal(8.0, 500_000, 500_000, 1_000_000), 0),
            Fidelity::MeanField
        );
        assert_eq!(ctl.switches(), 1);
    }

    #[test]
    fn hysteresis_band_prevents_flapping() {
        let mut ctl = FidelityController::new(FidelityConfig {
            min_dwell: 1,
            ..FidelityConfig::default()
        });
        let n = 1_000_000;
        assert_eq!(
            ctl.evaluate(&signal(10.0, 500_000, 500_000, n), 0),
            Fidelity::MeanField
        );
        // Inside the band (demote 1.5 ≤ ratio < promote 8): hold mean-field.
        assert_eq!(
            ctl.evaluate(&signal(5.0, 500_000, 500_000, n), 10),
            Fidelity::MeanField
        );
        // Below the demote threshold: drop back.
        assert_eq!(
            ctl.evaluate(&signal(1.4, 500_000, 500_000, n), 20),
            Fidelity::Stochastic
        );
        // Back inside the band: hold stochastic (promotion needs ≥ 8).
        assert_eq!(
            ctl.evaluate(&signal(5.0, 500_000, 500_000, n), 30),
            Fidelity::Stochastic
        );
        assert_eq!(ctl.switches(), 2);
    }

    #[test]
    fn dwell_guard_defers_the_second_switch() {
        let mut ctl = FidelityController::new(FidelityConfig::default()); // dwell = n
        let n = 1_000;
        assert_eq!(
            ctl.evaluate(&signal(100.0, 400, 600, n), 50),
            Fidelity::MeanField
        );
        // A demote-worthy signal arrives before the dwell elapses: held.
        assert_eq!(
            ctl.evaluate(&signal(0.1, 400, 600, n), 500),
            Fidelity::MeanField
        );
        // After the dwell it goes through.
        assert_eq!(
            ctl.evaluate(&signal(0.1, 400, 600, n), 1_050),
            Fidelity::Stochastic
        );
        assert_eq!(ctl.switches(), 2);
    }

    #[test]
    fn meta_round_trips_the_full_controller_state() {
        let mut ctl = FidelityController::new(FidelityConfig {
            promote_ratio: 6.5,
            demote_ratio: 2.25,
            mass_floor: 3.5,
            min_dwell: 1234,
        });
        ctl.evaluate(&signal(100.0, 400, 600, 1_000), 77);
        let ckpt = Checkpoint::new(EngineState::Exact(EngineSnapshot {
            supports: vec![1, 2],
            undecided: 0,
            interactions: 0,
            rng: [0; 4],
            counters: Vec::new(),
        }));
        let stamped = ctl.write_meta(ckpt.clone());
        assert_eq!(FidelityController::read_meta(&stamped), Some(ctl));
        // A checkpoint without the metadata is not a hybrid checkpoint.
        assert_eq!(FidelityController::read_meta(&ckpt), None);
    }
}
