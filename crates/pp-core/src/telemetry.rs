//! Unified telemetry: a metrics registry, timing spans, and export sinks.
//!
//! The engine stack previously exposed observability as a scatter of
//! bespoke accessors (`rejection_misses`, [`MaintenanceStats`], the
//! ensemble's `shared_*` counters), each threaded through the result types
//! by hand.  This module is the common substrate: engines and drivers hold
//! a cheap, cloneable [`Telemetry`] handle, record into named counters /
//! gauges / histograms, and bracket coarse units of work (epochs, lockstep
//! windows, run phases, worker bodies) in RAII [`Span`] guards.  Two sinks
//! read the result back out:
//!
//! - [`Telemetry::chrome_trace_json`] renders the recorded spans in the
//!   Chrome Trace Event Format (an object with a `traceEvents` array of
//!   `"ph": "X"` complete events).  The file loads directly in Perfetto or
//!   `about://tracing`; worker index is mapped to `tid`, so parallel
//!   sections appear as per-worker tracks.
//! - [`Telemetry::snapshot`] flattens the registry into a
//!   [`MetricsSnapshot`] — a sorted name → value table that merges into
//!   [`RunResult`](crate::run::RunResult) and the `usd_run` JSON output.
//!
//! # Determinism contract
//!
//! Telemetry NEVER consumes randomness and never feeds back into control
//! flow: handles only read the monotonic clock and bump atomics.  A run
//! with telemetry fully enabled (trace + metrics) is bit-identical to the
//! same run with telemetry off, at every thread count.  This is pinned by
//! `tests/telemetry_equivalence.rs` and enforced in CI.
//!
//! # Overhead model
//!
//! A disabled handle (the [`Telemetry::disabled`] default) carries `None`
//! internally: counter increments are a branch on an `Option` and span
//! construction does not even read the clock — near-zero cost, verified by
//! the `telemetry` pair in `engine_microbench`.  An enabled handle costs
//! one relaxed atomic RMW per counter update and two clock reads plus one
//! short mutex section per span.  Instrumentation is therefore placed at
//! coarse seams (per event-batch, per epoch, per window — not per agent
//! interaction), keeping the enabled overhead ≤ 5% at n = 10⁶.
//!
//! # Examples
//!
//! ```
//! use pp_core::telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! let events = tel.counter("engine.events");
//! {
//!     let _span = tel.span("epoch");
//!     events.add(3);
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("engine.events"), Some(3));
//! let trace = tel.chrome_trace_json();
//! assert!(trace.contains("\"traceEvents\""));
//! ```

use crate::run::MaintenanceStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of histogram buckets: one per power of two up to `2^63`, plus a
/// zero bucket.  Fixed so histograms merge without negotiation.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The coordinator's track in the chrome trace (`tid` 0); workers use
/// `1 + worker_index`.
pub const COORDINATOR_TID: u32 = 0;

#[derive(Debug, Default)]
enum MetricSlot {
    #[default]
    Unused,
    Counter(Arc<AtomicU64>),
    /// Gauges store `f64::to_bits`.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    metrics: Mutex<BTreeMap<String, MetricSlot>>,
    spans: Mutex<Vec<SpanEvent>>,
}

/// A cheap, cloneable telemetry handle.
///
/// The default ([`Telemetry::disabled`]) records nothing; every operation
/// on it is a no-op branch.  [`Telemetry::enabled`] allocates the shared
/// registry and span buffer.  Clones share the same storage, so a handle
/// can be fanned out to engines, shards, and worker threads and read back
/// from the coordinator.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A handle that records nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live handle with an empty registry; the clock origin for trace
    /// timestamps is the moment of this call.
    #[must_use]
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                metrics: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (creating on first use) the counter `name`.
    ///
    /// Resolution takes the registry lock; call it once at setup and keep
    /// the returned handle for the hot path.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let mut metrics = inner.metrics.lock().expect("telemetry registry poisoned");
        let slot = metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            MetricSlot::Counter(cell) => Counter(Some(Arc::clone(cell))),
            _ => panic!("telemetry metric {name:?} is not a counter"),
        }
    }

    /// Resolves (creating on first use) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let mut metrics = inner.metrics.lock().expect("telemetry registry poisoned");
        let slot = metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match slot {
            MetricSlot::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            _ => panic!("telemetry metric {name:?} is not a gauge"),
        }
    }

    /// Resolves (creating on first use) the histogram `name` (fixed
    /// log₂-scale buckets, see [`HISTOGRAM_BUCKETS`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram(None);
        };
        let mut metrics = inner.metrics.lock().expect("telemetry registry poisoned");
        let slot = metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Histogram(Arc::new(HistogramCore::new())));
        match slot {
            MetricSlot::Histogram(cell) => Histogram(Some(Arc::clone(cell))),
            _ => panic!("telemetry metric {name:?} is not a histogram"),
        }
    }

    /// Opens a span on the coordinator track; the guard records a
    /// wall-time begin/end pair when dropped.  On a disabled handle this
    /// does not read the clock.
    pub fn span(&self, name: &str) -> Span {
        self.span_on(name, COORDINATOR_TID)
    }

    /// Opens a span on an explicit track.  Workers pass
    /// `1 + worker_index` so the chrome trace shows per-worker tracks.
    pub fn span_on(&self, name: &str, tid: u32) -> Span {
        match &self.inner {
            None => Span(None),
            Some(inner) => Span(Some(SpanLive {
                inner: Arc::clone(inner),
                name: name.to_string(),
                tid,
                start: Instant::now(),
            })),
        }
    }

    /// The spans recorded so far, in completion order.
    ///
    /// Returns an empty vector on a disabled handle.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .spans
                .lock()
                .expect("telemetry spans poisoned")
                .clone(),
        }
    }

    /// Flattens the registry into a sorted snapshot.
    ///
    /// Returns an empty snapshot on a disabled handle.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let metrics = inner.metrics.lock().expect("telemetry registry poisoned");
        for (name, slot) in metrics.iter() {
            match slot {
                MetricSlot::Unused => {}
                MetricSlot::Counter(cell) => {
                    snap.add_counter(name, cell.load(Ordering::Relaxed));
                }
                MetricSlot::Gauge(cell) => {
                    snap.set_gauge(name, f64::from_bits(cell.load(Ordering::Relaxed)));
                }
                MetricSlot::Histogram(core) => {
                    snap.merge_histogram(name, &core.snapshot());
                }
            }
        }
        snap
    }

    /// Renders the recorded spans in the Chrome Trace Event Format.
    ///
    /// The output is one JSON object: `displayTimeUnit`, `traceEvents` with
    /// one `"ph": "M"` `thread_name` metadata event per track followed by
    /// one `"ph": "X"` complete event per span (`ts` / `dur` in
    /// microseconds since the handle was created), sorted by `(tid, ts)`.
    /// Loadable in Perfetto and `about://tracing`.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let mut events = self.spans();
        events.sort_by_key(|e| (e.tid, e.start_us, e.end_us));
        let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for tid in &tids {
            if !first {
                out.push(',');
            }
            first = false;
            let label = if *tid == COORDINATOR_TID {
                "coordinator".to_string()
            } else {
                format!("worker-{}", tid - 1)
            };
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            );
        }
        for e in &events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"pp\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{}}}",
                escape_json(&e.name),
                e.tid,
                e.start_us,
                e.end_us - e.start_us,
            );
        }
        out.push_str("]}");
        out
    }
}

/// A completed wall-time span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span label (e.g. `"shard.reconcile"`).
    pub name: String,
    /// Track: [`COORDINATOR_TID`] or `1 + worker_index`.
    pub tid: u32,
    /// Begin, microseconds since the handle's creation.
    pub start_us: u64,
    /// End, microseconds since the handle's creation (`>= start_us`).
    pub end_us: u64,
}

#[derive(Debug)]
struct SpanLive {
    inner: Arc<Inner>,
    name: String,
    tid: u32,
    start: Instant,
}

/// RAII guard returned by [`Telemetry::span`]; records the begin/end pair
/// when dropped.  A guard from a disabled handle is inert.
#[derive(Debug)]
#[must_use = "a span records its duration when dropped"]
pub struct Span(Option<SpanLive>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.0.take() {
            let start_us = live
                .start
                .duration_since(live.inner.origin)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let end_us = live
                .inner
                .origin
                .elapsed()
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let event = SpanEvent {
                name: live.name,
                tid: live.tid,
                start_us,
                end_us: end_us.max(start_us),
            };
            live.inner
                .spans
                .lock()
                .expect("telemetry spans poisoned")
                .push(event);
        }
    }
}

/// A monotonically increasing counter handle.  Cheap to clone; an
/// increment is one relaxed atomic add (or a no-op branch when resolved
/// from a disabled handle).
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 on a disabled handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins floating-point gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value (0.0 on a disabled handle).
    #[must_use]
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, cell) in self.buckets.iter().enumerate() {
            let c = cell.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push(BucketCount {
                    upper: bucket_upper(i),
                    count: c,
                });
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Bucket index for a recorded value: 0 holds zero, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i)`.
#[must_use]
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`, saturating at the top).
#[must_use]
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log₂-bucketed histogram handle for non-negative integer samples
/// (skip lengths, batch sizes, queue depths).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
        }
    }
}

/// One non-empty histogram bucket in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket (`2^i - 1`).
    pub upper: u64,
    /// Number of samples in the bucket.
    pub count: u64,
}

/// A frozen histogram: total count, total sum, and the non-empty buckets
/// in ascending bound order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean sample value, if any samples were recorded.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    fn absorb(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for b in &other.buckets {
            match self.buckets.binary_search_by_key(&b.upper, |x| x.upper) {
                Ok(i) => self.buckets[i].count += b.count,
                Err(i) => self.buckets.insert(i, *b),
            }
        }
    }
}

/// A flat, sorted name → value table: the metrics export sink.
///
/// Snapshots are plain data — they merge into
/// [`RunResult`](crate::run::RunResult), render to JSON with
/// [`MetricsSnapshot::to_json`], and combine across shards / replicas with
/// [`MetricsSnapshot::absorb`] (counters and histograms add, gauges are
/// last-write-wins).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Whether the snapshot holds no metrics at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `value` to counter `name` (creating it at zero first).
    pub fn add_counter(&mut self, name: &str, value: u64) {
        match self
            .counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].1 += value,
            Err(i) => self.counters.insert(i, (name.to_string(), value)),
        }
    }

    /// Sets gauge `name` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].1 = value,
            Err(i) => self.gauges.insert(i, (name.to_string(), value)),
        }
    }

    /// Merges a histogram snapshot into histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, hist: &HistogramSnapshot) {
        match self
            .histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
        {
            Ok(i) => self.histograms[i].1.absorb(hist),
            Err(i) => self.histograms.insert(i, (name.to_string(), hist.clone())),
        }
    }

    /// The value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The value of gauge `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// The histogram `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// All histograms, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> &[(String, HistogramSnapshot)] {
        &self.histograms
    }

    /// Merges `other` into `self`: counters and histograms add, gauges are
    /// last-write-wins (`other` wins).
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            self.add_counter(name, *v);
        }
        for (name, v) in &other.gauges {
            self.set_gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            self.merge_histogram(name, h);
        }
    }

    /// Converts [`MaintenanceStats`] to the canonical registry names
    /// (`maintenance.rows_patched`, …) and merges them in.
    pub fn absorb_maintenance(&mut self, stats: &MaintenanceStats) {
        self.add_counter("maintenance.rows_patched", stats.rows_patched);
        self.add_counter("maintenance.rows_rebuilt", stats.rows_rebuilt);
        self.add_counter("maintenance.law_patches", stats.law_patches);
        self.add_counter("maintenance.law_rebuilds", stats.law_rebuilds);
        self.add_counter(
            "maintenance.law_fallback_rebuilds",
            stats.law_fallback_rebuilds,
        );
        if let Some(f) = stats.rows_patched_fraction() {
            self.set_gauge("maintenance.rows_patched_fraction", f);
        }
        if let Some(f) = stats.law_patched_fraction() {
            self.set_gauge("maintenance.law_patched_fraction", f);
        }
    }

    /// Renders the snapshot as one flat JSON object, keys sorted (counters,
    /// then gauges, then histograms; the name spaces are disjoint by
    /// construction).  Histograms render as
    /// `{"count":…,"sum":…,"buckets":[[upper,count],…]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", escape_json(name), v);
        }
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", escape_json(name), json_f64(*v));
        }
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|b| format!("[{},{}]", b.upper, b.count))
                .collect();
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                escape_json(name),
                h.count,
                h.sum,
                buckets.join(","),
            );
        }
        out.push('}');
        out
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// NaN/∞-safe JSON number rendering (mirrors `usd_run`'s convention).
#[must_use]
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Checks that the spans on each track are monotone and properly nested:
/// sorted by start time, each span either contains or is disjoint from its
/// successor.  Returns a description of the first violation.
///
/// # Errors
///
/// Returns `Err` naming the offending track and spans when overlap without
/// containment (or a negative duration) is found.
pub fn check_span_nesting(events: &[SpanEvent]) -> Result<(), String> {
    let mut by_tid: BTreeMap<u32, Vec<&SpanEvent>> = BTreeMap::new();
    for e in events {
        if e.end_us < e.start_us {
            return Err(format!(
                "span {:?} on tid {} ends before it starts",
                e.name, e.tid
            ));
        }
        by_tid.entry(e.tid).or_default().push(e);
    }
    for (tid, mut spans) in by_tid {
        spans.sort_by_key(|e| (e.start_us, std::cmp::Reverse(e.end_us)));
        // A stack of open end-times: each next span must either nest inside
        // the innermost open span or start at/after its end.
        let mut open: Vec<u64> = Vec::new();
        for s in spans {
            while open.last().is_some_and(|&end| end <= s.start_us) {
                open.pop();
            }
            if let Some(&end) = open.last() {
                if s.end_us > end {
                    return Err(format!(
                        "span {:?} [{}, {}] on tid {tid} overlaps an enclosing span ending at {end}",
                        s.name, s.start_us, s.end_us
                    ));
                }
            }
            open.push(s.end_us);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let c = tel.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = tel.gauge("g");
        g.set(1.5);
        assert_eq!(g.get(), 0.0);
        let h = tel.histogram("h");
        h.record(9);
        drop(tel.span("nothing"));
        assert!(tel.snapshot().is_empty());
        assert!(tel.spans().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let tel = Telemetry::enabled();
        let c = tel.counter("engine.events");
        c.incr();
        c.add(4);
        tel.gauge("cache.hit_rate").set(0.75);
        let h = tel.histogram("skip.len");
        h.record(0);
        h.record(1);
        h.record(7);
        h.record(1 << 40);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("engine.events"), Some(5));
        assert_eq!(snap.gauge("cache.hit_rate"), Some(0.75));
        let hist = snap.histogram("skip.len").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 8 + (1 << 40));
        assert_eq!(hist.mean(), Some((8.0 + (1u64 << 40) as f64) / 4.0));
        // Buckets: 0 -> upper 0; 1 -> [1,1]; 7 -> [4,7]; 2^40 -> [2^40, 2^41).
        let uppers: Vec<u64> = hist.buckets.iter().map(|b| b.upper).collect();
        assert_eq!(uppers, vec![0, 1, 7, (1u64 << 41) - 1]);
    }

    #[test]
    fn handles_are_shared_across_clones() {
        let tel = Telemetry::enabled();
        let a = tel.counter("shared");
        let b = tel.clone().counter("shared");
        a.add(2);
        b.add(3);
        assert_eq!(tel.snapshot().counter("shared"), Some(5));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let tel = Telemetry::enabled();
        let _ = tel.gauge("m");
        let _ = tel.counter("m");
    }

    #[test]
    fn spans_record_nested_monotone_timestamps() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("outer");
            {
                let _inner = tel.span("inner");
            }
        }
        {
            let _worker = tel.span_on("work", 3);
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 3);
        check_span_nesting(&spans).unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert!(outer.start_us <= inner.start_us);
        assert!(inner.end_us <= outer.end_us);
        assert_eq!(spans.iter().find(|s| s.name == "work").unwrap().tid, 3);
    }

    #[test]
    fn nesting_check_rejects_partial_overlap() {
        let mk = |name: &str, tid, a, b| SpanEvent {
            name: name.to_string(),
            tid,
            start_us: a,
            end_us: b,
        };
        // Disjoint and nested: fine, including across tids.
        check_span_nesting(&[
            mk("a", 0, 0, 10),
            mk("b", 0, 2, 5),
            mk("c", 0, 10, 12),
            mk("d", 1, 3, 20),
        ])
        .unwrap();
        // Partial overlap on one tid: rejected.
        let err = check_span_nesting(&[mk("a", 0, 0, 10), mk("b", 0, 5, 15)]).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
        // Negative duration: rejected.
        assert!(check_span_nesting(&[mk("a", 0, 5, 3)]).is_err());
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let tel = Telemetry::enabled();
        {
            let _s = tel.span("alpha");
        }
        {
            let _s = tel.span_on("beta \"quoted\"", 2);
        }
        let json = tel.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"coordinator\""));
        assert!(json.contains("\"worker-1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("beta \\\"quoted\\\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn snapshot_absorb_and_json() {
        let mut a = MetricsSnapshot::new();
        a.add_counter("c", 1);
        a.set_gauge("g", 0.5);
        let h = HistogramSnapshot {
            count: 1,
            sum: 3,
            buckets: vec![BucketCount { upper: 3, count: 1 }],
        };
        a.merge_histogram("h", &h);

        let mut b = MetricsSnapshot::new();
        b.add_counter("c", 2);
        b.set_gauge("g", 0.75);
        b.merge_histogram("h", &h);
        a.absorb(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(0.75));
        assert_eq!(a.histogram("h").unwrap().count, 2);

        let json = a.to_json();
        assert_eq!(
            json,
            "{\"c\":3,\"g\":0.75,\"h\":{\"count\":2,\"sum\":6,\"buckets\":[[3,2]]}}"
        );
    }

    #[test]
    fn maintenance_stats_map_to_canonical_names() {
        let stats = MaintenanceStats {
            rows_patched: 9,
            rows_rebuilt: 1,
            law_patches: 4,
            law_rebuilds: 0,
            law_fallback_rebuilds: 12,
        };
        let mut snap = MetricsSnapshot::new();
        snap.absorb_maintenance(&stats);
        assert_eq!(snap.counter("maintenance.rows_patched"), Some(9));
        assert_eq!(snap.counter("maintenance.law_rebuilds"), Some(0));
        assert_eq!(snap.counter("maintenance.law_fallback_rebuilds"), Some(12));
        assert_eq!(snap.gauge("maintenance.rows_patched_fraction"), Some(0.9));
        assert_eq!(snap.gauge("maintenance.law_patched_fraction"), Some(0.25));
    }

    #[test]
    fn non_finite_gauges_render_as_null() {
        let mut snap = MetricsSnapshot::new();
        snap.set_gauge("bad", f64::NAN);
        assert_eq!(snap.to_json(), "{\"bad\":null}");
    }
}
