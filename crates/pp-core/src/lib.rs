//! # pp-core — a population protocol engine
//!
//! This crate provides the simulation substrate used by the reproduction of
//! *"Fast Convergence of k-Opinion Undecided State Dynamics in the Population
//! Protocol Model"* (PODC 2023).
//!
//! It implements the population protocol model of computation: `n` anonymous
//! agents, each holding a state from a finite state space, interacting in
//! ordered pairs *(responder, initiator)* drawn uniformly at random (with
//! self-interactions allowed, exactly as in the paper).
//!
//! ## The step-engine layer
//!
//! All count-based simulation goes through the [`engine::StepEngine`] trait,
//! which abstracts *how* the count-vector Markov chain is advanced.  Pick a
//! backend with [`EngineChoice`]:
//!
//! * [`ExactEngine`] (= [`CountSimulator`]) — the canonical ground-truth
//!   backend: one interaction per step, category sampling through a Fenwick
//!   tree in `O(log k)` independent of `n`.  Use it when per-interaction
//!   observability matters or as the reference in equivalence tests.
//! * [`BatchedEngine`] — exact-in-distribution skip-ahead: jumps over the
//!   geometrically distributed runs of *null* interactions and draws only
//!   the state-changing events.  Same trajectory law, orders of magnitude
//!   faster whenever nulls dominate (deep-bias regimes, every consensus
//!   endgame).  Use it for large populations; protocols opt into `O(k)`
//!   events via [`OpinionProtocol::null_interaction_weight`] /
//!   [`OpinionProtocol::productive_responder_weight`].
//! * [`ShardedEngine`] — the count vector split into `S` shards, each owned
//!   by a batched engine and advanced in parallel worker threads, with
//!   cross-shard interactions allocated to shard pairs by multinomial draws
//!   and reconciled at epoch boundaries.  Built for `n ≥ 10⁹`; tunably
//!   approximate (see [`shard`] for the fidelity discussion).
//! * `MeanFieldEngine` (in `usd-core`) — the deterministic ODE limit behind
//!   the same trait.  Instant at any `n`, but an approximation: use it for
//!   exploration, never for distributional statistics.
//! * `HybridEngine` (in `usd-core`) — adaptive multi-fidelity: mean-field
//!   speed through drift-dominated bulk transit, dropping back to batched
//!   stochastic sampling whenever the [`hybrid`] fluctuation detector trips
//!   (hysteresis + minimum dwell; see the module docs for the derivation
//!   and the determinism contract).
//!
//! Monte Carlo estimates over many independent runs go through the
//! [`ensemble::EnsembleEngine`], which advances `R` replicas of one
//! protocol/configuration in lockstep rounds: per-counts tables (row
//! weights, activation laws) are computed once and shared across replicas
//! whose counts coincide through an [`std::sync::Arc`]-shared map that
//! freezes per scheduling window, and the live replicas spread over the
//! worker threads of the shared [`parallel`] layer.  Per-replica RNG
//! streams and the layer's deterministic partition keep every replica
//! *bit-identical* to a standalone same-seed run at every thread count —
//! see [`ensemble`] for the exactness argument.
//!
//! Both parallel engines (sharded, ensemble) draw their workers from
//! [`parallel`]: a [`Parallelism`] knob plus scoped fork/join execution
//! over a deterministic contiguous partition, under a shared determinism
//! contract (see the module docs) that makes thread count a pure
//! wall-clock dial.
//!
//! [`AgentSimulator`] remains as the explicit agent-array ground truth for
//! fidelity cross-checks and protocols with per-agent state.
//!
//! The crate also provides [`Configuration`] (the count vector with its
//! bias/support metrics), stopping rules, trace recorders and reproducible
//! seed management.
//!
//! Observability goes through [`telemetry`]: a zero-dependency metrics
//! registry (counters / gauges / log-bucket histograms) plus RAII timing
//! spans with a chrome-trace export, attached to engines via a cloneable
//! [`Telemetry`] handle.  Telemetry never consumes randomness — enabling it
//! cannot change a trajectory (see the module docs for the contract).
//!
//! ## Example
//!
//! ```
//! use pp_core::prelude::*;
//!
//! /// The 2-opinion undecided-state dynamics written directly against the
//! /// `OpinionProtocol` trait (the full k-opinion version lives in `usd-core`).
//! struct TinyUsd;
//!
//! impl OpinionProtocol for TinyUsd {
//!     fn num_opinions(&self) -> usize { 2 }
//!     fn respond(&self, responder: AgentState, initiator: AgentState) -> AgentState {
//!         match (responder, initiator) {
//!             (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
//!             (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
//!             (r, _) => r,
//!         }
//!     }
//! }
//!
//! let config = Configuration::from_counts(vec![70, 30], 0).unwrap();
//! let mut sim = CountSimulator::new(TinyUsd, config, SimSeed::from_u64(7));
//! let result = sim.run(StopCondition::consensus().or_max_interactions(10_000_000));
//! assert!(result.reached_consensus());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent_sim;
pub mod checkpoint;
pub mod config;
pub mod count_sim;
pub mod engine;
pub mod ensemble;
pub mod error;
pub mod fenwick;
pub mod hybrid;
pub mod opinion;
pub mod parallel;
pub mod protocol;
pub mod recorder;
pub mod rng;
pub mod run;
pub mod scheduler;
pub mod shard;
pub mod stopping;
pub mod telemetry;

pub use agent_sim::AgentSimulator;
pub use checkpoint::{
    Checkpoint, EngineCheckpoint, EngineSnapshot, EngineState, EnsembleSnapshot, MeanFieldSnapshot,
    ReplicaCheckpoint, ShardSnapshot, ShardedSnapshot, CHECKPOINT_FORMAT_VERSION,
};
pub use config::Configuration;
pub use count_sim::CountSimulator;
pub use engine::{Advance, BatchedEngine, CountEngine, EngineChoice, ExactEngine, StepEngine};
pub use ensemble::{
    EnsembleChoice, EnsembleEngine, EnsembleReplica, EnsembleRunResult, SharedCacheMode,
};
pub use error::{ConfigError, PpError};
pub use fenwick::FenwickTree;
pub use hybrid::{Fidelity, FidelityConfig, FidelityController, FidelitySignal};
pub use opinion::{AgentState, Opinion, UNDECIDED_INDEX};
pub use parallel::Parallelism;
pub use protocol::{OpinionProtocol, PairwiseProtocol};
pub use recorder::{NullRecorder, Recorder, Snapshot, TraceRecorder};
pub use rng::{SimSeed, SplitMix64};
pub use run::{MaintenanceStats, RunOutcome, RunResult};
pub use scheduler::{InteractionScheduler, OrderedPair, UniformPairScheduler};
pub use shard::{ShardPlan, ShardedEngine};
pub use stopping::StopCondition;
pub use telemetry::{MetricsSnapshot, Telemetry};

/// Convenience prelude re-exporting the types needed by most users.
pub mod prelude {
    pub use crate::agent_sim::AgentSimulator;
    pub use crate::checkpoint::{Checkpoint, EngineCheckpoint, ReplicaCheckpoint};
    pub use crate::config::Configuration;
    pub use crate::count_sim::CountSimulator;
    pub use crate::engine::{
        Advance, BatchedEngine, CountEngine, EngineChoice, ExactEngine, StepEngine,
    };
    pub use crate::ensemble::{
        EnsembleChoice, EnsembleEngine, EnsembleReplica, EnsembleRunResult, SharedCacheMode,
    };
    pub use crate::error::{ConfigError, PpError};
    pub use crate::hybrid::{Fidelity, FidelityConfig, FidelityController, FidelitySignal};
    pub use crate::opinion::{AgentState, Opinion};
    pub use crate::parallel::Parallelism;
    pub use crate::protocol::{OpinionProtocol, PairwiseProtocol};
    pub use crate::recorder::{NullRecorder, Recorder, Snapshot, TraceRecorder};
    pub use crate::rng::SimSeed;
    pub use crate::run::{MaintenanceStats, RunOutcome, RunResult};
    pub use crate::shard::{ShardPlan, ShardedEngine};
    pub use crate::stopping::StopCondition;
    pub use crate::telemetry::{MetricsSnapshot, Telemetry};
}
