//! The count-based simulator.
//!
//! For opinion dynamics over `{1..k, ⊥}` the process is a Markov chain on the
//! count vector: the probability that the next interaction involves a
//! responder of category `a` and an initiator of category `b` is
//! `count(a)·count(b)/n²` (self-interactions allowed, matching the paper's
//! scheduler).  [`CountSimulator`] therefore samples the two *categories*
//! directly — `O(log k)` per interaction via a Fenwick tree — instead of
//! touching individual agents, which makes runs of `Θ(k·n·log n)` interactions
//! on populations of 10⁵–10⁶ agents practical on a laptop.
//!
//! The sampling is *exact*: it induces precisely the same distribution over
//! configuration trajectories as the agent-level simulator (this is verified
//! statistically in the integration tests).

use crate::checkpoint::{Checkpoint, EngineCheckpoint, EngineSnapshot, EngineState};
use crate::config::Configuration;
use crate::error::PpError;
use crate::fenwick::FenwickTree;
use crate::opinion::AgentState;
use crate::protocol::OpinionProtocol;
use crate::recorder::Recorder;
use crate::rng::SimSeed;
use crate::run::{RunOutcome, RunResult};
use crate::stopping::StopCondition;
use rand::rngs::SmallRng;

/// A count-based simulator for an [`OpinionProtocol`].
///
/// # Examples
///
/// ```
/// use pp_core::prelude::*;
///
/// struct Voter { k: usize }
/// impl OpinionProtocol for Voter {
///     fn num_opinions(&self) -> usize { self.k }
///     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
///         if i.is_decided() { i } else { r }
///     }
/// }
///
/// let config = Configuration::from_counts(vec![90, 10], 0).unwrap();
/// let mut sim = CountSimulator::new(Voter { k: 2 }, config, SimSeed::from_u64(1));
/// let result = sim.run(StopCondition::consensus().or_max_interactions(1_000_000));
/// assert!(result.reached_consensus());
/// ```
#[derive(Debug)]
pub struct CountSimulator<P> {
    protocol: P,
    config: Configuration,
    weights: FenwickTree,
    interactions: u64,
    rng: SmallRng,
}

impl<P: OpinionProtocol> CountSimulator<P> {
    /// Creates a simulator for `protocol` starting from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol's `num_opinions()` differs from the
    /// configuration's.  Use [`CountSimulator::try_new`] for a fallible
    /// constructor.
    #[must_use]
    pub fn new(protocol: P, config: Configuration, seed: SimSeed) -> Self {
        Self::try_new(protocol, config, seed)
            .expect("protocol/configuration opinion count mismatch")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] if the protocol and the
    /// configuration disagree on `k`.
    pub fn try_new(protocol: P, config: Configuration, seed: SimSeed) -> Result<Self, PpError> {
        if protocol.num_opinions() != config.num_opinions() {
            return Err(PpError::OpinionCountMismatch {
                protocol: protocol.num_opinions(),
                configuration: config.num_opinions(),
            });
        }
        let k = config.num_opinions();
        let mut weights = Vec::with_capacity(k + 1);
        weights.extend_from_slice(config.supports());
        weights.push(config.undecided());
        Ok(CountSimulator {
            protocol,
            weights: FenwickTree::from_weights(&weights),
            config,
            interactions: 0,
            rng: seed.rng(),
        })
    }

    /// The current configuration.
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// Number of interactions performed so far.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// The protocol driving this simulator.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Performs one interaction and returns `true` if it was productive
    /// (the responder changed state).
    pub fn step(&mut self) -> bool {
        let k = self.config.num_opinions();
        let responder_cat = self.weights.sample(&mut self.rng);
        let initiator_cat = self.weights.sample(&mut self.rng);
        self.interactions += 1;

        let responder = AgentState::from_category(responder_cat, k);
        let initiator = AgentState::from_category(initiator_cat, k);

        // Self-interaction nuance: sampling the two categories independently
        // matches drawing two agent indices independently (the paper's model).
        // When both indices denote the *same* agent the transition is applied
        // to a pair of equal states, which for every dynamic in this
        // repository is unproductive; category sampling is therefore exact.
        let new_responder = self.protocol.respond(responder, initiator);
        if new_responder == responder {
            return false;
        }
        self.config
            .apply_move(responder, new_responder)
            .expect("transition produced an inconsistent move");
        self.weights.add(responder.category(k), -1);
        self.weights.add(new_responder.category(k), 1);
        true
    }

    /// Runs until the stop condition is met, recording nothing.
    pub fn run(&mut self, stop: StopCondition) -> RunResult {
        self.run_recorded(stop, &mut crate::recorder::NullRecorder)
    }

    /// Runs until the stop condition is met, feeding every configuration to
    /// the recorder (including the initial one).
    ///
    /// # Panics
    ///
    /// Panics if the stop condition is unbounded (no goal and no budget).
    pub fn run_recorded<R: Recorder>(
        &mut self,
        stop: StopCondition,
        recorder: &mut R,
    ) -> RunResult {
        assert!(
            stop.is_bounded(),
            "stop condition can never terminate the run"
        );
        recorder.record(self.interactions, &self.config);
        loop {
            if stop.goal_met(&self.config) {
                let outcome = if self.config.is_consensus() {
                    RunOutcome::Consensus
                } else {
                    RunOutcome::OpinionSettled
                };
                return RunResult::new(outcome, self.interactions, self.config.clone())
                    .with_scheduler(crate::engine::UNIFORM_PAIR_SCHEDULER_NAME);
            }
            if let Some(budget) = stop.max_interactions() {
                if self.interactions >= budget {
                    return RunResult::new(
                        RunOutcome::BudgetExhausted,
                        self.interactions,
                        self.config.clone(),
                    )
                    .with_scheduler(crate::engine::UNIFORM_PAIR_SCHEDULER_NAME);
                }
            }
            let productive = self.step();
            // Only hand changed configurations to the recorder (plus the call
            // above for the initial one); recorders interested in raw
            // interaction counts still see `self.interactions` advance.
            if productive {
                recorder.record(self.interactions, &self.config);
            }
        }
    }

    /// Runs for exactly `budget` further interactions (or until the structural
    /// goal of `stop` is met, whichever comes first).
    pub fn run_for<R: Recorder>(
        &mut self,
        budget: u64,
        stop: StopCondition,
        recorder: &mut R,
    ) -> RunResult {
        let capped = stop.or_max_interactions(self.interactions + budget);
        self.run_recorded(capped, recorder)
    }

    /// Jumps the interaction counter forward to `target` (used by the engine
    /// layer once a configuration is known to be absorbing: the skipped
    /// interactions are all provably null).
    pub(crate) fn skip_to(&mut self, target: u64) {
        self.interactions = self.interactions.max(target);
    }

    /// Consumes the simulator and returns the final configuration.
    #[must_use]
    pub fn into_configuration(self) -> Configuration {
        self.config
    }

    /// Captures this simulator's resumable state (counts, interaction
    /// counter, RNG stream position).  Call between steps/`advance` calls —
    /// see [`crate::checkpoint`] for the exactness rules.
    #[must_use]
    pub fn capture_state(&self) -> EngineSnapshot {
        EngineSnapshot {
            supports: self.config.supports().to_vec(),
            undecided: self.config.undecided(),
            interactions: self.interactions,
            rng: self.rng.state(),
            counters: Vec::new(),
        }
    }

    /// Rebuilds a simulator from a checkpoint captured by
    /// [`CountSimulator::capture_state`].  The Fenwick tree is rebuilt
    /// deterministically from the counts; the restored simulator walks the
    /// identical trajectory tail the interrupted run would have.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] when the checkpoint holds a
    /// different engine kind or invalid counts, and
    /// [`PpError::OpinionCountMismatch`] when the protocol disagrees with
    /// the captured counts on `k`.
    pub fn restore(protocol: P, checkpoint: &Checkpoint) -> Result<Self, PpError> {
        let snapshot = checkpoint.expect_single("exact")?;
        Self::restore_snapshot(protocol, snapshot)
    }

    /// Snapshot-level counterpart of [`CountSimulator::restore`].
    ///
    /// # Errors
    ///
    /// Same as [`CountSimulator::restore`], minus the kind check.
    pub fn restore_snapshot(protocol: P, snapshot: &EngineSnapshot) -> Result<Self, PpError> {
        let config = snapshot.configuration()?;
        let mut sim = Self::try_new(protocol, config, SimSeed::from_u64(0))?;
        sim.rng = SmallRng::from_state(snapshot.rng);
        sim.interactions = snapshot.interactions;
        Ok(sim)
    }

    /// Probability that the next interaction is productive, computed from the
    /// current counts (used by tests and by variance-reduction experiments).
    #[must_use]
    pub fn productive_probability(&self) -> f64 {
        let k = self.config.num_opinions();
        let n = self.config.population() as f64;
        let mut productive_pairs = 0.0f64;
        for r in 0..=k {
            let cr = self.config.category_count(r) as f64;
            if cr == 0.0 {
                continue;
            }
            for i in 0..=k {
                let ci = self.config.category_count(i) as f64;
                if ci == 0.0 {
                    continue;
                }
                let rs = AgentState::from_category(r, k);
                let is = AgentState::from_category(i, k);
                if self.protocol.respond(rs, is) != rs {
                    productive_pairs += cr * ci;
                }
            }
        }
        productive_pairs / (n * n)
    }
}

impl<P: OpinionProtocol> EngineCheckpoint for CountSimulator<P> {
    fn capture_engine(&self) -> EngineState {
        EngineState::Exact(self.capture_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::AgentState;

    /// The 2-opinion USD, used as a self-contained test protocol.
    #[derive(Debug)]
    struct Usd2;

    impl OpinionProtocol for Usd2 {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
        fn name(&self) -> &str {
            "usd-2"
        }
    }

    #[test]
    fn mismatched_opinion_counts_are_rejected() {
        let cfg = Configuration::uniform(10, 3).unwrap();
        let err = CountSimulator::try_new(Usd2, cfg, SimSeed::from_u64(0)).unwrap_err();
        assert!(matches!(
            err,
            PpError::OpinionCountMismatch {
                protocol: 2,
                configuration: 3
            }
        ));
    }

    #[test]
    fn population_is_conserved_across_steps() {
        let cfg = Configuration::from_counts(vec![40, 60], 0).unwrap();
        let mut sim = CountSimulator::new(Usd2, cfg, SimSeed::from_u64(11));
        for _ in 0..5_000 {
            sim.step();
            assert!(sim.configuration().is_consistent());
            assert_eq!(sim.configuration().population(), 100);
        }
    }

    #[test]
    fn usd2_with_large_bias_reaches_consensus_on_plurality() {
        let cfg = Configuration::from_counts(vec![900, 100], 0).unwrap();
        let mut sim = CountSimulator::new(Usd2, cfg, SimSeed::from_u64(5));
        let result = sim.run(StopCondition::consensus().or_max_interactions(2_000_000));
        assert!(result.reached_consensus());
        assert_eq!(result.winner().unwrap().index(), 0);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let cfg = Configuration::from_counts(vec![500, 500], 0).unwrap();
        let mut sim = CountSimulator::new(Usd2, cfg, SimSeed::from_u64(5));
        let result = sim.run(StopCondition::consensus().or_max_interactions(10));
        assert_eq!(result.outcome(), RunOutcome::BudgetExhausted);
        assert_eq!(result.interactions(), 10);
    }

    #[test]
    fn weights_stay_in_sync_with_configuration() {
        let cfg = Configuration::from_counts(vec![30, 30, 40], 0).unwrap();
        #[derive(Debug)]
        struct Usd3;
        impl OpinionProtocol for Usd3 {
            fn num_opinions(&self) -> usize {
                3
            }
            fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
                match (r, i) {
                    (AgentState::Decided(a), AgentState::Decided(b)) if a != b => {
                        AgentState::Undecided
                    }
                    (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                    _ => r,
                }
            }
        }
        let mut sim = CountSimulator::new(Usd3, cfg, SimSeed::from_u64(123));
        for _ in 0..2_000 {
            sim.step();
            let mut expected: Vec<u64> = sim.configuration().supports().to_vec();
            expected.push(sim.configuration().undecided());
            assert_eq!(sim.weights.to_weights(), expected);
        }
    }

    #[test]
    fn productive_probability_matches_closed_form() {
        // For x = (300, 700), u = 0: productive pairs are the discordant
        // decided pairs: 2·300·700 / 1000² = 0.42.
        let cfg = Configuration::from_counts(vec![300, 700], 0).unwrap();
        let sim = CountSimulator::new(Usd2, cfg, SimSeed::from_u64(77));
        assert!((sim.productive_probability() - 0.42).abs() < 1e-12);

        // With undecided agents the undecided-adopts pairs also count:
        // x = (200, 300), u = 500:
        //   discordant decided pairs: 2·200·300 = 120 000
        //   undecided responder + decided initiator: 500·(200+300) = 250 000
        //   => p = 370 000 / 1 000 000 = 0.37.
        let cfg = Configuration::from_counts(vec![200, 300], 500).unwrap();
        let sim = CountSimulator::new(Usd2, cfg, SimSeed::from_u64(77));
        assert!((sim.productive_probability() - 0.37).abs() < 1e-12);
    }

    #[test]
    fn first_step_productive_rate_matches_probability_across_seeds() {
        // Estimate the probability that the *first* interaction is productive
        // by re-sampling it across many independent seeds; the configuration
        // does not drift because each trial takes a single step.
        let cfg = Configuration::from_counts(vec![300, 700], 0).unwrap();
        let trials = 4_000u32;
        let mut productive = 0u32;
        for s in 0..trials {
            let mut sim =
                CountSimulator::new(Usd2, cfg.clone(), SimSeed::from_u64(1000 + u64::from(s)));
            if sim.step() {
                productive += 1;
            }
        }
        let frac = f64::from(productive) / f64::from(trials);
        assert!((frac - 0.42).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn checkpoint_restore_resumes_the_exact_trajectory() {
        let cfg = Configuration::from_counts(vec![700, 300], 0).unwrap();
        let mut reference = CountSimulator::new(Usd2, cfg.clone(), SimSeed::from_u64(5));
        let mut interrupted = CountSimulator::new(Usd2, cfg, SimSeed::from_u64(5));
        for _ in 0..500 {
            reference.step();
            interrupted.step();
        }
        let checkpoint = Checkpoint::capture(&interrupted);
        assert_eq!(checkpoint.kind(), "exact");
        drop(interrupted);
        let mut restored = CountSimulator::restore(Usd2, &checkpoint).unwrap();
        assert_eq!(restored.interactions(), reference.interactions());
        for _ in 0..2_000 {
            assert_eq!(reference.step(), restored.step());
            assert_eq!(reference.configuration(), restored.configuration());
            assert_eq!(reference.interactions(), restored.interactions());
        }
    }

    #[test]
    fn restore_rejects_foreign_kinds_and_mismatched_protocols() {
        let cfg = Configuration::from_counts(vec![10, 10], 0).unwrap();
        let sim = CountSimulator::new(Usd2, cfg, SimSeed::from_u64(1));
        let snapshot = sim.capture_state();
        let foreign = Checkpoint::new(EngineState::Batched(snapshot.clone()));
        assert!(matches!(
            CountSimulator::restore(Usd2, &foreign),
            Err(PpError::Checkpoint { .. })
        ));
        #[derive(Debug)]
        struct ThreeOpinions;
        impl OpinionProtocol for ThreeOpinions {
            fn num_opinions(&self) -> usize {
                3
            }
            fn respond(&self, r: AgentState, _i: AgentState) -> AgentState {
                r
            }
        }
        assert!(matches!(
            CountSimulator::restore_snapshot(ThreeOpinions, &snapshot),
            Err(PpError::OpinionCountMismatch { .. })
        ));
    }

    #[test]
    fn run_recorded_feeds_initial_configuration() {
        let cfg = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let mut sim = CountSimulator::new(Usd2, cfg, SimSeed::from_u64(3));
        let mut first: Option<u64> = None;
        let mut rec = |t: u64, _c: &Configuration| {
            if first.is_none() {
                first = Some(t);
            }
        };
        let result = sim.run_recorded(StopCondition::consensus(), &mut rec);
        assert_eq!(first, Some(0));
        assert!(result.reached_consensus());
        assert_eq!(result.interactions(), 0);
    }
}
