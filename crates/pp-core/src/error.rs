//! Error types for the population protocol engine.

use std::error::Error;
use std::fmt;

/// Error raised when constructing or mutating a [`crate::Configuration`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The configuration would contain zero agents.
    EmptyPopulation,
    /// The configuration has zero opinions (`k = 0`), which is not meaningful.
    NoOpinions,
    /// A requested opinion index is out of the range `0..k`.
    OpinionOutOfRange {
        /// The offending opinion index.
        index: usize,
        /// The number of opinions `k` in the configuration.
        num_opinions: usize,
    },
    /// Counts do not add up to the expected population size.
    CountMismatch {
        /// Sum of the provided counts.
        provided: u64,
        /// Expected population size.
        expected: u64,
    },
    /// An operation would drive a count below zero.
    NegativeCount {
        /// The opinion index whose count would underflow (`None` = undecided).
        index: Option<usize>,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyPopulation => write!(f, "population must contain at least one agent"),
            ConfigError::NoOpinions => write!(f, "configuration must have at least one opinion"),
            ConfigError::OpinionOutOfRange { index, num_opinions } => write!(
                f,
                "opinion index {index} is out of range for a configuration with {num_opinions} opinions"
            ),
            ConfigError::CountMismatch { provided, expected } => write!(
                f,
                "counts sum to {provided} but the population size is {expected}"
            ),
            ConfigError::NegativeCount { index: Some(i) } => {
                write!(f, "count of opinion {i} would become negative")
            }
            ConfigError::NegativeCount { index: None } => {
                write!(f, "count of undecided agents would become negative")
            }
        }
    }
}

impl Error for ConfigError {}

/// Top-level error type of the `pp-core` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PpError {
    /// A configuration was invalid.
    Config(ConfigError),
    /// A simulation exceeded its interaction budget without meeting the
    /// requested stopping condition.
    BudgetExhausted {
        /// The number of interactions performed before giving up.
        interactions: u64,
    },
    /// The protocol and the configuration disagree on the number of opinions.
    OpinionCountMismatch {
        /// Opinions supported by the protocol.
        protocol: usize,
        /// Opinions present in the configuration.
        configuration: usize,
    },
    /// The requested step-engine backend is not available in this context
    /// (e.g. the mean-field backend, which is protocol-specific).
    UnsupportedEngine {
        /// The name of the requested backend.
        requested: &'static str,
    },
    /// A checkpoint could not be captured, parsed, or restored (see
    /// [`crate::checkpoint`]).
    Checkpoint {
        /// Human-readable diagnostic naming the offending field or mismatch.
        reason: String,
    },
}

impl fmt::Display for PpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpError::Config(e) => write!(f, "invalid configuration: {e}"),
            PpError::BudgetExhausted { interactions } => {
                write!(
                    f,
                    "interaction budget exhausted after {interactions} interactions"
                )
            }
            PpError::OpinionCountMismatch {
                protocol,
                configuration,
            } => write!(
                f,
                "protocol supports {protocol} opinions but the configuration has {configuration}"
            ),
            PpError::UnsupportedEngine { requested } => {
                write!(f, "the {requested} engine is not available in this context")
            }
            PpError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
        }
    }
}

impl Error for PpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PpError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for PpError {
    fn from(e: ConfigError) -> Self {
        PpError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ConfigError::EmptyPopulation;
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn config_error_converts_into_pp_error() {
        let e: PpError = ConfigError::NoOpinions.into();
        assert!(matches!(e, PpError::Config(ConfigError::NoOpinions)));
        assert!(e.to_string().contains("at least one opinion"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PpError>();
        assert_send_sync::<ConfigError>();
    }

    #[test]
    fn source_points_to_config_error() {
        let e: PpError = ConfigError::EmptyPopulation.into();
        assert!(std::error::Error::source(&e).is_some());
        let b = PpError::BudgetExhausted { interactions: 10 };
        assert!(std::error::Error::source(&b).is_none());
    }
}
