//! Opinions and agent states.
//!
//! The paper's state space is `Q = {1, …, k, ⊥}`.  We represent opinions with
//! the zero-based newtype [`Opinion`] and the full agent state with
//! [`AgentState`], which is either `Decided(Opinion)` or `Undecided` (`⊥`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Sentinel category index used by count-based simulators for the undecided
/// state: a configuration with `k` opinions uses categories `0..k` for the
/// opinions and category `k` for `⊥`.
pub const UNDECIDED_INDEX: usize = usize::MAX;

/// A zero-based opinion identifier.
///
/// The paper numbers opinions `1..k`; this crate uses `0..k` internally, so
/// "Opinion 1 of the paper" is `Opinion::new(0)`.
///
/// # Examples
///
/// ```
/// use pp_core::Opinion;
/// let o = Opinion::new(3);
/// assert_eq!(o.index(), 3);
/// assert_eq!(o.paper_index(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Opinion(u32);

impl Opinion {
    /// Creates an opinion from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Opinion(u32::try_from(index).expect("opinion index must fit in u32"))
    }

    /// Returns the zero-based index of this opinion.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the one-based index used in the paper's notation.
    #[must_use]
    pub fn paper_index(self) -> usize {
        self.0 as usize + 1
    }
}

impl fmt::Display for Opinion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "opinion {}", self.paper_index())
    }
}

impl From<u32> for Opinion {
    fn from(v: u32) -> Self {
        Opinion(v)
    }
}

impl From<Opinion> for u32 {
    fn from(o: Opinion) -> Self {
        o.0
    }
}

/// The state of a single agent: a decided opinion or the undecided state `⊥`.
///
/// # Examples
///
/// ```
/// use pp_core::{AgentState, Opinion};
/// let s = AgentState::Decided(Opinion::new(0));
/// assert!(s.is_decided());
/// assert_eq!(s.opinion(), Some(Opinion::new(0)));
/// assert!(AgentState::Undecided.is_undecided());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentState {
    /// The agent supports the given opinion.
    Decided(Opinion),
    /// The agent is undecided (`⊥`).
    Undecided,
}

impl AgentState {
    /// Creates a decided state from a zero-based opinion index.
    #[must_use]
    pub fn decided(index: usize) -> Self {
        AgentState::Decided(Opinion::new(index))
    }

    /// Returns `true` if the agent holds an opinion.
    #[must_use]
    pub fn is_decided(self) -> bool {
        matches!(self, AgentState::Decided(_))
    }

    /// Returns `true` if the agent is undecided.
    #[must_use]
    pub fn is_undecided(self) -> bool {
        matches!(self, AgentState::Undecided)
    }

    /// Returns the opinion if the agent is decided.
    #[must_use]
    pub fn opinion(self) -> Option<Opinion> {
        match self {
            AgentState::Decided(o) => Some(o),
            AgentState::Undecided => None,
        }
    }

    /// Returns the category index used by count-based simulators: the opinion
    /// index for decided agents and `k` (the number of opinions) for `⊥`.
    #[must_use]
    pub fn category(self, num_opinions: usize) -> usize {
        match self {
            AgentState::Decided(o) => o.index(),
            AgentState::Undecided => num_opinions,
        }
    }

    /// Inverse of [`AgentState::category`].
    ///
    /// # Panics
    ///
    /// Panics if `category > num_opinions`.
    #[must_use]
    pub fn from_category(category: usize, num_opinions: usize) -> Self {
        assert!(
            category <= num_opinions,
            "category {category} out of range for {num_opinions} opinions"
        );
        if category == num_opinions {
            AgentState::Undecided
        } else {
            AgentState::Decided(Opinion::new(category))
        }
    }
}

impl fmt::Display for AgentState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentState::Decided(o) => write!(f, "{o}"),
            AgentState::Undecided => write!(f, "undecided"),
        }
    }
}

impl From<Opinion> for AgentState {
    fn from(o: Opinion) -> Self {
        AgentState::Decided(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opinion_round_trips_through_u32() {
        let o = Opinion::new(17);
        let raw: u32 = o.into();
        assert_eq!(Opinion::from(raw), o);
    }

    #[test]
    fn paper_index_is_one_based() {
        assert_eq!(Opinion::new(0).paper_index(), 1);
        assert_eq!(Opinion::new(9).paper_index(), 10);
    }

    #[test]
    fn category_round_trips() {
        let k = 5;
        for i in 0..k {
            let s = AgentState::decided(i);
            assert_eq!(AgentState::from_category(s.category(k), k), s);
        }
        let u = AgentState::Undecided;
        assert_eq!(AgentState::from_category(u.category(k), k), u);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_category_rejects_out_of_range() {
        let _ = AgentState::from_category(7, 5);
    }

    #[test]
    fn display_uses_paper_numbering() {
        assert_eq!(AgentState::decided(0).to_string(), "opinion 1");
        assert_eq!(AgentState::Undecided.to_string(), "undecided");
    }

    #[test]
    fn opinion_ordering_follows_index() {
        assert!(Opinion::new(0) < Opinion::new(1));
        assert!(Opinion::new(3) > Opinion::new(2));
    }
}
