//! Reproducible random number seeding.
//!
//! Experiments run many independent trials, often across threads.  To keep
//! every trial reproducible regardless of thread scheduling, a master
//! [`SimSeed`] deterministically derives per-trial seeds through a
//! [`SplitMix64`] stream.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A SplitMix64 pseudo-random stream.
///
/// SplitMix64 is a tiny, high-quality 64-bit mixer commonly used to expand a
/// single seed into independent sub-seeds.  It is implemented here so the
/// seed-derivation scheme is fully self-contained and stable across `rand`
/// versions.
///
/// # Examples
///
/// ```
/// use pp_core::SplitMix64;
/// let mut s = SplitMix64::new(42);
/// let a = s.next_u64();
/// let b = s.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next value mapped to the unit interval `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A master seed for a simulation or an experiment.
///
/// `SimSeed` is a thin newtype over `u64` that can deterministically derive
/// independent child seeds (one per trial, per phase, per component) and
/// construct the crate's standard RNG.
///
/// # Examples
///
/// ```
/// use pp_core::SimSeed;
/// let master = SimSeed::from_u64(7);
/// let trial0 = master.child(0);
/// let trial1 = master.child(1);
/// assert_ne!(trial0, trial1);
/// let _rng = trial0.rng();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimSeed(u64);

impl SimSeed {
    /// Creates a seed from a raw `u64`.
    #[must_use]
    pub fn from_u64(seed: u64) -> Self {
        SimSeed(seed)
    }

    /// Returns the raw seed value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Deterministically derives the `index`-th child seed.
    ///
    /// Children with different indices (or different parents) are effectively
    /// independent: the derivation mixes parent and index through SplitMix64.
    #[must_use]
    pub fn child(self, index: u64) -> SimSeed {
        let mut s = SplitMix64::new(self.0 ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        // Burn two outputs so that parent and child streams do not overlap
        // even when index == 0.
        s.next_u64();
        SimSeed(s.next_u64())
    }

    /// Constructs the crate's standard RNG ([`SmallRng`]) from this seed.
    #[must_use]
    pub fn rng(self) -> SmallRng {
        SmallRng::seed_from_u64(self.0)
    }
}

impl Default for SimSeed {
    /// The default seed used when reproducibility across runs is not needed.
    fn default() -> Self {
        SimSeed(0x5EED_0000_0D5D)
    }
}

impl From<u64> for SimSeed {
    fn from(v: u64) -> Self {
        SimSeed(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut s = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn children_differ_from_parent_and_each_other() {
        let parent = SimSeed::from_u64(1);
        let kids: Vec<_> = (0..100).map(|i| parent.child(i)).collect();
        for (i, a) in kids.iter().enumerate() {
            assert_ne!(a.value(), parent.value());
            for b in kids.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn same_child_index_is_reproducible() {
        assert_eq!(
            SimSeed::from_u64(5).child(17),
            SimSeed::from_u64(5).child(17)
        );
    }
}
