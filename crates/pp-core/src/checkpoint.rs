//! Deterministic checkpoint/restore for every count-based engine.
//!
//! A [`Checkpoint`] is a versioned, self-describing snapshot of a running
//! engine's *complete* resumable state: the count vector, the interaction
//! counter, the position of every RNG stream the engine owns, and the
//! bookkeeping counters that flow into [`RunResult`](crate::RunResult)s.
//! Capture one with [`Checkpoint::capture`] (any engine implementing
//! [`EngineCheckpoint`]), serialize it with [`Checkpoint::to_json`] /
//! [`Checkpoint::save`], and hand it back to the matching engine's
//! `restore` constructor ([`CountSimulator::restore`],
//! [`BatchedEngine::restore`], [`ShardedEngine::restore`],
//! [`EnsembleEngine::restore`]).
//!
//! # The bit-exactness contract
//!
//! A run interrupted at a capture point and restored from the checkpoint
//! produces the **identical trajectory tail** — every configuration, every
//! interaction count, every final [`RunResult`](crate::RunResult) — as the
//! uninterrupted run, at every thread count.  Two rules make this hold:
//!
//! 1. **Capture between `advance` calls only.**  Every engine's RNG streams
//!    are consumed in whole-`advance` units; a checkpoint taken between two
//!    `advance` calls records every stream at a draw boundary.  (The
//!    `UsdSimulator` drive loop in `usd-core` captures exactly there.)
//! 2. **Resume against the same final limit.**  A skip-ahead engine's
//!    geometric draw near a budget boundary depends on the remaining
//!    headroom; both legs must run toward the same
//!    [`StopCondition`](crate::StopCondition) budget.  Memorylessness makes
//!    the overshoot re-sample exact, but only when the limit agrees.
//!
//! # What is captured — and what deliberately is not
//!
//! Captured: category counts, interaction counters, the xoshiro256++ state
//! words of every owned RNG stream (per-shard engine and cross RNGs, the
//! sharded allocator RNG, every ensemble replica's RNG), the incremental
//! maintenance switch, and the maintenance/throughput counters
//! (patches, rebuilds, skips, draws) so a restored run's reports continue
//! where the interrupted run left off.  The mean-field engine holds no RNG
//! at all; its [`MeanFieldSnapshot`] instead stores the exact IEEE-754 bit
//! patterns of its `f64` ODE state, so even the deterministic backend
//! resumes bit-identically.
//!
//! Not captured, because each is a pure function of the captured state and
//! is rebuilt deterministically on restore:
//!
//! * the batched engine's maintained row table (`rows`/`sums`/`total`) —
//!   rebuilt from the counts at the first event after restore, bit-identical
//!   to the maintained table (the restored run may therefore report **one
//!   extra `rows_rebuilt`** per engine than the uninterrupted run; result
//!   equality ignores maintenance bookkeeping),
//! * the exact engine's Fenwick tree (rebuilt from the counts),
//! * the sharded engine's merged configuration, pair weights, and per-epoch
//!   quota/scratch buffers (dead between `advance` calls — captures land on
//!   epoch boundaries),
//! * the ensemble's shared-table cache, per-replica neighbor tables, and
//!   adaptive-cache statistics — performance state only; shared tables are
//!   pure functions of counts and consume no randomness, so a cold cache
//!   cannot change any replica's draws (cache hit/round *statistics* may
//!   differ between legs; per-replica results never do),
//! * thread-local activation-law memos in `consensus-dynamics` — restored
//!   samplers announce a fresh run generation, so the first refresh is a
//!   cold rebuild with bit-identical values.
//!
//! # Format
//!
//! Checkpoints serialize as a small hand-rolled JSON document (the
//! workspace's vendored `serde` facade is a no-op, so derives are not
//! available): `{"format": 1, "kind": "<engine>", "engine": {…}}`, plus an
//! optional `"meta": {…}` object of named `u64` values that wrappers above
//! the engine layer (the `usd-core` simulator) use to stamp their own
//! resumable state — seed, consumed interactions, initial counts — onto an
//! engine checkpoint without a second file format.
//! [`CHECKPOINT_FORMAT_VERSION`] is bumped on any incompatible layout
//! change; [`Checkpoint::from_json`] rejects unknown versions with a named
//! [`PpError::Checkpoint`] diagnostic instead of misreading newer state.
//!
//! [`CountSimulator::restore`]: crate::CountSimulator::restore
//! [`BatchedEngine::restore`]: crate::BatchedEngine::restore
//! [`ShardedEngine::restore`]: crate::ShardedEngine::restore
//! [`EnsembleEngine::restore`]: crate::EnsembleEngine::restore

use crate::config::Configuration;
use crate::error::PpError;
use std::fmt::Write as _;
use std::path::Path;

/// The current checkpoint layout version.  Bumped on any incompatible
/// change; loaders reject versions they do not understand.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// Snapshot of one single-stream count engine: an exact simulator, a
/// standalone batched engine, one shard's engine, or one ensemble replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Per-opinion decided counts (length `k`).
    pub supports: Vec<u64>,
    /// Undecided-agent count.
    pub undecided: u64,
    /// Interactions elapsed (null interactions included).
    pub interactions: u64,
    /// The engine RNG's xoshiro256++ state words.
    pub rng: [u64; 4],
    /// Engine-specific bookkeeping counters (maintenance, skip/draw counts,
    /// runtime switches), stored by name so each engine round-trips only
    /// what it has.  Missing counters restore as their defaults — they are
    /// reporting state, never trajectory state.
    pub counters: Vec<(String, u64)>,
}

impl EngineSnapshot {
    /// The named bookkeeping counter, if the snapshot carries it.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Rebuilds the configuration from the captured counts.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] when the counts are not a valid
    /// configuration (e.g. an all-zero population from a corrupt file).
    pub fn configuration(&self) -> Result<Configuration, PpError> {
        Configuration::from_counts(self.supports.clone(), self.undecided).map_err(|e| {
            PpError::Checkpoint {
                reason: format!("snapshot counts do not form a valid configuration: {e}"),
            }
        })
    }
}

/// Snapshot of one shard of a [`ShardedEngine`](crate::ShardedEngine): the
/// shard's batched engine plus its cross-block reconciliation RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard's local batched engine.
    pub engine: EngineSnapshot,
    /// The shard's cross-reconciliation RNG state words.
    pub cross_rng: [u64; 4],
}

/// Snapshot of a [`ShardedEngine`](crate::ShardedEngine).  Self-contained:
/// the epoch length, thread count and re-balance cadence ride along, so
/// restore needs no [`ShardPlan`](crate::ShardPlan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedSnapshot {
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// The multinomial epoch allocator's RNG state words.
    pub alloc_rng: [u64; 4],
    /// Merged interactions elapsed.
    pub interactions: u64,
    /// Reconciliation epochs completed.
    pub epochs: u64,
    /// Epoch length in interactions.
    pub epoch_len: u64,
    /// Worker-thread cap (wall-clock only; never affects the trajectory).
    pub threads: u64,
    /// Re-balance cadence in epochs (`None` = never).
    pub rebalance_every: Option<u64>,
}

/// Snapshot of an [`EnsembleEngine`](crate::EnsembleEngine): every replica
/// plus the lifetime lockstep counters.  The shared-table cache is *not*
/// captured (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleSnapshot {
    /// Per-replica state, in construction order.
    pub replicas: Vec<EngineSnapshot>,
    /// Lifetime lockstep rounds.
    pub rounds: u64,
    /// Lifetime dormant-window events.
    pub dormant_events: u64,
}

/// Snapshot of a mean-field (fluid-limit) engine.  The ODE state is `f64`,
/// which the checkpoint format's unsigned-integer-only parser cannot carry
/// directly, so every float is stored as its exact IEEE-754 bit pattern
/// ([`f64::to_bits`]) — the round trip is bit-exact, never a decimal
/// approximation.  The quantized configuration rides along as plain counts
/// (largest-remainder rounding of the exact fractions could disagree with
/// the captured configuration by one agent under floating-point re-derive,
/// so it is state, not a pure function).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeanFieldSnapshot {
    /// Bit patterns of the per-opinion fractions `a_1..a_k`.
    pub fraction_bits: Vec<u64>,
    /// Bit pattern of the undecided fraction `w`.
    pub undecided_bits: u64,
    /// Per-opinion decided counts of the quantized configuration.
    pub supports: Vec<u64>,
    /// Undecided count of the quantized configuration.
    pub undecided: u64,
    /// Population size `n`.
    pub population: u64,
    /// Interactions elapsed (parallel time × `n`).
    pub interactions: u64,
    /// Bit pattern of the RK4 step size `dt`.
    pub dt_bits: u64,
}

/// The engine-specific payload of a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineState {
    /// An exact per-interaction simulator.
    Exact(EngineSnapshot),
    /// A standalone batched skip-ahead engine.
    Batched(EngineSnapshot),
    /// A sharded parallel engine.
    Sharded(ShardedSnapshot),
    /// A lockstep replica ensemble.
    Ensemble(EnsembleSnapshot),
    /// A mean-field (fluid-limit) ODE engine.
    MeanField(MeanFieldSnapshot),
}

impl EngineState {
    /// The stable engine identifier stored in the `kind` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            EngineState::Exact(_) => "exact",
            EngineState::Batched(_) => "batched",
            EngineState::Sharded(_) => "sharded",
            EngineState::Ensemble(_) => "ensemble",
            EngineState::MeanField(_) => "mean-field",
        }
    }
}

/// An engine that can capture its complete resumable state (the capture
/// half of the checkpoint contract; restore goes through each engine's
/// `restore` constructor because it needs the protocol or dynamics value,
/// which checkpoints deliberately do not serialize).
pub trait EngineCheckpoint {
    /// Captures the engine's state.  Must be called between `advance`
    /// calls — see the module docs for the exactness rules.
    fn capture_engine(&self) -> EngineState;
}

/// A replica engine that can be captured and rebuilt inside a generic
/// [`EnsembleEngine`](crate::EnsembleEngine) checkpoint.
pub trait ReplicaCheckpoint: Sized {
    /// What a restored replica needs besides its snapshot (the protocol
    /// for a batched engine, the dynamics for a sequential sampler).
    type Context;

    /// Captures this replica's resumable state.
    fn capture_replica(&self) -> EngineSnapshot;

    /// Rebuilds a replica from `snapshot`.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] (or the context's own construction
    /// error) when the snapshot does not fit the context.
    fn restore_replica(ctx: &Self::Context, snapshot: &EngineSnapshot) -> Result<Self, PpError>;
}

/// A versioned engine checkpoint (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    version: u32,
    engine: EngineState,
    /// Named `u64` metadata stamped by wrappers above the engine layer
    /// (empty for bare engine checkpoints; never read by engine restores).
    meta: Vec<(String, u64)>,
}

impl Checkpoint {
    /// Wraps an engine state at the current format version.
    #[must_use]
    pub fn new(engine: EngineState) -> Self {
        Checkpoint {
            version: CHECKPOINT_FORMAT_VERSION,
            engine,
            meta: Vec::new(),
        }
    }

    /// Captures `engine` between `advance` calls.
    #[must_use]
    pub fn capture<E: EngineCheckpoint + ?Sized>(engine: &E) -> Self {
        Checkpoint::new(engine.capture_engine())
    }

    /// The format version this checkpoint was written at.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The engine payload.
    #[must_use]
    pub fn engine(&self) -> &EngineState {
        &self.engine
    }

    /// The stable engine identifier (`"exact"`, `"batched"`, `"sharded"`,
    /// `"ensemble"`, `"mean-field"`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.engine.kind()
    }

    /// Adds (or replaces) a named metadata value.  Metadata is wrapper
    /// state — the `usd-core` simulator stamps its seed, consumed
    /// interactions and initial counts here — and is never read by the
    /// engine-level restore constructors.
    #[must_use]
    pub fn with_meta(mut self, name: &str, value: u64) -> Self {
        if let Some(slot) = self.meta.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.meta.push((name.to_string(), value));
        }
        self
    }

    /// The named metadata value, if present.
    #[must_use]
    pub fn meta(&self, name: &str) -> Option<u64> {
        self.meta.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Serializes the checkpoint to its JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"format\":{},\"kind\":\"{}\",\"engine\":",
            self.version,
            self.kind()
        );
        match &self.engine {
            EngineState::Exact(s) | EngineState::Batched(s) => write_snapshot(&mut out, s),
            EngineState::Sharded(s) => write_sharded(&mut out, s),
            EngineState::Ensemble(s) => write_ensemble(&mut out, s),
            EngineState::MeanField(s) => write_mean_field(&mut out, s),
        }
        if !self.meta.is_empty() {
            out.push_str(",\"meta\":{");
            for (i, (name, value)) in self.meta.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(&mut out, name);
                let _ = write!(out, ":{value}");
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses a checkpoint from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] on malformed JSON, a missing or
    /// misshaped field, an unknown `kind`, or a format version this build
    /// does not understand.
    pub fn from_json(text: &str) -> Result<Self, PpError> {
        let value = parse_json(text)?;
        let root = value.as_object("checkpoint root")?;
        let version = get(root, "format")?.as_u64("format")?;
        let version = u32::try_from(version).map_err(|_| bad("format version out of range"))?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(bad(&format!(
                "unsupported checkpoint format version {version} \
                 (this build reads version {CHECKPOINT_FORMAT_VERSION})"
            )));
        }
        let kind = get(root, "kind")?.as_str("kind")?;
        let payload = get(root, "engine")?;
        let engine = match kind {
            "exact" => EngineState::Exact(read_snapshot(payload)?),
            "batched" => EngineState::Batched(read_snapshot(payload)?),
            "sharded" => EngineState::Sharded(read_sharded(payload)?),
            "ensemble" => EngineState::Ensemble(read_ensemble(payload)?),
            "mean-field" => EngineState::MeanField(read_mean_field(payload)?),
            other => return Err(bad(&format!("unknown engine kind {other:?}"))),
        };
        let meta = match root.iter().find(|(n, _)| n == "meta") {
            Some((_, v)) => v
                .as_object("meta")?
                .iter()
                .map(|(name, v)| Ok((name.clone(), v.as_u64(name)?)))
                .collect::<Result<Vec<_>, PpError>>()?,
            None => Vec::new(),
        };
        Ok(Checkpoint {
            version,
            engine,
            meta,
        })
    }

    /// Writes the JSON document to `path` and returns the bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] wrapping the I/O failure.
    pub fn save(&self, path: &Path) -> Result<u64, PpError> {
        let json = self.to_json();
        std::fs::write(path, &json).map_err(|e| {
            bad(&format!(
                "failed to write checkpoint {}: {e}",
                path.display()
            ))
        })?;
        Ok(json.len() as u64)
    }

    /// Reads and parses a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] on I/O failure or any
    /// [`Checkpoint::from_json`] diagnostic.
    pub fn load(path: &Path) -> Result<Self, PpError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            bad(&format!(
                "failed to read checkpoint {}: {e}",
                path.display()
            ))
        })?;
        Self::from_json(&text)
    }

    /// Unwraps a single-engine snapshot of the expected `kind`, with a
    /// named diagnostic on mismatch (the restore constructors' shared
    /// validation path).
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] when the checkpoint holds a
    /// different engine kind.
    pub fn expect_single(&self, kind: &'static str) -> Result<&EngineSnapshot, PpError> {
        match (&self.engine, kind) {
            (EngineState::Exact(s), "exact") | (EngineState::Batched(s), "batched") => Ok(s),
            _ => Err(self.kind_mismatch(kind)),
        }
    }

    /// The standard kind-mismatch diagnostic.
    pub(crate) fn kind_mismatch(&self, expected: &'static str) -> PpError {
        bad(&format!(
            "checkpoint holds {:?} engine state, expected {expected:?}",
            self.kind()
        ))
    }
}

/// Shorthand for a named checkpoint diagnostic.
fn bad(reason: &str) -> PpError {
    PpError::Checkpoint {
        reason: reason.to_string(),
    }
}

// --- JSON writer --------------------------------------------------------

fn write_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_snapshot(out: &mut String, s: &EngineSnapshot) {
    out.push_str("{\"supports\":");
    write_u64_array(out, &s.supports);
    let _ = write!(
        out,
        ",\"undecided\":{},\"interactions\":{},\"rng\":",
        s.undecided, s.interactions
    );
    write_u64_array(out, &s.rng);
    out.push_str(",\"counters\":{");
    for (i, (name, value)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("}}");
}

fn write_sharded(out: &mut String, s: &ShardedSnapshot) {
    out.push_str("{\"shards\":[");
    for (i, shard) in s.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"engine\":");
        write_snapshot(out, &shard.engine);
        out.push_str(",\"cross_rng\":");
        write_u64_array(out, &shard.cross_rng);
        out.push('}');
    }
    out.push_str("],\"alloc_rng\":");
    write_u64_array(out, &s.alloc_rng);
    let _ = write!(
        out,
        ",\"interactions\":{},\"epochs\":{},\"epoch_len\":{},\"threads\":{},\"rebalance_every\":",
        s.interactions, s.epochs, s.epoch_len, s.threads
    );
    match s.rebalance_every {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
    out.push('}');
}

fn write_ensemble(out: &mut String, s: &EnsembleSnapshot) {
    out.push_str("{\"replicas\":[");
    for (i, replica) in s.replicas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_snapshot(out, replica);
    }
    let _ = write!(
        out,
        "],\"rounds\":{},\"dormant_events\":{}}}",
        s.rounds, s.dormant_events
    );
}

fn write_mean_field(out: &mut String, s: &MeanFieldSnapshot) {
    out.push_str("{\"fraction_bits\":");
    write_u64_array(out, &s.fraction_bits);
    let _ = write!(
        out,
        ",\"undecided_bits\":{},\"supports\":",
        s.undecided_bits
    );
    write_u64_array(out, &s.supports);
    let _ = write!(
        out,
        ",\"undecided\":{},\"population\":{},\"interactions\":{},\"dt_bits\":{}}}",
        s.undecided, s.population, s.interactions, s.dt_bits
    );
}

// --- JSON reader --------------------------------------------------------
//
// A minimal recursive-descent parser covering exactly the subset the writer
// emits: objects, arrays, strings, unsigned integers, and `null`.  The
// vendored `serde` facade is a no-op, so this is deliberate, not an
// oversight.

#[derive(Debug)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
    Null,
}

impl Json {
    fn as_u64(&self, what: &str) -> Result<u64, PpError> {
        match self {
            Json::Num(v) => Ok(*v),
            _ => Err(bad(&format!("field {what:?} is not an unsigned integer"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, PpError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(bad(&format!("field {what:?} is not a string"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], PpError> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(bad(&format!("field {what:?} is not an array"))),
        }
    }

    fn as_object(&self, what: &str) -> Result<&[(String, Json)], PpError> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(bad(&format!("field {what:?} is not an object"))),
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], name: &str) -> Result<&'a Json, PpError> {
    obj.iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| bad(&format!("missing checkpoint field {name:?}")))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, PpError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| bad("unexpected end of checkpoint document"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), PpError> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(bad(&format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, PpError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b'n' => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(bad(&format!("unrecognized token at byte {}", self.pos)))
                }
            }
            b'0'..=b'9' => self.number(),
            other => Err(bad(&format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Json, PpError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf-8");
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| bad(&format!("number out of range at byte {start}")))
    }

    fn string(&mut self) -> Result<String, PpError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(bad("unterminated string in checkpoint document"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(bad("unterminated escape in checkpoint document"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| bad("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(hex);
                        }
                        other => {
                            return Err(bad(&format!("unsupported escape \\{}", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-sync on the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while self.bytes.get(end).is_some_and(|b| b & 0xC0 == 0x80) {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| bad("invalid utf-8 in checkpoint string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, PpError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(bad(&format!(
                        "expected ',' or ']' but found {:?} at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, PpError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.expect(b':')?;
            fields.push((name, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(bad(&format!(
                        "expected ',' or '}}' but found {:?} at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, PpError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(bad(&format!(
            "trailing garbage at byte {} of checkpoint document",
            parser.pos
        )));
    }
    Ok(value)
}

fn read_u64_array(value: &Json, what: &str) -> Result<Vec<u64>, PpError> {
    value
        .as_array(what)?
        .iter()
        .map(|v| v.as_u64(what))
        .collect()
}

fn read_rng(value: &Json, what: &str) -> Result<[u64; 4], PpError> {
    let words = read_u64_array(value, what)?;
    <[u64; 4]>::try_from(words)
        .map_err(|w| bad(&format!("field {what:?} has {} words, expected 4", w.len())))
}

fn read_snapshot(value: &Json) -> Result<EngineSnapshot, PpError> {
    let obj = value.as_object("engine snapshot")?;
    let counters = get(obj, "counters")?
        .as_object("counters")?
        .iter()
        .map(|(name, v)| Ok((name.clone(), v.as_u64(name)?)))
        .collect::<Result<Vec<_>, PpError>>()?;
    Ok(EngineSnapshot {
        supports: read_u64_array(get(obj, "supports")?, "supports")?,
        undecided: get(obj, "undecided")?.as_u64("undecided")?,
        interactions: get(obj, "interactions")?.as_u64("interactions")?,
        rng: read_rng(get(obj, "rng")?, "rng")?,
        counters,
    })
}

fn read_sharded(value: &Json) -> Result<ShardedSnapshot, PpError> {
    let obj = value.as_object("sharded state")?;
    let shards = get(obj, "shards")?
        .as_array("shards")?
        .iter()
        .map(|shard| {
            let s = shard.as_object("shard")?;
            Ok(ShardSnapshot {
                engine: read_snapshot(get(s, "engine")?)?,
                cross_rng: read_rng(get(s, "cross_rng")?, "cross_rng")?,
            })
        })
        .collect::<Result<Vec<_>, PpError>>()?;
    let rebalance_every = match get(obj, "rebalance_every")? {
        Json::Null => None,
        v => Some(v.as_u64("rebalance_every")?),
    };
    Ok(ShardedSnapshot {
        shards,
        alloc_rng: read_rng(get(obj, "alloc_rng")?, "alloc_rng")?,
        interactions: get(obj, "interactions")?.as_u64("interactions")?,
        epochs: get(obj, "epochs")?.as_u64("epochs")?,
        epoch_len: get(obj, "epoch_len")?.as_u64("epoch_len")?,
        threads: get(obj, "threads")?.as_u64("threads")?,
        rebalance_every,
    })
}

fn read_ensemble(value: &Json) -> Result<EnsembleSnapshot, PpError> {
    let obj = value.as_object("ensemble state")?;
    Ok(EnsembleSnapshot {
        replicas: get(obj, "replicas")?
            .as_array("replicas")?
            .iter()
            .map(read_snapshot)
            .collect::<Result<Vec<_>, PpError>>()?,
        rounds: get(obj, "rounds")?.as_u64("rounds")?,
        dormant_events: get(obj, "dormant_events")?.as_u64("dormant_events")?,
    })
}

fn read_mean_field(value: &Json) -> Result<MeanFieldSnapshot, PpError> {
    let obj = value.as_object("mean-field state")?;
    Ok(MeanFieldSnapshot {
        fraction_bits: read_u64_array(get(obj, "fraction_bits")?, "fraction_bits")?,
        undecided_bits: get(obj, "undecided_bits")?.as_u64("undecided_bits")?,
        supports: read_u64_array(get(obj, "supports")?, "supports")?,
        undecided: get(obj, "undecided")?.as_u64("undecided")?,
        population: get(obj, "population")?.as_u64("population")?,
        interactions: get(obj, "interactions")?.as_u64("interactions")?,
        dt_bits: get(obj, "dt_bits")?.as_u64("dt_bits")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            supports: vec![12, 0, 7],
            undecided: 3,
            interactions: 123_456,
            rng: [1, u64::MAX, 0, 42],
            counters: vec![
                ("events_drawn".to_string(), 99),
                ("incremental".to_string(), 1),
            ],
        }
    }

    #[test]
    fn every_engine_state_round_trips_through_json() {
        let states = [
            EngineState::Exact(sample_snapshot()),
            EngineState::Batched(sample_snapshot()),
            EngineState::Sharded(ShardedSnapshot {
                shards: vec![
                    ShardSnapshot {
                        engine: sample_snapshot(),
                        cross_rng: [5, 6, 7, 8],
                    },
                    ShardSnapshot {
                        engine: sample_snapshot(),
                        cross_rng: [9, 10, 11, 12],
                    },
                ],
                alloc_rng: [13, 14, 15, 16],
                interactions: 999,
                epochs: 31,
                epoch_len: 32,
                threads: 4,
                rebalance_every: Some(64),
            }),
            EngineState::Ensemble(EnsembleSnapshot {
                replicas: vec![sample_snapshot(); 3],
                rounds: 17,
                dormant_events: 5,
            }),
            EngineState::MeanField(MeanFieldSnapshot {
                fraction_bits: vec![
                    0.5f64.to_bits(),
                    (1.0f64 / 3.0).to_bits(),
                    f64::MIN_POSITIVE.to_bits(),
                ],
                undecided_bits: 0.2f64.to_bits(),
                supports: vec![500, 333, 0],
                undecided: 167,
                population: 1_000,
                interactions: 4_200,
                dt_bits: 0.01f64.to_bits(),
            }),
        ];
        for state in states {
            let checkpoint = Checkpoint::new(state);
            let json = checkpoint.to_json();
            let parsed =
                Checkpoint::from_json(&json).unwrap_or_else(|e| panic!("{e} while parsing {json}"));
            assert_eq!(parsed, checkpoint);
            assert_eq!(parsed.version(), CHECKPOINT_FORMAT_VERSION);
        }
    }

    #[test]
    fn none_rebalance_round_trips_as_null() {
        let checkpoint = Checkpoint::new(EngineState::Sharded(ShardedSnapshot {
            shards: vec![ShardSnapshot {
                engine: sample_snapshot(),
                cross_rng: [0, 1, 2, 3],
            }],
            alloc_rng: [4, 5, 6, 7],
            interactions: 1,
            epochs: 0,
            epoch_len: 10,
            threads: 1,
            rebalance_every: None,
        }));
        let json = checkpoint.to_json();
        assert!(json.contains("\"rebalance_every\":null"));
        assert_eq!(Checkpoint::from_json(&json).unwrap(), checkpoint);
    }

    #[test]
    fn unknown_format_versions_are_rejected_by_name() {
        let json = Checkpoint::new(EngineState::Exact(sample_snapshot()))
            .to_json()
            .replace("\"format\":1", "\"format\":9999");
        let err = Checkpoint::from_json(&json).unwrap_err();
        let PpError::Checkpoint { reason } = &err else {
            panic!("expected a checkpoint error, got {err:?}");
        };
        assert!(
            reason.contains("unsupported checkpoint format version 9999"),
            "diagnostic must name the version: {reason}"
        );
    }

    #[test]
    fn malformed_documents_fail_with_named_diagnostics() {
        for (doc, needle) in [
            ("", "unexpected end"),
            ("{\"format\":1}", "missing checkpoint field \"kind\""),
            ("[1,2,3]", "is not an object"),
            (
                "{\"format\":1,\"kind\":\"warp\",\"engine\":{}}",
                "unknown engine kind",
            ),
            ("{\"format\":1} trailing", "trailing garbage"),
        ] {
            let err = Checkpoint::from_json(doc).unwrap_err();
            let PpError::Checkpoint { reason } = &err else {
                panic!("expected a checkpoint error for {doc:?}, got {err:?}");
            };
            assert!(reason.contains(needle), "{doc:?} gave {reason:?}");
        }
    }

    #[test]
    fn counter_names_with_escapes_survive_the_round_trip() {
        let mut snap = sample_snapshot();
        snap.counters
            .push(("weird\"name\\with\nescapes".to_string(), 7));
        let checkpoint = Checkpoint::new(EngineState::Batched(snap));
        let parsed = Checkpoint::from_json(&checkpoint.to_json()).unwrap();
        assert_eq!(parsed, checkpoint);
        let EngineState::Batched(s) = parsed.engine() else {
            panic!("kind changed in flight");
        };
        assert_eq!(s.counter("weird\"name\\with\nescapes"), Some(7));
    }

    #[test]
    fn wrapper_metadata_rides_along_and_round_trips() {
        let bare = Checkpoint::new(EngineState::Exact(sample_snapshot()));
        assert!(!bare.to_json().contains("\"meta\""));
        assert_eq!(bare.meta("sim.seed"), None);
        let stamped = bare
            .clone()
            .with_meta("sim.seed", 42)
            .with_meta("sim.consumed", 7)
            .with_meta("sim.seed", 43); // replaces, never duplicates
        assert_eq!(stamped.meta("sim.seed"), Some(43));
        assert_eq!(stamped.meta("sim.consumed"), Some(7));
        let parsed = Checkpoint::from_json(&stamped.to_json()).unwrap();
        assert_eq!(parsed, stamped);
        // Bare documents (no meta object) still parse.
        assert_eq!(Checkpoint::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn mean_field_bit_patterns_round_trip_exactly() {
        // Values with no finite decimal representation must survive the
        // round trip bit-for-bit — the whole point of the bits encoding.
        let awkward = [1.0f64 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1.0 - 1e-16];
        let state = EngineState::MeanField(MeanFieldSnapshot {
            fraction_bits: awkward.iter().map(|f| f.to_bits()).collect(),
            undecided_bits: (1.0f64 / 7.0).to_bits(),
            supports: vec![1, 2, 3, 4],
            undecided: 10,
            population: 20,
            interactions: 7,
            dt_bits: 0.001f64.to_bits(),
        });
        let parsed = Checkpoint::from_json(&Checkpoint::new(state.clone()).to_json()).unwrap();
        let EngineState::MeanField(s) = parsed.engine() else {
            panic!("kind changed in flight");
        };
        for (bits, original) in s.fraction_bits.iter().zip(awkward) {
            assert_eq!(f64::from_bits(*bits).to_bits(), original.to_bits());
        }
        assert_eq!(parsed, Checkpoint::new(state));
    }

    #[test]
    fn snapshot_rejects_invalid_counts() {
        let snap = EngineSnapshot {
            supports: vec![],
            undecided: 0,
            interactions: 0,
            rng: [0; 4],
            counters: Vec::new(),
        };
        assert!(matches!(
            snap.configuration(),
            Err(PpError::Checkpoint { .. })
        ));
    }

    #[test]
    fn expect_single_names_the_kind_mismatch() {
        let checkpoint = Checkpoint::new(EngineState::Exact(sample_snapshot()));
        assert!(checkpoint.expect_single("exact").is_ok());
        let err = checkpoint.expect_single("batched").unwrap_err();
        let PpError::Checkpoint { reason } = err else {
            panic!("expected a checkpoint error");
        };
        assert!(reason.contains("\"exact\"") && reason.contains("\"batched\""));
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let checkpoint = Checkpoint::new(EngineState::Exact(sample_snapshot()));
        let dir = std::env::temp_dir().join("pp_core_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt.json");
        let bytes = checkpoint.save(&path).unwrap();
        assert!(bytes > 0);
        assert_eq!(Checkpoint::load(&path).unwrap(), checkpoint);
        let missing = dir.join("does-not-exist.ckpt.json");
        assert!(matches!(
            Checkpoint::load(&missing),
            Err(PpError::Checkpoint { .. })
        ));
        let _ = std::fs::remove_file(path);
    }
}
