//! Stopping conditions for simulation runs.

use crate::config::Configuration;
use serde::{Deserialize, Serialize};

/// When a simulation run should stop.
///
/// A condition is a combination of (optional) structural goals — consensus or
/// opinion-settlement — and an (optional) interaction budget.  The run stops
/// as soon as *any* enabled goal holds or the budget is exhausted.
///
/// # Examples
///
/// ```
/// use pp_core::StopCondition;
///
/// // Stop at consensus, but give up after 10^7 interactions.
/// let stop = StopCondition::consensus().or_max_interactions(10_000_000);
/// assert_eq!(stop.max_interactions(), Some(10_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StopCondition {
    stop_on_consensus: bool,
    stop_on_settled: bool,
    max_interactions: Option<u64>,
}

impl StopCondition {
    /// Stop when all agents support the same opinion (`x_i = n`).
    #[must_use]
    pub fn consensus() -> Self {
        StopCondition {
            stop_on_consensus: true,
            stop_on_settled: false,
            max_interactions: None,
        }
    }

    /// Stop as soon as at most one opinion has non-zero support (the winner is
    /// determined even though undecided agents may remain).
    #[must_use]
    pub fn opinion_settled() -> Self {
        StopCondition {
            stop_on_consensus: false,
            stop_on_settled: true,
            max_interactions: None,
        }
    }

    /// Stop only when the interaction budget is exhausted.
    #[must_use]
    pub fn after_interactions(budget: u64) -> Self {
        StopCondition {
            stop_on_consensus: false,
            stop_on_settled: false,
            max_interactions: Some(budget),
        }
    }

    /// Adds an interaction budget to an existing condition.
    #[must_use]
    pub fn or_max_interactions(mut self, budget: u64) -> Self {
        self.max_interactions = Some(budget);
        self
    }

    /// Also stop when the configuration is opinion-settled.
    #[must_use]
    pub fn or_opinion_settled(mut self) -> Self {
        self.stop_on_settled = true;
        self
    }

    /// The interaction budget, if any.
    #[must_use]
    pub fn max_interactions(&self) -> Option<u64> {
        self.max_interactions
    }

    /// Returns `true` if the *structural* part of the condition is met by the
    /// given configuration (ignores the budget).
    #[must_use]
    pub fn goal_met(&self, config: &Configuration) -> bool {
        (self.stop_on_consensus && config.is_consensus())
            || (self.stop_on_settled && config.is_opinion_settled())
    }

    /// Returns `true` if a run at `interactions` steps with configuration
    /// `config` should stop.
    #[must_use]
    pub fn should_stop(&self, config: &Configuration, interactions: u64) -> bool {
        if self.goal_met(config) {
            return true;
        }
        matches!(self.max_interactions, Some(b) if interactions >= b)
    }

    /// Returns `true` if the condition can ever stop a run (it has a goal or a
    /// budget).  A condition with neither would loop forever on a
    /// non-absorbing process.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.stop_on_consensus || self.stop_on_settled || self.max_interactions.is_some()
    }
}

impl Default for StopCondition {
    /// The default stops at consensus (no budget).
    fn default() -> Self {
        StopCondition::consensus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_goal() {
        let stop = StopCondition::consensus();
        let done = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let not_done = Configuration::from_counts(vec![9, 0], 1).unwrap();
        assert!(stop.goal_met(&done));
        assert!(!stop.goal_met(&not_done));
        assert!(stop.should_stop(&done, 0));
        assert!(!stop.should_stop(&not_done, u64::MAX));
    }

    #[test]
    fn settled_goal_ignores_undecided() {
        let stop = StopCondition::opinion_settled();
        let settled = Configuration::from_counts(vec![9, 0], 1).unwrap();
        assert!(stop.goal_met(&settled));
    }

    #[test]
    fn budget_stops_runs() {
        let stop = StopCondition::consensus().or_max_interactions(100);
        let cfg = Configuration::from_counts(vec![5, 5], 0).unwrap();
        assert!(!stop.should_stop(&cfg, 99));
        assert!(stop.should_stop(&cfg, 100));
    }

    #[test]
    fn boundedness() {
        assert!(StopCondition::consensus().is_bounded());
        assert!(StopCondition::after_interactions(1).is_bounded());
        assert!(StopCondition::default().is_bounded());
    }
}
