//! Configurations: the count vector `(x_1, …, x_k, u)`.
//!
//! A [`Configuration`] records, for a population of `n` agents and `k`
//! opinions, how many agents support each opinion and how many are undecided.
//! It is the central data structure of the reproduction: the undecided state
//! dynamics (and every baseline dynamic studied here) is a Markov chain over
//! configurations, so all simulators, phase trackers and potential functions
//! operate on this type.

use crate::error::ConfigError;
use crate::opinion::{AgentState, Opinion};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The count vector `(x_1, …, x_k, u)` of a population of `n` agents with `k`
/// opinions, as defined in Section 2 of the paper.
///
/// Invariant: `sum_i x_i + u == n` and `k >= 1`, `n >= 1`.
///
/// # Examples
///
/// ```
/// use pp_core::Configuration;
///
/// let c = Configuration::from_counts(vec![50, 30, 20], 0).unwrap();
/// assert_eq!(c.population(), 100);
/// assert_eq!(c.num_opinions(), 3);
/// assert_eq!(c.max_support(), 50);
/// assert_eq!(c.additive_bias(), Some(20));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    counts: Vec<u64>,
    undecided: u64,
    population: u64,
}

impl Configuration {
    /// Creates a configuration from per-opinion counts and an undecided count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoOpinions`] if `counts` is empty and
    /// [`ConfigError::EmptyPopulation`] if the total population would be zero.
    pub fn from_counts(counts: Vec<u64>, undecided: u64) -> Result<Self, ConfigError> {
        if counts.is_empty() {
            return Err(ConfigError::NoOpinions);
        }
        let decided: u64 = counts.iter().sum();
        let population = decided + undecided;
        if population == 0 {
            return Err(ConfigError::EmptyPopulation);
        }
        Ok(Configuration {
            counts,
            undecided,
            population,
        })
    }

    /// Creates a configuration with every agent decided and the support split
    /// as evenly as possible over `k` opinions (the paper's "no bias" start).
    ///
    /// Any remainder `n mod k` is distributed one agent at a time to the
    /// lowest-indexed opinions, so opinion 0 is always a (possibly tied)
    /// plurality opinion.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `k == 0`.
    pub fn uniform(n: u64, k: usize) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError::NoOpinions);
        }
        if n == 0 {
            return Err(ConfigError::EmptyPopulation);
        }
        let base = n / k as u64;
        let rem = (n % k as u64) as usize;
        let counts = (0..k)
            .map(|i| if i < rem { base + 1 } else { base })
            .collect();
        Ok(Configuration {
            counts,
            undecided: 0,
            population: n,
        })
    }

    /// Creates a configuration from an explicit list of agent states.
    ///
    /// # Errors
    ///
    /// Returns an error if `states` is empty, if `k == 0`, or if a state refers
    /// to an opinion `>= k`.
    pub fn from_states(states: &[AgentState], k: usize) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError::NoOpinions);
        }
        if states.is_empty() {
            return Err(ConfigError::EmptyPopulation);
        }
        let mut counts = vec![0u64; k];
        let mut undecided = 0u64;
        for s in states {
            match s {
                AgentState::Decided(o) => {
                    let i = o.index();
                    if i >= k {
                        return Err(ConfigError::OpinionOutOfRange {
                            index: i,
                            num_opinions: k,
                        });
                    }
                    counts[i] += 1;
                }
                AgentState::Undecided => undecided += 1,
            }
        }
        Ok(Configuration {
            counts,
            undecided,
            population: states.len() as u64,
        })
    }

    /// Expands the configuration into an explicit vector of agent states
    /// (opinion 0 agents first, then opinion 1, …, undecided agents last).
    #[must_use]
    pub fn to_states(&self) -> Vec<AgentState> {
        let mut v = Vec::with_capacity(self.population as usize);
        for (i, &c) in self.counts.iter().enumerate() {
            v.extend(std::iter::repeat_n(AgentState::decided(i), c as usize));
        }
        v.extend(std::iter::repeat_n(
            AgentState::Undecided,
            self.undecided as usize,
        ));
        v
    }

    /// Total number of agents `n`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of opinions `k` (including opinions with zero support).
    #[must_use]
    pub fn num_opinions(&self) -> usize {
        self.counts.len()
    }

    /// Number of undecided agents `u`.
    #[must_use]
    pub fn undecided(&self) -> u64 {
        self.undecided
    }

    /// Number of decided agents `n - u`.
    #[must_use]
    pub fn decided(&self) -> u64 {
        self.population - self.undecided
    }

    /// Support `x_i` of the opinion with zero-based index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    #[must_use]
    pub fn support(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Support of the given opinion.
    #[must_use]
    pub fn support_of(&self, opinion: Opinion) -> u64 {
        self.counts[opinion.index()]
    }

    /// The per-opinion support slice `x_1..x_k`.
    #[must_use]
    pub fn supports(&self) -> &[u64] {
        &self.counts
    }

    /// Count of agents in a *category*: `0..k` are the opinions, `k` is `⊥`.
    ///
    /// # Panics
    ///
    /// Panics if `category > k`.
    #[must_use]
    pub fn category_count(&self, category: usize) -> u64 {
        if category == self.counts.len() {
            self.undecided
        } else {
            self.counts[category]
        }
    }

    /// `x_max(t)`: the largest support over all opinions.
    #[must_use]
    pub fn max_support(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// `max(t)`: the (lowest-indexed) opinion with the largest support.
    #[must_use]
    pub fn max_opinion(&self) -> Opinion {
        let mut best = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        Opinion::new(best)
    }

    /// The second-largest support (equal to `max_support` when the maximum is
    /// attained by two or more opinions).  Returns 0 when `k == 1`.
    #[must_use]
    pub fn second_support(&self) -> u64 {
        let max_idx = self.max_opinion().index();
        self.counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != max_idx)
            .map(|(_, &c)| c)
            .max()
            .unwrap_or(0)
    }

    /// The additive bias of the configuration: `x_max - x_second`, i.e. the
    /// largest `β` such that some opinion `m` satisfies `x_m >= x_i + β` for
    /// all `i != m`.  Returns `None` when `k == 1` (the notion is undefined).
    #[must_use]
    pub fn additive_bias(&self) -> Option<u64> {
        if self.num_opinions() < 2 {
            return None;
        }
        Some(self.max_support() - self.second_support())
    }

    /// The multiplicative bias `x_max / x_second` of the configuration, or
    /// `None` if `k == 1` or the second-largest opinion has zero support.
    #[must_use]
    pub fn multiplicative_bias(&self) -> Option<f64> {
        if self.num_opinions() < 2 {
            return None;
        }
        let second = self.second_support();
        if second == 0 {
            None
        } else {
            Some(self.max_support() as f64 / second as f64)
        }
    }

    /// Number of opinions with non-zero support.
    #[must_use]
    pub fn live_opinions(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Returns `true` if every agent supports the same opinion (consensus as
    /// defined in the paper: `x_i = n` for some `i`).
    #[must_use]
    pub fn is_consensus(&self) -> bool {
        self.undecided == 0 && self.counts.contains(&self.population)
    }

    /// If the configuration is a consensus, returns the winning opinion.
    #[must_use]
    pub fn consensus_opinion(&self) -> Option<Opinion> {
        if !self.is_consensus() {
            return None;
        }
        Some(self.max_opinion())
    }

    /// Returns `true` if at most one opinion has non-zero support (the outcome
    /// is decided even if undecided agents remain: they can only ever adopt
    /// the one surviving opinion under opinion dynamics that never create new
    /// opinions).
    #[must_use]
    pub fn is_opinion_settled(&self) -> bool {
        self.live_opinions() <= 1
    }

    /// Sum of squared supports `r²(t) = Σ_i x_i²`, used by the paper's
    /// transition probability bounds (Appendix B).
    #[must_use]
    pub fn sum_of_squares(&self) -> u128 {
        self.counts.iter().map(|&c| (c as u128) * (c as u128)).sum()
    }

    /// The monochromatic distance of Becchetti et al. (Section 1.2):
    /// `md(x) = Σ_i (x_i / x_max)²`, always in `[1, k]` for a configuration
    /// with a non-empty plurality.  Returns `None` if all supports are zero.
    #[must_use]
    pub fn monochromatic_distance(&self) -> Option<f64> {
        let max = self.max_support();
        if max == 0 {
            return None;
        }
        let max_f = max as f64;
        Some(
            self.counts
                .iter()
                .map(|&c| {
                    let r = c as f64 / max_f;
                    r * r
                })
                .sum(),
        )
    }

    /// The paper's unstable equilibrium for the number of undecided agents,
    /// `u* = n·(k-1)/(2k-1)` (Lemma 3), computed for this configuration's
    /// `n` and `k`.
    #[must_use]
    pub fn undecided_equilibrium(&self) -> f64 {
        let n = self.population as f64;
        let k = self.num_opinions() as f64;
        n * (k - 1.0) / (2.0 * k - 1.0)
    }

    /// Opinions that are *significant* at significance threshold
    /// `α·√(n·ln n)`: all `i` with `x_i > x_max − α·√(n·ln n)` (Section 2).
    #[must_use]
    pub fn significant_opinions(&self, alpha: f64) -> Vec<Opinion> {
        let threshold = self.significance_threshold(alpha);
        let max = self.max_support() as f64;
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| (c as f64) > max - threshold)
            .map(|(i, _)| Opinion::new(i))
            .collect()
    }

    /// The significance margin `α·√(n·ln n)` used throughout the paper.
    #[must_use]
    pub fn significance_threshold(&self, alpha: f64) -> f64 {
        let n = self.population as f64;
        alpha * (n * n.max(2.0).ln()).sqrt()
    }

    /// Returns `true` if exactly one opinion is significant at threshold
    /// `α·√(n·ln n)` — the end condition of Phase 2.
    #[must_use]
    pub fn has_unique_significant_opinion(&self, alpha: f64) -> bool {
        self.significant_opinions(alpha).len() == 1
    }

    /// Applies a responder transition: one agent moves from state `from` to
    /// state `to`.  This is the only mutation primitive used by the count
    /// simulators, so the population invariant is preserved by construction.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NegativeCount`] if no agent currently holds the
    /// `from` state, and [`ConfigError::OpinionOutOfRange`] if either state
    /// refers to an opinion `>= k`.
    pub fn apply_move(&mut self, from: AgentState, to: AgentState) -> Result<(), ConfigError> {
        if from == to {
            return Ok(());
        }
        let k = self.num_opinions();
        let check = |s: AgentState| -> Result<(), ConfigError> {
            if let AgentState::Decided(o) = s {
                if o.index() >= k {
                    return Err(ConfigError::OpinionOutOfRange {
                        index: o.index(),
                        num_opinions: k,
                    });
                }
            }
            Ok(())
        };
        check(from)?;
        check(to)?;
        match from {
            AgentState::Decided(o) => {
                let c = &mut self.counts[o.index()];
                if *c == 0 {
                    return Err(ConfigError::NegativeCount {
                        index: Some(o.index()),
                    });
                }
                *c -= 1;
            }
            AgentState::Undecided => {
                if self.undecided == 0 {
                    return Err(ConfigError::NegativeCount { index: None });
                }
                self.undecided -= 1;
            }
        }
        match to {
            AgentState::Decided(o) => self.counts[o.index()] += 1,
            AgentState::Undecided => self.undecided += 1,
        }
        Ok(())
    }

    /// Sorts a *copy* of the support vector in non-increasing order and
    /// returns it.  Useful for reporting and for the paper's convention
    /// `x_1(0) ≥ x_2(0) ≥ … ≥ x_k(0)`.
    #[must_use]
    pub fn sorted_supports(&self) -> Vec<u64> {
        let mut v = self.counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Relabels opinions so that supports are non-increasing (the paper's
    /// w.l.o.g. convention), returning the permuted configuration and the
    /// permutation `perm` with `new_index = position of old index in perm`.
    #[must_use]
    pub fn canonicalized(&self) -> (Configuration, Vec<usize>) {
        let mut order: Vec<usize> = (0..self.num_opinions()).collect();
        order.sort_by(|&a, &b| self.counts[b].cmp(&self.counts[a]).then(a.cmp(&b)));
        let counts = order.iter().map(|&i| self.counts[i]).collect();
        (
            Configuration {
                counts,
                undecided: self.undecided,
                population: self.population,
            },
            order,
        )
    }

    /// Checks internal consistency; used by debug assertions and tests.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let decided: u64 = self.counts.iter().sum();
        decided + self.undecided == self.population
            && !self.counts.is_empty()
            && self.population > 0
    }

    /// The fraction of agents that are undecided.
    #[must_use]
    pub fn undecided_fraction(&self) -> f64 {
        self.undecided as f64 / self.population as f64
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} u={} x=[", self.population, self.undecided)?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_splits_evenly_with_remainder_to_low_indices() {
        let c = Configuration::uniform(10, 3).unwrap();
        assert_eq!(c.supports(), &[4, 3, 3]);
        assert_eq!(c.population(), 10);
        assert_eq!(c.undecided(), 0);
        assert!(c.is_consistent());
    }

    #[test]
    fn from_counts_rejects_degenerate_inputs() {
        assert_eq!(
            Configuration::from_counts(vec![], 5),
            Err(ConfigError::NoOpinions)
        );
        assert_eq!(
            Configuration::from_counts(vec![0, 0], 0),
            Err(ConfigError::EmptyPopulation)
        );
    }

    #[test]
    fn bias_metrics() {
        let c = Configuration::from_counts(vec![60, 25, 15], 0).unwrap();
        assert_eq!(c.additive_bias(), Some(35));
        assert!((c.multiplicative_bias().unwrap() - 2.4).abs() < 1e-12);
        assert_eq!(c.max_opinion(), Opinion::new(0));
        assert_eq!(c.second_support(), 25);
    }

    #[test]
    fn additive_bias_zero_on_tie() {
        let c = Configuration::from_counts(vec![40, 40, 20], 0).unwrap();
        assert_eq!(c.additive_bias(), Some(0));
    }

    #[test]
    fn consensus_detection() {
        let c = Configuration::from_counts(vec![100, 0, 0], 0).unwrap();
        assert!(c.is_consensus());
        assert_eq!(c.consensus_opinion(), Some(Opinion::new(0)));
        let d = Configuration::from_counts(vec![99, 0, 0], 1).unwrap();
        assert!(!d.is_consensus());
        assert!(d.is_opinion_settled());
    }

    #[test]
    fn apply_move_preserves_population() {
        let mut c = Configuration::from_counts(vec![5, 5], 2).unwrap();
        c.apply_move(AgentState::decided(0), AgentState::Undecided)
            .unwrap();
        assert_eq!(c.supports(), &[4, 5]);
        assert_eq!(c.undecided(), 3);
        assert!(c.is_consistent());
        c.apply_move(AgentState::Undecided, AgentState::decided(1))
            .unwrap();
        assert_eq!(c.supports(), &[4, 6]);
        assert_eq!(c.undecided(), 2);
        assert!(c.is_consistent());
    }

    #[test]
    fn apply_move_rejects_underflow_and_bad_opinions() {
        let mut c = Configuration::from_counts(vec![1, 0], 0).unwrap();
        assert!(matches!(
            c.apply_move(AgentState::decided(1), AgentState::decided(0)),
            Err(ConfigError::NegativeCount { index: Some(1) })
        ));
        assert!(matches!(
            c.apply_move(AgentState::decided(5), AgentState::decided(0)),
            Err(ConfigError::OpinionOutOfRange { .. })
        ));
        assert!(matches!(
            c.apply_move(AgentState::Undecided, AgentState::decided(0)),
            Err(ConfigError::NegativeCount { index: None })
        ));
    }

    #[test]
    fn apply_move_same_state_is_noop() {
        let mut c = Configuration::from_counts(vec![3, 3], 1).unwrap();
        let before = c.clone();
        c.apply_move(AgentState::decided(0), AgentState::decided(0))
            .unwrap();
        assert_eq!(c, before);
    }

    #[test]
    fn states_round_trip() {
        let c = Configuration::from_counts(vec![3, 0, 2], 4).unwrap();
        let states = c.to_states();
        assert_eq!(states.len(), 9);
        let back = Configuration::from_states(&states, 3).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn monochromatic_distance_is_between_one_and_k() {
        let c = Configuration::uniform(999, 3).unwrap();
        let md = c.monochromatic_distance().unwrap();
        assert!((1.0..=3.0).contains(&md), "md = {md}");
        // Perfectly uniform (divisible) => md == k.
        let c = Configuration::uniform(900, 3).unwrap();
        assert!((c.monochromatic_distance().unwrap() - 3.0).abs() < 1e-9);
        // Fully concentrated => md == 1.
        let c = Configuration::from_counts(vec![900, 0, 0], 0).unwrap();
        assert!((c.monochromatic_distance().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn undecided_equilibrium_matches_formula() {
        let c = Configuration::uniform(1000, 2).unwrap();
        assert!((c.undecided_equilibrium() - 1000.0 / 3.0).abs() < 1e-9);
        let c = Configuration::uniform(1000, 10).unwrap();
        assert!((c.undecided_equilibrium() - 1000.0 * 9.0 / 19.0).abs() < 1e-9);
    }

    #[test]
    fn significant_opinions_respects_threshold() {
        // n = 10_000, sqrt(n ln n) ≈ 303.6
        let c = Configuration::from_counts(vec![5000, 4900, 100], 0).unwrap();
        let sig = c.significant_opinions(1.0);
        assert_eq!(sig, vec![Opinion::new(0), Opinion::new(1)]);
        assert!(!c.has_unique_significant_opinion(1.0));
        let d = Configuration::from_counts(vec![5000, 4000, 1000], 0).unwrap();
        assert!(d.has_unique_significant_opinion(1.0));
    }

    #[test]
    fn canonicalized_sorts_supports() {
        let c = Configuration::from_counts(vec![10, 30, 20], 5).unwrap();
        let (canon, order) = c.canonicalized();
        assert_eq!(canon.supports(), &[30, 20, 10]);
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(canon.undecided(), 5);
    }

    #[test]
    fn sum_of_squares_matches_manual() {
        let c = Configuration::from_counts(vec![3, 4], 0).unwrap();
        assert_eq!(c.sum_of_squares(), 25);
    }

    #[test]
    fn display_is_compact() {
        let c = Configuration::from_counts(vec![1, 2], 3).unwrap();
        assert_eq!(c.to_string(), "n=6 u=3 x=[1, 2]");
    }
}
