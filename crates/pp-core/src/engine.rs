//! The unified step-engine layer.
//!
//! Every count-based simulation in this workspace advances the same Markov
//! chain over [`Configuration`]s; what differs is *how* the chain is driven.
//! This module abstracts the driving strategy behind one trait so every
//! consumer (USD runs, baseline dynamics, gossip variants, experiments,
//! benches) can switch strategy without touching its own logic:
//!
//! * [`ExactEngine`] (= [`CountSimulator`]) — the canonical per-interaction
//!   Fenwick sampler: one category pair per step, `O(log k)` each.
//! * [`BatchedEngine`] — exact-in-distribution skip-ahead.  From the current
//!   counts it computes the probability `p` that an interaction changes the
//!   state, samples the geometrically distributed number of *null*
//!   interactions (pairs that provably leave the counts unchanged, e.g.
//!   decided-meets-same-opinion in the USD), jumps straight over them, and
//!   then draws the category pair of the next state-changing event from the
//!   exact conditional distribution.  One unit of work per *event* instead of
//!   per *interaction*: in the long null-dominated stretches of a run (the
//!   coupon-collector endgame of Phase 5, deep-bias regimes) this is orders
//!   of magnitude faster, and the induced distribution over recorded
//!   trajectories is the same as the exact engine's.
//! * [`crate::shard::ShardedEngine`] — the count vector split into shards,
//!   each advanced by its own batched engine in parallel, with cross-shard
//!   interactions reconciled by multinomial epoch allocation (tunably
//!   approximate; built for `n ≥ 10⁹`).
//! * `MeanFieldEngine` (in `usd-core`) — the deterministic ODE limit lifted
//!   behind the same trait for instant large-`n` approximation.
//!
//! Protocols opt into fast batching by overriding
//! [`OpinionProtocol::null_interaction_weight`] and
//! [`OpinionProtocol::productive_responder_weight`]; without the overrides
//! the batched engine falls back to exact `O(k²)`-per-event enumeration, so
//! the refactor is incremental per protocol.
//!
//! # Incremental row maintenance
//!
//! On top of the hooks, [`BatchedEngine`] maintains its row table *across*
//! events instead of recomputing it before each one.  The invariants:
//!
//! * Productivity is a pure function of the (responder, initiator) category
//!   pair ([`OpinionProtocol::productivity_matrix`]), so each row factors as
//!   `row_cat = c_cat · S_cat` with `S_cat` the count-weighted sum of
//!   productive initiator categories.
//! * A state-changing event moves exactly one agent `from → to`; every
//!   `S_cat` shifts by `[matrix[cat][to]] − [matrix[cat][from]]`, and the
//!   table is re-derived as `c_cat · S_cat` — `O(k)` exact integer adds per
//!   event, no protocol calls.
//! * All weights are exact `u128` integers, so the patched table is
//!   **bit-identical** to a full rebuild: trajectories do not depend on
//!   whether maintenance was on.
//!
//! The engine falls back to a full rebuild when the protocol opts out of the
//! matrix, when maintenance is disabled via
//! [`BatchedEngine::set_incremental_rows`] (the benchmark baseline), and
//! after external count edits (the shard reconciler's cross-shard updates
//! invalidate the maintained state).  Patch/rebuild counts are reported
//! through [`StepEngine::maintenance`] into [`RunResult`].  Debug builds
//! cross-check a sample (every 64th refresh) of tables against direct
//! enumeration; the `exhaustive-checks` feature checks every refresh.
//!
//! # Example
//!
//! ```
//! use pp_core::engine::{BatchedEngine, StepEngine};
//! use pp_core::prelude::*;
//!
//! struct TinyUsd;
//! impl OpinionProtocol for TinyUsd {
//!     fn num_opinions(&self) -> usize { 2 }
//!     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
//!         match (r, i) {
//!             (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
//!             (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
//!             _ => r,
//!         }
//!     }
//! }
//!
//! let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
//! let mut engine = BatchedEngine::new(TinyUsd, config, SimSeed::from_u64(7));
//! let result = engine.run_engine(StopCondition::consensus().or_max_interactions(10_000_000));
//! assert!(result.reached_consensus());
//! ```

use crate::checkpoint::{
    Checkpoint, EngineCheckpoint, EngineSnapshot, EngineState, ReplicaCheckpoint,
};
use crate::config::Configuration;
use crate::count_sim::CountSimulator;
use crate::error::PpError;
use crate::opinion::AgentState;
use crate::protocol::OpinionProtocol;
use crate::recorder::Recorder;
use crate::rng::SimSeed;
use crate::run::{MaintenanceStats, RunOutcome, RunResult};
use crate::stopping::StopCondition;
use crate::telemetry::MetricsSnapshot;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which stepping backend a consumer wants.
///
/// `Exact` and `Batched` induce the same distribution over trajectories;
/// `MeanField` replaces the stochastic process by its deterministic fluid
/// limit (only available for protocols that provide one, currently the USD).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineChoice {
    /// Per-interaction Fenwick sampling (the ground-truth backend).
    #[default]
    Exact,
    /// Geometric skip-ahead over null interactions plus conditional event
    /// draws; exact in distribution, much faster when nulls dominate.
    Batched,
    /// Parallel per-shard batched stepping with multinomial reconciliation
    /// epochs (documented-approximate; see [`crate::shard`]).
    Sharded,
    /// The deterministic ODE limit (approximation; `usd-core` only).
    MeanField,
    /// Adaptive multi-fidelity switching between the mean-field ODE and the
    /// batched stochastic backend under an online fluctuation detector
    /// (approximation; `usd-core` only — see [`crate::hybrid`]).
    Hybrid,
}

impl EngineChoice {
    /// The stable identifier used in reports and on the command line.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineChoice::Exact => "exact",
            EngineChoice::Batched => "batched",
            EngineChoice::Sharded => "sharded",
            EngineChoice::MeanField => "mean-field",
            EngineChoice::Hybrid => "hybrid",
        }
    }

    /// All selectable backends.
    pub const ALL: [EngineChoice; 5] = [
        EngineChoice::Exact,
        EngineChoice::Batched,
        EngineChoice::Sharded,
        EngineChoice::MeanField,
        EngineChoice::Hybrid,
    ];
}

impl fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(EngineChoice::Exact),
            "batched" => Ok(EngineChoice::Batched),
            "sharded" => Ok(EngineChoice::Sharded),
            "mean-field" | "meanfield" => Ok(EngineChoice::MeanField),
            "hybrid" => Ok(EngineChoice::Hybrid),
            other => Err(format!(
                "unknown engine {other:?} (expected exact, batched, sharded, mean-field, or \
                 hybrid)"
            )),
        }
    }
}

/// What [`StepEngine::advance`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// A state-changing event occurred; the configuration and interaction
    /// counter reflect it.
    Event,
    /// The interaction limit was reached before the next state change; the
    /// counter equals the limit and the configuration is unchanged.
    LimitReached,
    /// No state change is possible from the current configuration, ever.
    /// The counter was advanced to the limit (when one is finite).
    Absorbed,
}

/// A strategy for advancing a count-vector Markov chain.
///
/// The narrow waist is [`advance`](StepEngine::advance): move the simulation
/// forward to the *next state-changing event*, but never past `limit` total
/// interactions.  The provided `run_engine*` drivers build every stopping
/// behaviour the workspace needs on top of it, so exact, batched and
/// mean-field backends stay interchangeable in every consumer.
pub trait StepEngine {
    /// The current configuration.
    fn configuration(&self) -> &Configuration;

    /// Interactions elapsed so far (null interactions included).
    fn interactions(&self) -> u64;

    /// The stable backend identifier ("exact", "batched", "mean-field").
    fn engine_name(&self) -> &'static str;

    /// The name of the interaction scheduler this engine realizes, recorded
    /// into every [`RunResult`] the provided drivers produce.
    fn scheduler_name(&self) -> &'static str {
        UNIFORM_PAIR_SCHEDULER_NAME
    }

    /// The number of unproductive draws this engine has discarded in
    /// rejection-sampling fallbacks so far, if it uses any (see
    /// `SamplingDynamics::sample_productive_move` in `consensus-dynamics`).
    /// Engines without a rejection path report `None`; the provided drivers
    /// record a `Some` value into the [`RunResult`].  Every shipped sampling
    /// dynamic now provides a closed-form conditional sampler, so a non-zero
    /// value only ever comes from a third-party dynamic that opted into
    /// skip-ahead without one — the conformance suite pins the shipped
    /// dynamics to exactly `Some(0)`.
    fn rejection_misses(&self) -> Option<u64> {
        None
    }

    /// How this engine kept its sampling laws in sync with the counts so far
    /// (tables patched in `O(delta)` vs rebuilt from scratch), if it
    /// maintains any.  Engines without a maintained law report `None`; the
    /// provided drivers record a `Some` value into the [`RunResult`].
    fn maintenance(&self) -> Option<MaintenanceStats> {
        None
    }

    /// The engine's unified observability surface: one flat
    /// [`MetricsSnapshot`] covering everything the bespoke accessors
    /// ([`rejection_misses`](StepEngine::rejection_misses),
    /// [`maintenance`](StepEngine::maintenance), the ensemble's shared-table
    /// counters) expose, under the canonical registry names
    /// (`engine.rejection_misses`, `maintenance.rows_patched`, …).  The
    /// provided drivers record it into every [`RunResult`]; engines with
    /// richer instrumentation (batched skip/draw counts, shard epochs)
    /// override the default, which assembles the snapshot from the legacy
    /// accessors.
    fn telemetry(&self) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::new();
        if let Some(misses) = self.rejection_misses() {
            snap.add_counter("engine.rejection_misses", misses);
        }
        if let Some(stats) = self.maintenance() {
            snap.absorb_maintenance(&stats);
        }
        (!snap.is_empty()).then_some(snap)
    }

    /// Advances to the next state-changing event, or to `limit` interactions,
    /// whichever comes first.
    fn advance(&mut self, limit: u64) -> Advance;

    /// Runs until the stop condition is met, recording nothing.
    fn run_engine(&mut self, stop: StopCondition) -> RunResult
    where
        Self: Sized,
    {
        self.run_engine_recorded(stop, &mut crate::recorder::NullRecorder)
    }

    /// Runs until the stop condition is met, feeding the initial and every
    /// changed configuration to the recorder (the same observable sequence
    /// the exact per-interaction loop produces).
    ///
    /// # Panics
    ///
    /// Panics if the stop condition is unbounded, or if the chain reaches an
    /// absorbing configuration that cannot meet a budget-less stop condition
    /// (the exact loop would spin forever; the engine layer fails loudly).
    fn run_engine_recorded<R: Recorder>(
        &mut self,
        stop: StopCondition,
        recorder: &mut R,
    ) -> RunResult
    where
        Self: Sized,
    {
        assert!(
            stop.is_bounded(),
            "stop condition can never terminate the run"
        );
        recorder.record(self.interactions(), self.configuration());
        loop {
            if stop.goal_met(self.configuration()) {
                let outcome = if self.configuration().is_consensus() {
                    RunOutcome::Consensus
                } else {
                    RunOutcome::OpinionSettled
                };
                return RunResult::new(outcome, self.interactions(), self.configuration().clone())
                    .with_scheduler(self.scheduler_name())
                    .with_rejection_misses(self.rejection_misses())
                    .with_maintenance(self.maintenance())
                    .with_telemetry(self.telemetry());
            }
            let limit = match stop.max_interactions() {
                Some(budget) if self.interactions() >= budget => {
                    return RunResult::new(
                        RunOutcome::BudgetExhausted,
                        self.interactions(),
                        self.configuration().clone(),
                    )
                    .with_scheduler(self.scheduler_name())
                    .with_rejection_misses(self.rejection_misses())
                    .with_maintenance(self.maintenance())
                    .with_telemetry(self.telemetry());
                }
                Some(budget) => budget,
                None => u64::MAX,
            };
            match self.advance(limit) {
                Advance::Event => recorder.record(self.interactions(), self.configuration()),
                Advance::LimitReached => {}
                Advance::Absorbed => {
                    assert!(
                        stop.max_interactions().is_some() || stop.goal_met(self.configuration()),
                        "absorbing configuration {} can never meet the stop condition",
                        self.configuration()
                    );
                }
            }
        }
    }
}

/// The scheduler every count-based engine realizes implicitly: both category
/// draws correspond to independent uniform agent indices.
pub const UNIFORM_PAIR_SCHEDULER_NAME: &str = "uniform ordered pairs (self-interactions allowed)";

/// The canonical per-interaction backend, as a named alias of
/// [`CountSimulator`].
pub type ExactEngine<P> = CountSimulator<P>;

impl<P: OpinionProtocol> StepEngine for CountSimulator<P> {
    fn configuration(&self) -> &Configuration {
        CountSimulator::configuration(self)
    }

    fn interactions(&self) -> u64 {
        CountSimulator::interactions(self)
    }

    fn engine_name(&self) -> &'static str {
        "exact"
    }

    fn advance(&mut self, limit: u64) -> Advance {
        // Periodic absorption check: every `CHECK_MASK + 1` consecutive null
        // steps, test whether any state change is still possible.  Amortized
        // free on live configurations, and it upholds the trait contract —
        // an absorbing configuration yields `Absorbed` instead of spinning
        // until the heat death of the budget (or forever without one).
        const CHECK_MASK: u64 = (1 << 20) - 1;
        let mut nulls = 0u64;
        while CountSimulator::interactions(self) < limit {
            if self.step() {
                return Advance::Event;
            }
            nulls += 1;
            if nulls & CHECK_MASK == 0 && self.productive_probability() == 0.0 {
                self.skip_to(limit);
                return Advance::Absorbed;
            }
        }
        Advance::LimitReached
    }
}

/// Draws a uniform `u128` below `bound` (exactly uniform in both paths).
/// Count-pair weights exceed `u64` only for populations beyond ~4·10⁹, so
/// the common case takes a cheap 64-bit Lemire widening-multiply; larger
/// bounds fall back to 128-bit rejection.
///
/// # Panics
///
/// Panics in debug builds if `bound == 0`.
pub fn uniform_u128_below<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if let Ok(b) = u64::try_from(bound) {
        // Lemire's multiply-shift with rejection of the biased overhang.
        let mut m = u128::from(rng.next_u64()) * u128::from(b);
        if (m as u64) < b {
            let t = b.wrapping_neg() % b;
            while (m as u64) < t {
                m = u128::from(rng.next_u64()) * u128::from(b);
            }
        }
        return m >> 64;
    }
    // 2^128 mod bound: values below this threshold are the biased overhang.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if x >= threshold {
            return x % bound;
        }
    }
}

/// Samples the geometrically distributed number of null interactions
/// preceding the next state-changing event, given per-interaction event
/// probability `p`.  Returns `None` when the skip provably overshoots
/// `max_skip` — memorylessness makes re-sampling on a later call exact, so
/// callers can treat `None` as "the limit arrives first".
///
/// Shared by every skip-ahead engine ([`BatchedEngine`], the sequential
/// sampler in `consensus-dynamics`), so the edge-case handling — `p ≥ 1`,
/// `p` rounding toward 0, overshoot — lives in exactly one place.
pub fn geometric_skip<R: Rng + ?Sized>(rng: &mut R, p: f64, max_skip: u64) -> Option<u64> {
    debug_assert!(p > 0.0, "event probability must be positive");
    if p >= 1.0 {
        return Some(0);
    }
    // Inversion: floor(ln U / ln(1-p)), U uniform in (0, 1).
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let skip = u.ln() / (-p).ln_1p();
    if !skip.is_finite() || skip >= max_skip as f64 {
        None
    } else {
        Some(skip as u64)
    }
}

/// Exact-in-distribution skip-ahead engine.
///
/// Instead of simulating interactions one by one, the engine works on the
/// *embedded jump chain* of state-changing events: from the current counts it
/// computes the total weight `W` of productive ordered category pairs,
/// samples the geometric number of null interactions preceding the next
/// event (success probability `W/n²`), and then draws the event's category
/// pair with probability proportional to `c_r · c_i` restricted to
/// productive pairs.  Both draws use the exact conditional distributions of
/// the underlying chain, so trajectories (configurations indexed by
/// interaction count) have the same law as under [`ExactEngine`] — this is
/// verified statistically in the test suite.
///
/// Cost: `O(k)` exact integer adds per state-changing event while the
/// incremental delta rule holds (see the module docs) — with *no* protocol
/// calls on the hot path; `O(k)` hook calls or `O(k²)` enumeration per
/// rebuild otherwise — but never proportional to the number of skipped null
/// interactions.
#[derive(Debug)]
pub struct BatchedEngine<P> {
    protocol: P,
    config: Configuration,
    interactions: u64,
    rng: SmallRng,
    /// Productive weight per responder category (`row_cat = c_cat · S_cat`),
    /// maintained across events while `rows_valid`.
    rows: Vec<u128>,
    /// The per-category productive initiator sums `S_cat` behind `rows`;
    /// meaningful only while `rows_valid` and `matrix` is present.
    sums: Vec<u128>,
    /// Cached `Σ rows`, meaningful only while `rows_valid`.
    total: u128,
    /// Whether `rows`/`sums`/`total` describe the current counts.
    rows_valid: bool,
    /// Flat `(k+1)²` productivity table (`None`: protocol opted out of the
    /// delta rule, every event rebuilds).
    matrix: Option<Vec<bool>>,
    /// Runtime switch for the delta rule (off = the benchmark baseline).
    incremental: bool,
    /// Refreshes served so far, for the sampled debug cross-check.
    refreshes: u64,
    stats: MaintenanceStats,
    /// State-changing events drawn so far (standalone and lockstep paths).
    events_drawn: u64,
    /// Null interactions jumped over by geometric skips (and limit
    /// forwarding) so far.
    nulls_skipped: u64,
}

impl<P: OpinionProtocol> BatchedEngine<P> {
    /// Creates a batched engine for `protocol` starting from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol's `num_opinions()` differs from the
    /// configuration's.
    #[must_use]
    pub fn new(protocol: P, config: Configuration, seed: SimSeed) -> Self {
        Self::try_new(protocol, config, seed)
            .expect("protocol/configuration opinion count mismatch")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] if the protocol and the
    /// configuration disagree on `k`.
    pub fn try_new(protocol: P, config: Configuration, seed: SimSeed) -> Result<Self, PpError> {
        if protocol.num_opinions() != config.num_opinions() {
            return Err(PpError::OpinionCountMismatch {
                protocol: protocol.num_opinions(),
                configuration: config.num_opinions(),
            });
        }
        let k = config.num_opinions();
        let matrix = protocol.productivity_matrix();
        if let Some(m) = &matrix {
            assert_eq!(
                m.len(),
                (k + 1) * (k + 1),
                "productivity_matrix must be a flat (k+1)² table"
            );
        }
        Ok(BatchedEngine {
            protocol,
            config,
            interactions: 0,
            rng: seed.rng(),
            rows: vec![0; k + 1],
            sums: vec![0; k + 1],
            total: 0,
            rows_valid: false,
            matrix,
            incremental: true,
            refreshes: 0,
            stats: MaintenanceStats::default(),
            events_drawn: 0,
            nulls_skipped: 0,
        })
    }

    /// Enables or disables incremental row maintenance at runtime.  Disabled,
    /// the engine rebuilds the full row table before every event — exactly
    /// the pre-incremental behaviour, used as the measured baseline by
    /// `engine_microbench`.  Trajectories are bit-identical either way.
    pub fn set_incremental_rows(&mut self, enabled: bool) {
        self.incremental = enabled;
        if !enabled {
            self.rows_valid = false;
        }
    }

    /// The engine's patch/rebuild counters so far.
    #[must_use]
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// The protocol driving this engine.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Consumes the engine and returns the final configuration.
    #[must_use]
    pub fn into_configuration(self) -> Configuration {
        self.config
    }

    /// Simultaneous access to the protocol and the mutable configuration —
    /// the shard reconciler applies cross-shard responder updates directly to
    /// a shard's counts (without advancing the local interaction counter).
    /// Handing out the mutable configuration invalidates the maintained row
    /// table: the next event rebuilds from the edited counts.
    pub(crate) fn parts_mut(&mut self) -> (&P, &mut Configuration) {
        self.rows_valid = false;
        (&self.protocol, &mut self.config)
    }

    /// Productive weight of responder category `cat` by direct enumeration:
    /// `c_cat · Σ_{i : productive} c_i`.
    fn enumerated_row(&self, cat: usize) -> u128 {
        // The single-population weight is the cross-shard weight with the
        // responder and initiator sides drawn from the same configuration;
        // sharing the enumeration keeps this engine and the shard
        // reconciler exactly in sync.
        crate::shard::reconcile::productive_row(&self.protocol, &self.config, &self.config, cat)
    }

    /// Fills `rows` with the per-category productive weights for the current
    /// counts and returns their sum.  A pure function of the configuration —
    /// the standalone `advance` fills its scratch buffer with it, and the
    /// ensemble layer fills cache-shared [`crate::ensemble::RowTable`]s, so
    /// both paths see bit-identical weights.
    pub(crate) fn fill_rows(&self, rows: &mut Vec<u128>) -> u128 {
        let k = self.config.num_opinions();
        rows.clear();
        rows.resize(k + 1, 0);
        let mut total: u128 = 0;
        for (cat, row_slot) in rows.iter_mut().enumerate() {
            let row = self
                .protocol
                .productive_responder_weight(&self.config, cat)
                .unwrap_or_else(|| self.enumerated_row(cat));
            *row_slot = row;
            total += row;
        }
        #[cfg(feature = "exhaustive-checks")]
        self.cross_check_rows(rows, total);
        total
    }

    /// Asserts `rows`/`total` for the current counts against direct
    /// enumeration — the ground truth for both the closed-form hooks and the
    /// incremental patch.  `O(k²)`: debug builds run it on a sample of
    /// refreshes (every 64th); the `exhaustive-checks` feature on every one.
    #[cfg(any(debug_assertions, feature = "exhaustive-checks"))]
    fn cross_check_rows(&self, rows: &[u128], total: u128) {
        if let Some(null) = self.protocol.null_interaction_weight(&self.config) {
            let n = u128::from(self.config.population());
            assert_eq!(
                total + null,
                n * n,
                "null_interaction_weight override disagrees with enumeration at {}",
                self.config
            );
        }
        let mut enumerated_total = 0u128;
        for (cat, &row) in rows.iter().enumerate() {
            let enumerated = self.enumerated_row(cat);
            assert_eq!(
                row, enumerated,
                "row weight disagrees with enumeration for category {cat} at {}",
                self.config
            );
            enumerated_total += enumerated;
        }
        assert_eq!(
            total, enumerated_total,
            "row total disagrees with enumeration at {}",
            self.config
        );
    }

    /// Whether this refresh is one of the sampled debug cross-checks.
    #[cfg(any(debug_assertions, feature = "exhaustive-checks"))]
    fn should_cross_check(&self) -> bool {
        cfg!(feature = "exhaustive-checks") || self.refreshes.is_multiple_of(64)
    }

    /// Rebuilds `rows`, `sums` and `total` from the full counts.
    fn rebuild_rows(&mut self) -> u128 {
        let mut rows = std::mem::take(&mut self.rows);
        let total = self.fill_rows(&mut rows);
        self.rows = rows;
        if let Some(matrix) = &self.matrix {
            let k = self.config.num_opinions();
            for (cat, sum_slot) in self.sums.iter_mut().enumerate() {
                let mut s = 0u128;
                for i in 0..=k {
                    if matrix[cat * (k + 1) + i] {
                        s += u128::from(self.config.category_count(i));
                    }
                }
                *sum_slot = s;
            }
        }
        self.total = total;
        self.rows_valid = true;
        self.refreshes += 1;
        self.stats.rows_rebuilt += 1;
        #[cfg(any(debug_assertions, feature = "exhaustive-checks"))]
        if self.should_cross_check() {
            let rows = std::mem::take(&mut self.rows);
            self.cross_check_rows(&rows, total);
            self.rows = rows;
        }
        total
    }

    /// The row total for the current counts, from the maintained table when
    /// it is valid and from a full rebuild otherwise.
    fn ensure_rows(&mut self) -> u128 {
        if self.rows_valid {
            self.total
        } else {
            self.rebuild_rows()
        }
    }

    /// Patches `sums`, `rows` and `total` across an applied `from → to` move
    /// (the delta rule; see the module docs), or invalidates the table when
    /// the protocol opted out or maintenance is disabled.
    fn apply_row_delta(&mut self, from: AgentState, to: AgentState) {
        let Some(matrix) = &self.matrix else {
            self.rows_valid = false;
            return;
        };
        if !self.incremental {
            self.rows_valid = false;
            return;
        }
        let k = self.config.num_opinions();
        let from_cat = from.category(k);
        let to_cat = to.category(k);
        let mut total = 0u128;
        for cat in 0..=k {
            let base = cat * (k + 1);
            let mut s = self.sums[cat];
            if matrix[base + to_cat] {
                s += 1;
            }
            if matrix[base + from_cat] {
                debug_assert!(s > 0, "productive initiator sum underflow");
                s -= 1;
            }
            self.sums[cat] = s;
            let row = u128::from(self.config.category_count(cat)) * s;
            self.rows[cat] = row;
            total += row;
        }
        self.total = total;
        self.rows_valid = true;
        self.refreshes += 1;
        self.stats.rows_patched += 1;
        #[cfg(any(debug_assertions, feature = "exhaustive-checks"))]
        if self.should_cross_check() {
            let rows = std::mem::take(&mut self.rows);
            self.cross_check_rows(&rows, total);
            self.rows = rows;
        }
    }

    /// A freshly allocated row table for the current counts, as
    /// `(rows, total)` (the ensemble layer caches these per counts key).
    pub(crate) fn enumerate_rows(&self) -> (Vec<u128>, u128) {
        let mut rows = Vec::new();
        let total = self.fill_rows(&mut rows);
        (rows, total)
    }

    /// The protocol's productivity table, when it opted into the delta rule.
    pub(crate) fn productivity_matrix_ref(&self) -> Option<&[bool]> {
        self.matrix.as_deref()
    }

    /// Freshly computed per-category productive initiator sums `S_cat` for
    /// the current counts (empty when the protocol opted out of the delta
    /// rule) — the payload that lets the ensemble layer derive a neighbor's
    /// row table by replaying a count delta.
    pub(crate) fn initiator_sums(&self) -> Vec<u128> {
        let Some(matrix) = &self.matrix else {
            return Vec::new();
        };
        let k = self.config.num_opinions();
        (0..=k)
            .map(|cat| {
                let mut s = 0u128;
                for i in 0..=k {
                    if matrix[cat * (k + 1) + i] {
                        s += u128::from(self.config.category_count(i));
                    }
                }
                s
            })
            .collect()
    }

    /// The engine's RNG (the ensemble layer draws skips from it so lockstep
    /// replicas consume randomness exactly as standalone runs do).
    pub(crate) fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Records `skip` null interactions plus the event interaction itself.
    pub(crate) fn record_event_interactions(&mut self, skip: u64) {
        self.interactions += skip + 1;
        self.nulls_skipped += skip;
        self.events_drawn += 1;
    }

    /// Forwards the interaction counter to `limit` without an event.
    pub(crate) fn forward_to(&mut self, limit: u64) {
        self.nulls_skipped += limit.saturating_sub(self.interactions);
        self.interactions = limit;
    }

    /// Draws the category pair of the next state-changing event from the
    /// given row table and applies it — the shared tail of the standalone
    /// and lockstep advance paths.  One draw picks the whole event: a unit
    /// below `total` decomposes as (responder category, responder identity
    /// within the category, initiator unit); the row scan finds the
    /// category, and because `row = c_r · S_r` factors into independent
    /// responder-identity and initiator-weight parts, the remainder modulo
    /// `S_r` is an exact uniform draw of the initiator unit.
    ///
    /// Returns the applied `(from, to)` responder move and invalidates the
    /// maintained row table (callers on the incremental path re-validate it
    /// by patching).
    pub(crate) fn draw_and_apply_event(
        &mut self,
        rows: &[u128],
        total: u128,
    ) -> (AgentState, AgentState) {
        let k = self.config.num_opinions();
        let mut target = uniform_u128_below(&mut self.rng, total);
        let mut responder_cat = k;
        for (cat, &row) in rows.iter().enumerate() {
            if target < row {
                responder_cat = cat;
                break;
            }
            target -= row;
        }
        let responder = AgentState::from_category(responder_cat, k);
        let c_responder = u128::from(self.config.category_count(responder_cat));
        debug_assert!(c_responder > 0);
        // 64-bit fast paths: the weights fit u64 for any population ≤ ~4·10⁹,
        // avoiding the 128-bit division intrinsics on the hot path.
        let row = rows[responder_cat];
        let initiator_total = match (u64::try_from(row), u64::try_from(c_responder)) {
            (Ok(r), Ok(c)) => u128::from(r / c),
            _ => row / c_responder,
        };
        let mut itarget = match (u64::try_from(target), u64::try_from(initiator_total)) {
            (Ok(t), Ok(s)) => u128::from(t % s),
            _ => target % initiator_total,
        };

        // Resolve the initiator unit to a category, restricted to categories
        // whose interaction with this responder is productive.
        let mut initiator = AgentState::Undecided;
        for i in 0..=k {
            let c_i = self.config.category_count(i);
            if c_i == 0 {
                continue;
            }
            let candidate = AgentState::from_category(i, k);
            if self.protocol.respond(responder, candidate) == responder {
                continue;
            }
            if itarget < u128::from(c_i) {
                initiator = candidate;
                break;
            }
            itarget -= u128::from(c_i);
        }

        let new_responder = self.protocol.respond(responder, initiator);
        debug_assert_ne!(new_responder, responder, "sampled event must be productive");
        self.config
            .apply_move(responder, new_responder)
            .expect("transition produced an inconsistent move");
        self.rows_valid = false;
        (responder, new_responder)
    }

    /// Captures this engine's resumable state.  The maintained row table is
    /// *not* captured: it is a pure function of the counts and the first
    /// event after restore rebuilds it bit-identically (showing up as one
    /// extra `rows_rebuilt` in the restored run's maintenance counters).
    /// Call between `advance` calls — see [`crate::checkpoint`].
    #[must_use]
    pub fn capture_state(&self) -> EngineSnapshot {
        EngineSnapshot {
            supports: self.config.supports().to_vec(),
            undecided: self.config.undecided(),
            interactions: self.interactions,
            rng: self.rng.state(),
            counters: vec![
                ("events_drawn".to_string(), self.events_drawn),
                ("nulls_skipped".to_string(), self.nulls_skipped),
                ("refreshes".to_string(), self.refreshes),
                ("rows_patched".to_string(), self.stats.rows_patched),
                ("rows_rebuilt".to_string(), self.stats.rows_rebuilt),
                ("law_patches".to_string(), self.stats.law_patches),
                ("law_rebuilds".to_string(), self.stats.law_rebuilds),
                (
                    "law_fallback_rebuilds".to_string(),
                    self.stats.law_fallback_rebuilds,
                ),
                ("incremental".to_string(), u64::from(self.incremental)),
            ],
        }
    }

    /// Rebuilds an engine from a checkpoint captured by
    /// [`BatchedEngine::capture_state`].  The restored engine walks the
    /// identical trajectory tail the interrupted run would have.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::Checkpoint`] when the checkpoint holds a
    /// different engine kind or invalid counts, and
    /// [`PpError::OpinionCountMismatch`] when the protocol disagrees with
    /// the captured counts on `k`.
    pub fn restore(protocol: P, checkpoint: &Checkpoint) -> Result<Self, PpError> {
        let snapshot = checkpoint.expect_single("batched")?;
        Self::restore_snapshot(protocol, snapshot)
    }

    /// Snapshot-level counterpart of [`BatchedEngine::restore`].
    ///
    /// # Errors
    ///
    /// Same as [`BatchedEngine::restore`], minus the kind check.
    pub fn restore_snapshot(protocol: P, snapshot: &EngineSnapshot) -> Result<Self, PpError> {
        let config = snapshot.configuration()?;
        let mut engine = Self::try_new(protocol, config, SimSeed::from_u64(0))?;
        engine.rng = SmallRng::from_state(snapshot.rng);
        engine.interactions = snapshot.interactions;
        engine.incremental = snapshot.counter("incremental") != Some(0);
        engine.refreshes = snapshot.counter("refreshes").unwrap_or(0);
        engine.stats = MaintenanceStats {
            rows_patched: snapshot.counter("rows_patched").unwrap_or(0),
            rows_rebuilt: snapshot.counter("rows_rebuilt").unwrap_or(0),
            law_patches: snapshot.counter("law_patches").unwrap_or(0),
            law_rebuilds: snapshot.counter("law_rebuilds").unwrap_or(0),
            law_fallback_rebuilds: snapshot.counter("law_fallback_rebuilds").unwrap_or(0),
        };
        engine.events_drawn = snapshot.counter("events_drawn").unwrap_or(0);
        engine.nulls_skipped = snapshot.counter("nulls_skipped").unwrap_or(0);
        Ok(engine)
    }

    /// The probability that the next interaction changes the state, computed
    /// from the current counts (used by tests and diagnostics).
    #[must_use]
    pub fn productive_probability(&mut self) -> f64 {
        let n = self.config.population() as f64;
        let total = self.ensure_rows();
        total as f64 / (n * n)
    }
}

impl<P: OpinionProtocol> StepEngine for BatchedEngine<P> {
    fn configuration(&self) -> &Configuration {
        &self.config
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn engine_name(&self) -> &'static str {
        "batched"
    }

    fn maintenance(&self) -> Option<MaintenanceStats> {
        Some(self.stats)
    }

    fn telemetry(&self) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::new();
        snap.add_counter("batched.events_drawn", self.events_drawn);
        snap.add_counter("batched.nulls_skipped", self.nulls_skipped);
        snap.add_counter("batched.table_refreshes", self.refreshes);
        snap.absorb_maintenance(&self.stats);
        Some(snap)
    }

    fn advance(&mut self, limit: u64) -> Advance {
        if self.interactions >= limit {
            return Advance::LimitReached;
        }
        let total = self.ensure_rows();
        if total == 0 {
            self.forward_to(limit);
            return Advance::Absorbed;
        }
        let n = self.config.population() as f64;
        let p = total as f64 / (n * n);

        // How many interactions may still elapse before the limit; the event
        // itself occupies one, so the skip must stay strictly below this.
        let headroom = limit - self.interactions;
        let Some(skip) = geometric_skip(&mut self.rng, p, headroom) else {
            self.forward_to(limit);
            return Advance::LimitReached;
        };
        self.record_event_interactions(skip);
        let rows = std::mem::take(&mut self.rows);
        let (from, to) = self.draw_and_apply_event(&rows, total);
        self.rows = rows;
        self.apply_row_delta(from, to);
        Advance::Event
    }
}

impl<P: OpinionProtocol> EngineCheckpoint for BatchedEngine<P> {
    fn capture_engine(&self) -> EngineState {
        EngineState::Batched(self.capture_state())
    }
}

impl<P: OpinionProtocol + Clone> ReplicaCheckpoint for BatchedEngine<P> {
    type Context = P;

    fn capture_replica(&self) -> EngineSnapshot {
        self.capture_state()
    }

    fn restore_replica(ctx: &P, snapshot: &EngineSnapshot) -> Result<Self, PpError> {
        Self::restore_snapshot(ctx.clone(), snapshot)
    }
}

/// A runtime-selectable count-based engine (exact or batched) over one
/// protocol — the concrete type consumers hold when the backend is a run
/// parameter rather than a compile-time choice.
#[derive(Debug)]
pub enum CountEngine<P> {
    /// Per-interaction stepping.
    Exact(ExactEngine<P>),
    /// Skip-ahead stepping.
    Batched(BatchedEngine<P>),
}

impl<P: OpinionProtocol> CountEngine<P> {
    /// Creates the engine selected by `choice`.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] on a protocol/configuration
    /// mismatch and [`PpError::UnsupportedEngine`] for
    /// [`EngineChoice::MeanField`] and [`EngineChoice::Hybrid`] (the ODE
    /// limit and the fidelity controller built on it are protocol-specific;
    /// see `usd-core`) and [`EngineChoice::Sharded`] (the sharded engine
    /// needs a [`crate::shard::ShardPlan`] and `Clone + Send` protocols —
    /// construct [`crate::shard::ShardedEngine`] directly).
    pub fn try_new(
        protocol: P,
        config: Configuration,
        seed: SimSeed,
        choice: EngineChoice,
    ) -> Result<Self, PpError> {
        match choice {
            EngineChoice::Exact => Ok(CountEngine::Exact(CountSimulator::try_new(
                protocol, config, seed,
            )?)),
            EngineChoice::Batched => Ok(CountEngine::Batched(BatchedEngine::try_new(
                protocol, config, seed,
            )?)),
            EngineChoice::Sharded => Err(PpError::UnsupportedEngine {
                requested: "sharded",
            }),
            EngineChoice::MeanField => Err(PpError::UnsupportedEngine {
                requested: "mean-field",
            }),
            EngineChoice::Hybrid => Err(PpError::UnsupportedEngine {
                requested: "hybrid",
            }),
        }
    }

    /// Panicking counterpart of [`CountEngine::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on mismatch or unsupported choice.
    #[must_use]
    pub fn new(protocol: P, config: Configuration, seed: SimSeed, choice: EngineChoice) -> Self {
        Self::try_new(protocol, config, seed, choice).expect("failed to construct engine")
    }
}

impl<P: OpinionProtocol> StepEngine for CountEngine<P> {
    fn configuration(&self) -> &Configuration {
        match self {
            CountEngine::Exact(e) => StepEngine::configuration(e),
            CountEngine::Batched(e) => StepEngine::configuration(e),
        }
    }

    fn interactions(&self) -> u64 {
        match self {
            CountEngine::Exact(e) => StepEngine::interactions(e),
            CountEngine::Batched(e) => StepEngine::interactions(e),
        }
    }

    fn engine_name(&self) -> &'static str {
        match self {
            CountEngine::Exact(e) => e.engine_name(),
            CountEngine::Batched(e) => e.engine_name(),
        }
    }

    fn maintenance(&self) -> Option<MaintenanceStats> {
        match self {
            CountEngine::Exact(e) => e.maintenance(),
            CountEngine::Batched(e) => e.maintenance(),
        }
    }

    fn rejection_misses(&self) -> Option<u64> {
        match self {
            CountEngine::Exact(e) => e.rejection_misses(),
            CountEngine::Batched(e) => e.rejection_misses(),
        }
    }

    fn telemetry(&self) -> Option<MetricsSnapshot> {
        match self {
            CountEngine::Exact(e) => e.telemetry(),
            CountEngine::Batched(e) => e.telemetry(),
        }
    }

    fn advance(&mut self, limit: u64) -> Advance {
        match self {
            CountEngine::Exact(e) => e.advance(limit),
            CountEngine::Batched(e) => e.advance(limit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 2-opinion USD without batching hooks (exercises the enumeration
    /// fallback).
    #[derive(Debug)]
    struct Usd2Plain;

    impl OpinionProtocol for Usd2Plain {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
        fn name(&self) -> &str {
            "usd-2"
        }
    }

    /// The same protocol with closed-form batching hooks (exercises the
    /// debug cross-check against enumeration).
    #[derive(Debug)]
    struct Usd2Hooked;

    impl OpinionProtocol for Usd2Hooked {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            Usd2Plain.respond(r, i)
        }
        fn name(&self) -> &str {
            "usd-2-hooked"
        }
        fn null_interaction_weight(&self, config: &Configuration) -> Option<u128> {
            let n = u128::from(config.population());
            let d = u128::from(config.decided());
            let u = u128::from(config.undecided());
            let discordant = d * d - config.sum_of_squares();
            Some(n * n - discordant - u * d)
        }
        fn productive_responder_weight(&self, config: &Configuration, cat: usize) -> Option<u128> {
            let d = u128::from(config.decided());
            Some(if cat == config.num_opinions() {
                u128::from(config.undecided()) * d
            } else {
                let x = u128::from(config.support(cat));
                x * (d - x)
            })
        }
    }

    /// `Usd2Plain` with the delta rule disabled (exercises the
    /// rebuild-every-event fallback for protocols that opt out).
    #[derive(Debug)]
    struct Usd2NoDelta;

    impl OpinionProtocol for Usd2NoDelta {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            Usd2Plain.respond(r, i)
        }
        fn productivity_matrix(&self) -> Option<Vec<bool>> {
            None
        }
    }

    #[test]
    fn incremental_rows_produce_the_same_trajectory_as_rebuilds() {
        // Same seed, maintenance on vs off vs opted out: the three engines
        // must walk bit-identical trajectories (the rows are exact integers
        // either way), differing only in their maintenance counters.
        let config = Configuration::from_counts(vec![600, 300], 100).unwrap();
        let mut patched = BatchedEngine::new(Usd2Plain, config.clone(), SimSeed::from_u64(21));
        let mut rebuilt = BatchedEngine::new(Usd2Plain, config.clone(), SimSeed::from_u64(21));
        rebuilt.set_incremental_rows(false);
        let mut opted_out = BatchedEngine::new(Usd2NoDelta, config, SimSeed::from_u64(21));
        let mut events = 0u64;
        loop {
            let a = patched.advance(u64::MAX);
            let b = rebuilt.advance(u64::MAX);
            let c = opted_out.advance(u64::MAX);
            assert_eq!(a, b);
            assert_eq!(a, c);
            assert_eq!(patched.configuration(), rebuilt.configuration());
            assert_eq!(patched.configuration(), opted_out.configuration());
            assert_eq!(patched.interactions(), rebuilt.interactions());
            if a != Advance::Event {
                break;
            }
            events += 1;
        }
        assert!(events > 10, "run too short to exercise the patch path");
        let stats = patched.maintenance_stats();
        assert_eq!(stats.rows_rebuilt, 1, "only the first refresh rebuilds");
        assert_eq!(stats.rows_patched, events);
        let baseline = rebuilt.maintenance_stats();
        assert_eq!(baseline.rows_patched, 0);
        assert_eq!(baseline.rows_rebuilt, events + 1);
        let fallback = opted_out.maintenance_stats();
        assert_eq!(fallback.rows_patched, 0);
        assert!(fallback.rows_rebuilt >= events);
    }

    #[test]
    fn maintenance_counters_flow_into_run_results() {
        let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(5));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
        let stats = result.maintenance().expect("batched engine counts");
        assert_eq!(stats.rows_rebuilt, 1);
        assert!(stats.rows_patched > 0);
        assert_eq!(stats.law_patches, 0);
        assert_eq!(stats.law_rebuilds, 0);
    }

    #[test]
    fn batched_telemetry_counts_skips_draws_and_patches() {
        let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(5));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
        let snap = result
            .telemetry()
            .expect("batched engine reports telemetry");
        let events = snap.counter("batched.events_drawn").unwrap();
        assert!(events > 0);
        // Every interaction is either a drawn event or a skipped null.
        assert_eq!(
            events + snap.counter("batched.nulls_skipped").unwrap(),
            result.interactions()
        );
        // The snapshot carries the maintenance counters under canonical names.
        let stats = result.maintenance().unwrap();
        assert_eq!(
            snap.counter("maintenance.rows_patched"),
            Some(stats.rows_patched)
        );
        assert_eq!(
            snap.counter("maintenance.rows_rebuilt"),
            Some(stats.rows_rebuilt)
        );
    }

    #[test]
    fn default_telemetry_reflects_bespoke_accessors() {
        // The exact engine has no counters of its own: its default
        // `telemetry()` surfaces nothing beyond what the legacy accessors
        // say (no maintenance, no rejection path → no snapshot).
        let config = Configuration::from_counts(vec![9, 1], 0).unwrap();
        let engine = CountSimulator::new(Usd2Plain, config, SimSeed::from_u64(5));
        assert!(StepEngine::telemetry(&engine).is_none());
    }

    #[test]
    fn engine_choice_round_trips_through_strings() {
        for choice in EngineChoice::ALL {
            assert_eq!(choice.name().parse::<EngineChoice>().unwrap(), choice);
        }
        assert!("nope".parse::<EngineChoice>().is_err());
        assert_eq!(EngineChoice::default(), EngineChoice::Exact);
    }

    #[test]
    fn batched_engine_reaches_consensus_with_plain_protocol() {
        let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(5));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
        assert!(result.reached_consensus());
        assert_eq!(result.winner().unwrap().index(), 0);
        assert_eq!(result.scheduler(), Some(UNIFORM_PAIR_SCHEDULER_NAME));
    }

    #[test]
    fn hooked_protocol_passes_the_debug_cross_check() {
        let config = Configuration::from_counts(vec![600, 300], 100).unwrap();
        let mut engine = BatchedEngine::new(Usd2Hooked, config, SimSeed::from_u64(6));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
        assert!(result.reached_consensus());
    }

    #[test]
    fn batched_population_is_conserved_across_events() {
        let config = Configuration::from_counts(vec![40, 60], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(11));
        for _ in 0..200 {
            match engine.advance(u64::MAX) {
                Advance::Event => {
                    assert!(engine.configuration().is_consistent());
                    assert_eq!(engine.configuration().population(), 100);
                }
                _ => break,
            }
        }
        assert!(engine.interactions() > 0);
    }

    #[test]
    fn batched_budget_is_respected_exactly() {
        let config = Configuration::from_counts(vec![500, 500], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(3));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(10_000));
        if result.outcome() == RunOutcome::BudgetExhausted {
            assert_eq!(result.interactions(), 10_000);
        } else {
            assert!(result.interactions() <= 10_000);
        }
    }

    #[test]
    fn absorbed_configuration_exhausts_budget_without_spinning() {
        // A frozen non-consensus state: every agent undecided (the USD can
        // never change it).
        let config = Configuration::from_counts(vec![0, 0], 100).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(8));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(1_000_000));
        assert_eq!(result.outcome(), RunOutcome::BudgetExhausted);
        assert_eq!(result.interactions(), 1_000_000);
    }

    #[test]
    fn exact_engine_detects_absorption_instead_of_spinning() {
        // Frozen non-consensus state: the absorption check must fire after a
        // bounded number of null steps even with no (finite) limit.
        let config = Configuration::from_counts(vec![0, 0], 100).unwrap();
        let mut engine = CountSimulator::new(Usd2Plain, config, SimSeed::from_u64(1));
        assert_eq!(
            StepEngine::advance(&mut engine, u64::MAX),
            Advance::Absorbed
        );
    }

    #[test]
    #[should_panic(expected = "can never meet the stop condition")]
    fn exact_engine_fails_loudly_on_absorbing_goal_only_runs() {
        // Same loud-failure contract as the batched backend: a goal-only
        // stop on an absorbing configuration panics instead of hanging.
        let config = Configuration::from_counts(vec![0, 0], 100).unwrap();
        let mut engine = CountSimulator::new(Usd2Plain, config, SimSeed::from_u64(1));
        let _ = engine.run_engine(StopCondition::consensus());
    }

    #[test]
    fn geometric_skip_matches_the_distribution_mean() {
        let mut rng = SimSeed::from_u64(42).rng();
        let p = 0.2f64;
        let trials = 50_000;
        let total: u64 = (0..trials)
            .map(|_| geometric_skip(&mut rng, p, u64::MAX).expect("no overshoot"))
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = (1.0 - p) / p;
        assert!((mean - expected).abs() < 0.1, "mean {mean} vs {expected}");
        // p = 1 means the event is immediate, and overshoots report None.
        assert_eq!(geometric_skip(&mut rng, 1.0, 10), Some(0));
        assert_eq!(geometric_skip(&mut rng, 1e-18, 1), None);
    }

    #[test]
    fn exact_engine_advance_matches_stepwise_semantics() {
        let config = Configuration::from_counts(vec![80, 20], 0).unwrap();
        let mut engine = CountSimulator::new(Usd2Plain, config, SimSeed::from_u64(2));
        let adv = StepEngine::advance(&mut engine, 1_000_000);
        assert_eq!(adv, Advance::Event);
        assert!(StepEngine::interactions(&engine) >= 1);
        let now = StepEngine::interactions(&engine);
        let adv = StepEngine::advance(&mut engine, now);
        assert_eq!(adv, Advance::LimitReached);
    }

    #[test]
    fn count_engine_dispatches_both_backends() {
        for choice in [EngineChoice::Exact, EngineChoice::Batched] {
            let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
            let mut engine = CountEngine::new(Usd2Plain, config, SimSeed::from_u64(4), choice);
            let result =
                engine.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
            assert!(result.reached_consensus(), "{choice} failed to converge");
            assert_eq!(engine.engine_name(), choice.name());
        }
        let config = Configuration::from_counts(vec![10, 10], 0).unwrap();
        let err = CountEngine::try_new(
            Usd2Plain,
            config,
            SimSeed::from_u64(0),
            EngineChoice::MeanField,
        )
        .unwrap_err();
        assert!(matches!(err, PpError::UnsupportedEngine { .. }));
    }

    #[test]
    fn productive_probability_matches_closed_form() {
        // x = (300, 700), u = 0: p = 2·300·700/1000² = 0.42.
        let config = Configuration::from_counts(vec![300, 700], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(77));
        assert!((engine.productive_probability() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn gen_u128_below_stays_in_range_and_covers_small_bounds() {
        let mut rng = SimSeed::from_u64(1).rng();
        let mut seen = [false; 5];
        for _ in 0..2_000 {
            let x = uniform_u128_below(&mut rng, 5);
            assert!(x < 5);
            seen[x as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some residues never sampled: {seen:?}"
        );
    }

    #[test]
    fn batched_checkpoint_restores_the_identical_trajectory_tail() {
        let config = Configuration::from_counts(vec![600, 300], 100).unwrap();
        let stop = StopCondition::consensus().or_max_interactions(5_000_000);
        let limit = stop.max_interactions().unwrap();
        let mut reference = BatchedEngine::new(Usd2Plain, config.clone(), SimSeed::from_u64(77));
        let mut interrupted = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(77));
        // Interrupt between `advance` calls, against the same final limit —
        // the two rules the checkpoint contract requires.
        for _ in 0..40 {
            assert_eq!(reference.advance(limit), interrupted.advance(limit));
        }
        let checkpoint = Checkpoint::capture(&interrupted);
        assert_eq!(checkpoint.kind(), "batched");
        drop(interrupted);
        let mut restored = BatchedEngine::restore(Usd2Plain, &checkpoint).unwrap();
        assert_eq!(
            StepEngine::configuration(&restored),
            StepEngine::configuration(&reference)
        );
        // The bookkeeping counters continue where the interrupted run left
        // off (a checkpoint after 40 events carries 40 draws).
        assert_eq!(
            restored.capture_state().counter("events_drawn"),
            Some(reference.events_drawn)
        );
        let expected = reference.run_engine(stop);
        let resumed = restored.run_engine(stop);
        // RunResult equality covers outcome, interactions, the final
        // configuration, the scheduler and rejection misses; maintenance
        // counters legitimately differ by the restore's one warm-up rebuild.
        assert_eq!(resumed, expected);
        let warm = expected.maintenance().unwrap();
        let cold = resumed.maintenance().unwrap();
        assert_eq!(cold.rows_rebuilt, warm.rows_rebuilt + 1);
        assert_eq!(cold.rows_patched, warm.rows_patched);
    }

    #[test]
    fn recorder_sees_initial_and_event_configurations() {
        let config = Configuration::from_counts(vec![90, 10], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(9));
        let mut times: Vec<u64> = Vec::new();
        let mut rec = |t: u64, _c: &Configuration| times.push(t);
        engine.run_engine_recorded(
            StopCondition::consensus().or_max_interactions(1_000_000),
            &mut rec,
        );
        assert_eq!(times[0], 0);
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "event times must increase"
        );
    }
}
