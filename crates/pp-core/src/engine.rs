//! The unified step-engine layer.
//!
//! Every count-based simulation in this workspace advances the same Markov
//! chain over [`Configuration`]s; what differs is *how* the chain is driven.
//! This module abstracts the driving strategy behind one trait so every
//! consumer (USD runs, baseline dynamics, gossip variants, experiments,
//! benches) can switch strategy without touching its own logic:
//!
//! * [`ExactEngine`] (= [`CountSimulator`]) — the canonical per-interaction
//!   Fenwick sampler: one category pair per step, `O(log k)` each.
//! * [`BatchedEngine`] — exact-in-distribution skip-ahead.  From the current
//!   counts it computes the probability `p` that an interaction changes the
//!   state, samples the geometrically distributed number of *null*
//!   interactions (pairs that provably leave the counts unchanged, e.g.
//!   decided-meets-same-opinion in the USD), jumps straight over them, and
//!   then draws the category pair of the next state-changing event from the
//!   exact conditional distribution.  One unit of work per *event* instead of
//!   per *interaction*: in the long null-dominated stretches of a run (the
//!   coupon-collector endgame of Phase 5, deep-bias regimes) this is orders
//!   of magnitude faster, and the induced distribution over recorded
//!   trajectories is the same as the exact engine's.
//! * [`crate::shard::ShardedEngine`] — the count vector split into shards,
//!   each advanced by its own batched engine in parallel, with cross-shard
//!   interactions reconciled by multinomial epoch allocation (tunably
//!   approximate; built for `n ≥ 10⁹`).
//! * `MeanFieldEngine` (in `usd-core`) — the deterministic ODE limit lifted
//!   behind the same trait for instant large-`n` approximation.
//!
//! Protocols opt into fast batching by overriding
//! [`OpinionProtocol::null_interaction_weight`] and
//! [`OpinionProtocol::productive_responder_weight`]; without the overrides
//! the batched engine falls back to exact `O(k²)`-per-event enumeration, so
//! the refactor is incremental per protocol.
//!
//! # Example
//!
//! ```
//! use pp_core::engine::{BatchedEngine, StepEngine};
//! use pp_core::prelude::*;
//!
//! struct TinyUsd;
//! impl OpinionProtocol for TinyUsd {
//!     fn num_opinions(&self) -> usize { 2 }
//!     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
//!         match (r, i) {
//!             (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
//!             (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
//!             _ => r,
//!         }
//!     }
//! }
//!
//! let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
//! let mut engine = BatchedEngine::new(TinyUsd, config, SimSeed::from_u64(7));
//! let result = engine.run_engine(StopCondition::consensus().or_max_interactions(10_000_000));
//! assert!(result.reached_consensus());
//! ```

use crate::config::Configuration;
use crate::count_sim::CountSimulator;
use crate::error::PpError;
use crate::opinion::AgentState;
use crate::protocol::OpinionProtocol;
use crate::recorder::Recorder;
use crate::rng::SimSeed;
use crate::run::{RunOutcome, RunResult};
use crate::stopping::StopCondition;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which stepping backend a consumer wants.
///
/// `Exact` and `Batched` induce the same distribution over trajectories;
/// `MeanField` replaces the stochastic process by its deterministic fluid
/// limit (only available for protocols that provide one, currently the USD).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineChoice {
    /// Per-interaction Fenwick sampling (the ground-truth backend).
    #[default]
    Exact,
    /// Geometric skip-ahead over null interactions plus conditional event
    /// draws; exact in distribution, much faster when nulls dominate.
    Batched,
    /// Parallel per-shard batched stepping with multinomial reconciliation
    /// epochs (documented-approximate; see [`crate::shard`]).
    Sharded,
    /// The deterministic ODE limit (approximation; `usd-core` only).
    MeanField,
}

impl EngineChoice {
    /// The stable identifier used in reports and on the command line.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineChoice::Exact => "exact",
            EngineChoice::Batched => "batched",
            EngineChoice::Sharded => "sharded",
            EngineChoice::MeanField => "mean-field",
        }
    }

    /// All selectable backends.
    pub const ALL: [EngineChoice; 4] = [
        EngineChoice::Exact,
        EngineChoice::Batched,
        EngineChoice::Sharded,
        EngineChoice::MeanField,
    ];
}

impl fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(EngineChoice::Exact),
            "batched" => Ok(EngineChoice::Batched),
            "sharded" => Ok(EngineChoice::Sharded),
            "mean-field" | "meanfield" => Ok(EngineChoice::MeanField),
            other => Err(format!(
                "unknown engine {other:?} (expected exact, batched, sharded, or mean-field)"
            )),
        }
    }
}

/// What [`StepEngine::advance`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// A state-changing event occurred; the configuration and interaction
    /// counter reflect it.
    Event,
    /// The interaction limit was reached before the next state change; the
    /// counter equals the limit and the configuration is unchanged.
    LimitReached,
    /// No state change is possible from the current configuration, ever.
    /// The counter was advanced to the limit (when one is finite).
    Absorbed,
}

/// A strategy for advancing a count-vector Markov chain.
///
/// The narrow waist is [`advance`](StepEngine::advance): move the simulation
/// forward to the *next state-changing event*, but never past `limit` total
/// interactions.  The provided `run_engine*` drivers build every stopping
/// behaviour the workspace needs on top of it, so exact, batched and
/// mean-field backends stay interchangeable in every consumer.
pub trait StepEngine {
    /// The current configuration.
    fn configuration(&self) -> &Configuration;

    /// Interactions elapsed so far (null interactions included).
    fn interactions(&self) -> u64;

    /// The stable backend identifier ("exact", "batched", "mean-field").
    fn engine_name(&self) -> &'static str;

    /// The name of the interaction scheduler this engine realizes, recorded
    /// into every [`RunResult`] the provided drivers produce.
    fn scheduler_name(&self) -> &'static str {
        UNIFORM_PAIR_SCHEDULER_NAME
    }

    /// The number of unproductive draws this engine has discarded in
    /// rejection-sampling fallbacks so far, if it uses any (see
    /// `SamplingDynamics::sample_productive_move` in `consensus-dynamics`).
    /// Engines without a rejection path report `None`; the provided drivers
    /// record a `Some` value into the [`RunResult`].  Every shipped sampling
    /// dynamic now provides a closed-form conditional sampler, so a non-zero
    /// value only ever comes from a third-party dynamic that opted into
    /// skip-ahead without one — the conformance suite pins the shipped
    /// dynamics to exactly `Some(0)`.
    fn rejection_misses(&self) -> Option<u64> {
        None
    }

    /// Advances to the next state-changing event, or to `limit` interactions,
    /// whichever comes first.
    fn advance(&mut self, limit: u64) -> Advance;

    /// Runs until the stop condition is met, recording nothing.
    fn run_engine(&mut self, stop: StopCondition) -> RunResult
    where
        Self: Sized,
    {
        self.run_engine_recorded(stop, &mut crate::recorder::NullRecorder)
    }

    /// Runs until the stop condition is met, feeding the initial and every
    /// changed configuration to the recorder (the same observable sequence
    /// the exact per-interaction loop produces).
    ///
    /// # Panics
    ///
    /// Panics if the stop condition is unbounded, or if the chain reaches an
    /// absorbing configuration that cannot meet a budget-less stop condition
    /// (the exact loop would spin forever; the engine layer fails loudly).
    fn run_engine_recorded<R: Recorder>(
        &mut self,
        stop: StopCondition,
        recorder: &mut R,
    ) -> RunResult
    where
        Self: Sized,
    {
        assert!(
            stop.is_bounded(),
            "stop condition can never terminate the run"
        );
        recorder.record(self.interactions(), self.configuration());
        loop {
            if stop.goal_met(self.configuration()) {
                let outcome = if self.configuration().is_consensus() {
                    RunOutcome::Consensus
                } else {
                    RunOutcome::OpinionSettled
                };
                return RunResult::new(outcome, self.interactions(), self.configuration().clone())
                    .with_scheduler(self.scheduler_name())
                    .with_rejection_misses(self.rejection_misses());
            }
            let limit = match stop.max_interactions() {
                Some(budget) if self.interactions() >= budget => {
                    return RunResult::new(
                        RunOutcome::BudgetExhausted,
                        self.interactions(),
                        self.configuration().clone(),
                    )
                    .with_scheduler(self.scheduler_name())
                    .with_rejection_misses(self.rejection_misses());
                }
                Some(budget) => budget,
                None => u64::MAX,
            };
            match self.advance(limit) {
                Advance::Event => recorder.record(self.interactions(), self.configuration()),
                Advance::LimitReached => {}
                Advance::Absorbed => {
                    assert!(
                        stop.max_interactions().is_some() || stop.goal_met(self.configuration()),
                        "absorbing configuration {} can never meet the stop condition",
                        self.configuration()
                    );
                }
            }
        }
    }
}

/// The scheduler every count-based engine realizes implicitly: both category
/// draws correspond to independent uniform agent indices.
pub const UNIFORM_PAIR_SCHEDULER_NAME: &str = "uniform ordered pairs (self-interactions allowed)";

/// The canonical per-interaction backend, as a named alias of
/// [`CountSimulator`].
pub type ExactEngine<P> = CountSimulator<P>;

impl<P: OpinionProtocol> StepEngine for CountSimulator<P> {
    fn configuration(&self) -> &Configuration {
        CountSimulator::configuration(self)
    }

    fn interactions(&self) -> u64 {
        CountSimulator::interactions(self)
    }

    fn engine_name(&self) -> &'static str {
        "exact"
    }

    fn advance(&mut self, limit: u64) -> Advance {
        // Periodic absorption check: every `CHECK_MASK + 1` consecutive null
        // steps, test whether any state change is still possible.  Amortized
        // free on live configurations, and it upholds the trait contract —
        // an absorbing configuration yields `Absorbed` instead of spinning
        // until the heat death of the budget (or forever without one).
        const CHECK_MASK: u64 = (1 << 20) - 1;
        let mut nulls = 0u64;
        while CountSimulator::interactions(self) < limit {
            if self.step() {
                return Advance::Event;
            }
            nulls += 1;
            if nulls & CHECK_MASK == 0 && self.productive_probability() == 0.0 {
                self.skip_to(limit);
                return Advance::Absorbed;
            }
        }
        Advance::LimitReached
    }
}

/// Draws a uniform `u128` below `bound` (exactly uniform in both paths).
/// Count-pair weights exceed `u64` only for populations beyond ~4·10⁹, so
/// the common case takes a cheap 64-bit Lemire widening-multiply; larger
/// bounds fall back to 128-bit rejection.
///
/// # Panics
///
/// Panics in debug builds if `bound == 0`.
pub fn uniform_u128_below<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if let Ok(b) = u64::try_from(bound) {
        // Lemire's multiply-shift with rejection of the biased overhang.
        let mut m = u128::from(rng.next_u64()) * u128::from(b);
        if (m as u64) < b {
            let t = b.wrapping_neg() % b;
            while (m as u64) < t {
                m = u128::from(rng.next_u64()) * u128::from(b);
            }
        }
        return m >> 64;
    }
    // 2^128 mod bound: values below this threshold are the biased overhang.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if x >= threshold {
            return x % bound;
        }
    }
}

/// Samples the geometrically distributed number of null interactions
/// preceding the next state-changing event, given per-interaction event
/// probability `p`.  Returns `None` when the skip provably overshoots
/// `max_skip` — memorylessness makes re-sampling on a later call exact, so
/// callers can treat `None` as "the limit arrives first".
///
/// Shared by every skip-ahead engine ([`BatchedEngine`], the sequential
/// sampler in `consensus-dynamics`), so the edge-case handling — `p ≥ 1`,
/// `p` rounding toward 0, overshoot — lives in exactly one place.
pub fn geometric_skip<R: Rng + ?Sized>(rng: &mut R, p: f64, max_skip: u64) -> Option<u64> {
    debug_assert!(p > 0.0, "event probability must be positive");
    if p >= 1.0 {
        return Some(0);
    }
    // Inversion: floor(ln U / ln(1-p)), U uniform in (0, 1).
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let skip = u.ln() / (-p).ln_1p();
    if !skip.is_finite() || skip >= max_skip as f64 {
        None
    } else {
        Some(skip as u64)
    }
}

/// Exact-in-distribution skip-ahead engine.
///
/// Instead of simulating interactions one by one, the engine works on the
/// *embedded jump chain* of state-changing events: from the current counts it
/// computes the total weight `W` of productive ordered category pairs,
/// samples the geometric number of null interactions preceding the next
/// event (success probability `W/n²`), and then draws the event's category
/// pair with probability proportional to `c_r · c_i` restricted to
/// productive pairs.  Both draws use the exact conditional distributions of
/// the underlying chain, so trajectories (configurations indexed by
/// interaction count) have the same law as under [`ExactEngine`] — this is
/// verified statistically in the test suite.
///
/// Cost: `O(k)` per state-changing event for protocols overriding the
/// batching hooks ([`OpinionProtocol::null_interaction_weight`] /
/// [`OpinionProtocol::productive_responder_weight`]), `O(k²)` otherwise —
/// but never proportional to the number of skipped null interactions.
#[derive(Debug)]
pub struct BatchedEngine<P> {
    protocol: P,
    config: Configuration,
    interactions: u64,
    rng: SmallRng,
    /// Scratch: productive weight per responder category, refreshed per event.
    rows: Vec<u128>,
}

impl<P: OpinionProtocol> BatchedEngine<P> {
    /// Creates a batched engine for `protocol` starting from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol's `num_opinions()` differs from the
    /// configuration's.
    #[must_use]
    pub fn new(protocol: P, config: Configuration, seed: SimSeed) -> Self {
        Self::try_new(protocol, config, seed)
            .expect("protocol/configuration opinion count mismatch")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] if the protocol and the
    /// configuration disagree on `k`.
    pub fn try_new(protocol: P, config: Configuration, seed: SimSeed) -> Result<Self, PpError> {
        if protocol.num_opinions() != config.num_opinions() {
            return Err(PpError::OpinionCountMismatch {
                protocol: protocol.num_opinions(),
                configuration: config.num_opinions(),
            });
        }
        let k = config.num_opinions();
        Ok(BatchedEngine {
            protocol,
            config,
            interactions: 0,
            rng: seed.rng(),
            rows: vec![0; k + 1],
        })
    }

    /// The protocol driving this engine.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Consumes the engine and returns the final configuration.
    #[must_use]
    pub fn into_configuration(self) -> Configuration {
        self.config
    }

    /// Simultaneous access to the protocol and the mutable configuration —
    /// the shard reconciler applies cross-shard responder updates directly to
    /// a shard's counts (without advancing the local interaction counter).
    pub(crate) fn parts_mut(&mut self) -> (&P, &mut Configuration) {
        (&self.protocol, &mut self.config)
    }

    /// Productive weight of responder category `cat` by direct enumeration:
    /// `c_cat · Σ_{i : productive} c_i`.
    fn enumerated_row(&self, cat: usize) -> u128 {
        // The single-population weight is the cross-shard weight with the
        // responder and initiator sides drawn from the same configuration;
        // sharing the enumeration keeps this engine and the shard
        // reconciler exactly in sync.
        crate::shard::reconcile::productive_row(&self.protocol, &self.config, &self.config, cat)
    }

    /// Fills `rows` with the per-category productive weights for the current
    /// counts and returns their sum.  A pure function of the configuration —
    /// the standalone `advance` fills its scratch buffer with it, and the
    /// ensemble layer fills cache-shared [`crate::ensemble::RowTable`]s, so
    /// both paths see bit-identical weights.
    pub(crate) fn fill_rows(&self, rows: &mut Vec<u128>) -> u128 {
        let k = self.config.num_opinions();
        rows.clear();
        rows.resize(k + 1, 0);
        let mut total: u128 = 0;
        for (cat, row_slot) in rows.iter_mut().enumerate() {
            let row = self
                .protocol
                .productive_responder_weight(&self.config, cat)
                .unwrap_or_else(|| self.enumerated_row(cat));
            *row_slot = row;
            total += row;
        }
        #[cfg(debug_assertions)]
        {
            // Cross-check closed-form hooks against direct enumeration.
            if let Some(null) = self.protocol.null_interaction_weight(&self.config) {
                let n = u128::from(self.config.population());
                debug_assert_eq!(
                    total + null,
                    n * n,
                    "null_interaction_weight override disagrees with enumeration at {}",
                    self.config
                );
            }
            for (cat, &row) in rows.iter().enumerate() {
                debug_assert_eq!(
                    row,
                    self.enumerated_row(cat),
                    "productive_responder_weight override disagrees with enumeration \
                     for category {cat} at {}",
                    self.config
                );
            }
        }
        total
    }

    /// Refreshes the per-category productive weights and returns their sum.
    fn refresh_rows(&mut self) -> u128 {
        let mut rows = std::mem::take(&mut self.rows);
        let total = self.fill_rows(&mut rows);
        self.rows = rows;
        total
    }

    /// A freshly allocated row table for the current counts, as
    /// `(rows, total)` (the ensemble layer caches these per counts key).
    pub(crate) fn enumerate_rows(&self) -> (Vec<u128>, u128) {
        let mut rows = Vec::new();
        let total = self.fill_rows(&mut rows);
        (rows, total)
    }

    /// The engine's RNG (the ensemble layer draws skips from it so lockstep
    /// replicas consume randomness exactly as standalone runs do).
    pub(crate) fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Records `skip` null interactions plus the event interaction itself.
    pub(crate) fn record_event_interactions(&mut self, skip: u64) {
        self.interactions += skip + 1;
    }

    /// Forwards the interaction counter to `limit` without an event.
    pub(crate) fn forward_to(&mut self, limit: u64) {
        self.interactions = limit;
    }

    /// Draws the category pair of the next state-changing event from the
    /// given row table and applies it — the shared tail of the standalone
    /// and lockstep advance paths.  One draw picks the whole event: a unit
    /// below `total` decomposes as (responder category, responder identity
    /// within the category, initiator unit); the row scan finds the
    /// category, and because `row = c_r · S_r` factors into independent
    /// responder-identity and initiator-weight parts, the remainder modulo
    /// `S_r` is an exact uniform draw of the initiator unit.
    pub(crate) fn draw_and_apply_event(&mut self, rows: &[u128], total: u128) {
        let k = self.config.num_opinions();
        let mut target = uniform_u128_below(&mut self.rng, total);
        let mut responder_cat = k;
        for (cat, &row) in rows.iter().enumerate() {
            if target < row {
                responder_cat = cat;
                break;
            }
            target -= row;
        }
        let responder = AgentState::from_category(responder_cat, k);
        let c_responder = u128::from(self.config.category_count(responder_cat));
        debug_assert!(c_responder > 0);
        // 64-bit fast paths: the weights fit u64 for any population ≤ ~4·10⁹,
        // avoiding the 128-bit division intrinsics on the hot path.
        let row = rows[responder_cat];
        let initiator_total = match (u64::try_from(row), u64::try_from(c_responder)) {
            (Ok(r), Ok(c)) => u128::from(r / c),
            _ => row / c_responder,
        };
        let mut itarget = match (u64::try_from(target), u64::try_from(initiator_total)) {
            (Ok(t), Ok(s)) => u128::from(t % s),
            _ => target % initiator_total,
        };

        // Resolve the initiator unit to a category, restricted to categories
        // whose interaction with this responder is productive.
        let mut initiator = AgentState::Undecided;
        for i in 0..=k {
            let c_i = self.config.category_count(i);
            if c_i == 0 {
                continue;
            }
            let candidate = AgentState::from_category(i, k);
            if self.protocol.respond(responder, candidate) == responder {
                continue;
            }
            if itarget < u128::from(c_i) {
                initiator = candidate;
                break;
            }
            itarget -= u128::from(c_i);
        }

        let new_responder = self.protocol.respond(responder, initiator);
        debug_assert_ne!(new_responder, responder, "sampled event must be productive");
        self.config
            .apply_move(responder, new_responder)
            .expect("transition produced an inconsistent move");
    }

    /// The probability that the next interaction changes the state, computed
    /// from the current counts (used by tests and diagnostics).
    #[must_use]
    pub fn productive_probability(&mut self) -> f64 {
        let n = self.config.population() as f64;
        let total = self.refresh_rows();
        total as f64 / (n * n)
    }
}

impl<P: OpinionProtocol> StepEngine for BatchedEngine<P> {
    fn configuration(&self) -> &Configuration {
        &self.config
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn engine_name(&self) -> &'static str {
        "batched"
    }

    fn advance(&mut self, limit: u64) -> Advance {
        if self.interactions >= limit {
            return Advance::LimitReached;
        }
        let total = self.refresh_rows();
        if total == 0 {
            self.interactions = limit;
            return Advance::Absorbed;
        }
        let n = self.config.population() as f64;
        let p = total as f64 / (n * n);

        // How many interactions may still elapse before the limit; the event
        // itself occupies one, so the skip must stay strictly below this.
        let headroom = limit - self.interactions;
        let Some(skip) = geometric_skip(&mut self.rng, p, headroom) else {
            self.interactions = limit;
            return Advance::LimitReached;
        };
        self.interactions += skip + 1;
        let rows = std::mem::take(&mut self.rows);
        self.draw_and_apply_event(&rows, total);
        self.rows = rows;
        Advance::Event
    }
}

/// A runtime-selectable count-based engine (exact or batched) over one
/// protocol — the concrete type consumers hold when the backend is a run
/// parameter rather than a compile-time choice.
#[derive(Debug)]
pub enum CountEngine<P> {
    /// Per-interaction stepping.
    Exact(ExactEngine<P>),
    /// Skip-ahead stepping.
    Batched(BatchedEngine<P>),
}

impl<P: OpinionProtocol> CountEngine<P> {
    /// Creates the engine selected by `choice`.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] on a protocol/configuration
    /// mismatch and [`PpError::UnsupportedEngine`] for
    /// [`EngineChoice::MeanField`] (the ODE limit is protocol-specific; see
    /// `usd-core`) and [`EngineChoice::Sharded`] (the sharded engine needs a
    /// [`crate::shard::ShardPlan`] and `Clone + Send` protocols — construct
    /// [`crate::shard::ShardedEngine`] directly).
    pub fn try_new(
        protocol: P,
        config: Configuration,
        seed: SimSeed,
        choice: EngineChoice,
    ) -> Result<Self, PpError> {
        match choice {
            EngineChoice::Exact => Ok(CountEngine::Exact(CountSimulator::try_new(
                protocol, config, seed,
            )?)),
            EngineChoice::Batched => Ok(CountEngine::Batched(BatchedEngine::try_new(
                protocol, config, seed,
            )?)),
            EngineChoice::Sharded => Err(PpError::UnsupportedEngine {
                requested: "sharded",
            }),
            EngineChoice::MeanField => Err(PpError::UnsupportedEngine {
                requested: "mean-field",
            }),
        }
    }

    /// Panicking counterpart of [`CountEngine::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on mismatch or unsupported choice.
    #[must_use]
    pub fn new(protocol: P, config: Configuration, seed: SimSeed, choice: EngineChoice) -> Self {
        Self::try_new(protocol, config, seed, choice).expect("failed to construct engine")
    }
}

impl<P: OpinionProtocol> StepEngine for CountEngine<P> {
    fn configuration(&self) -> &Configuration {
        match self {
            CountEngine::Exact(e) => StepEngine::configuration(e),
            CountEngine::Batched(e) => StepEngine::configuration(e),
        }
    }

    fn interactions(&self) -> u64 {
        match self {
            CountEngine::Exact(e) => StepEngine::interactions(e),
            CountEngine::Batched(e) => StepEngine::interactions(e),
        }
    }

    fn engine_name(&self) -> &'static str {
        match self {
            CountEngine::Exact(e) => e.engine_name(),
            CountEngine::Batched(e) => e.engine_name(),
        }
    }

    fn advance(&mut self, limit: u64) -> Advance {
        match self {
            CountEngine::Exact(e) => e.advance(limit),
            CountEngine::Batched(e) => e.advance(limit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 2-opinion USD without batching hooks (exercises the enumeration
    /// fallback).
    #[derive(Debug)]
    struct Usd2Plain;

    impl OpinionProtocol for Usd2Plain {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
        fn name(&self) -> &str {
            "usd-2"
        }
    }

    /// The same protocol with closed-form batching hooks (exercises the
    /// debug cross-check against enumeration).
    #[derive(Debug)]
    struct Usd2Hooked;

    impl OpinionProtocol for Usd2Hooked {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            Usd2Plain.respond(r, i)
        }
        fn name(&self) -> &str {
            "usd-2-hooked"
        }
        fn null_interaction_weight(&self, config: &Configuration) -> Option<u128> {
            let n = u128::from(config.population());
            let d = u128::from(config.decided());
            let u = u128::from(config.undecided());
            let discordant = d * d - config.sum_of_squares();
            Some(n * n - discordant - u * d)
        }
        fn productive_responder_weight(&self, config: &Configuration, cat: usize) -> Option<u128> {
            let d = u128::from(config.decided());
            Some(if cat == config.num_opinions() {
                u128::from(config.undecided()) * d
            } else {
                let x = u128::from(config.support(cat));
                x * (d - x)
            })
        }
    }

    #[test]
    fn engine_choice_round_trips_through_strings() {
        for choice in EngineChoice::ALL {
            assert_eq!(choice.name().parse::<EngineChoice>().unwrap(), choice);
        }
        assert!("nope".parse::<EngineChoice>().is_err());
        assert_eq!(EngineChoice::default(), EngineChoice::Exact);
    }

    #[test]
    fn batched_engine_reaches_consensus_with_plain_protocol() {
        let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(5));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
        assert!(result.reached_consensus());
        assert_eq!(result.winner().unwrap().index(), 0);
        assert_eq!(result.scheduler(), Some(UNIFORM_PAIR_SCHEDULER_NAME));
    }

    #[test]
    fn hooked_protocol_passes_the_debug_cross_check() {
        let config = Configuration::from_counts(vec![600, 300], 100).unwrap();
        let mut engine = BatchedEngine::new(Usd2Hooked, config, SimSeed::from_u64(6));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
        assert!(result.reached_consensus());
    }

    #[test]
    fn batched_population_is_conserved_across_events() {
        let config = Configuration::from_counts(vec![40, 60], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(11));
        for _ in 0..200 {
            match engine.advance(u64::MAX) {
                Advance::Event => {
                    assert!(engine.configuration().is_consistent());
                    assert_eq!(engine.configuration().population(), 100);
                }
                _ => break,
            }
        }
        assert!(engine.interactions() > 0);
    }

    #[test]
    fn batched_budget_is_respected_exactly() {
        let config = Configuration::from_counts(vec![500, 500], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(3));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(10_000));
        if result.outcome() == RunOutcome::BudgetExhausted {
            assert_eq!(result.interactions(), 10_000);
        } else {
            assert!(result.interactions() <= 10_000);
        }
    }

    #[test]
    fn absorbed_configuration_exhausts_budget_without_spinning() {
        // A frozen non-consensus state: every agent undecided (the USD can
        // never change it).
        let config = Configuration::from_counts(vec![0, 0], 100).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(8));
        let result = engine.run_engine(StopCondition::consensus().or_max_interactions(1_000_000));
        assert_eq!(result.outcome(), RunOutcome::BudgetExhausted);
        assert_eq!(result.interactions(), 1_000_000);
    }

    #[test]
    fn exact_engine_detects_absorption_instead_of_spinning() {
        // Frozen non-consensus state: the absorption check must fire after a
        // bounded number of null steps even with no (finite) limit.
        let config = Configuration::from_counts(vec![0, 0], 100).unwrap();
        let mut engine = CountSimulator::new(Usd2Plain, config, SimSeed::from_u64(1));
        assert_eq!(
            StepEngine::advance(&mut engine, u64::MAX),
            Advance::Absorbed
        );
    }

    #[test]
    #[should_panic(expected = "can never meet the stop condition")]
    fn exact_engine_fails_loudly_on_absorbing_goal_only_runs() {
        // Same loud-failure contract as the batched backend: a goal-only
        // stop on an absorbing configuration panics instead of hanging.
        let config = Configuration::from_counts(vec![0, 0], 100).unwrap();
        let mut engine = CountSimulator::new(Usd2Plain, config, SimSeed::from_u64(1));
        let _ = engine.run_engine(StopCondition::consensus());
    }

    #[test]
    fn geometric_skip_matches_the_distribution_mean() {
        let mut rng = SimSeed::from_u64(42).rng();
        let p = 0.2f64;
        let trials = 50_000;
        let total: u64 = (0..trials)
            .map(|_| geometric_skip(&mut rng, p, u64::MAX).expect("no overshoot"))
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = (1.0 - p) / p;
        assert!((mean - expected).abs() < 0.1, "mean {mean} vs {expected}");
        // p = 1 means the event is immediate, and overshoots report None.
        assert_eq!(geometric_skip(&mut rng, 1.0, 10), Some(0));
        assert_eq!(geometric_skip(&mut rng, 1e-18, 1), None);
    }

    #[test]
    fn exact_engine_advance_matches_stepwise_semantics() {
        let config = Configuration::from_counts(vec![80, 20], 0).unwrap();
        let mut engine = CountSimulator::new(Usd2Plain, config, SimSeed::from_u64(2));
        let adv = StepEngine::advance(&mut engine, 1_000_000);
        assert_eq!(adv, Advance::Event);
        assert!(StepEngine::interactions(&engine) >= 1);
        let now = StepEngine::interactions(&engine);
        let adv = StepEngine::advance(&mut engine, now);
        assert_eq!(adv, Advance::LimitReached);
    }

    #[test]
    fn count_engine_dispatches_both_backends() {
        for choice in [EngineChoice::Exact, EngineChoice::Batched] {
            let config = Configuration::from_counts(vec![900, 100], 0).unwrap();
            let mut engine = CountEngine::new(Usd2Plain, config, SimSeed::from_u64(4), choice);
            let result =
                engine.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
            assert!(result.reached_consensus(), "{choice} failed to converge");
            assert_eq!(engine.engine_name(), choice.name());
        }
        let config = Configuration::from_counts(vec![10, 10], 0).unwrap();
        let err = CountEngine::try_new(
            Usd2Plain,
            config,
            SimSeed::from_u64(0),
            EngineChoice::MeanField,
        )
        .unwrap_err();
        assert!(matches!(err, PpError::UnsupportedEngine { .. }));
    }

    #[test]
    fn productive_probability_matches_closed_form() {
        // x = (300, 700), u = 0: p = 2·300·700/1000² = 0.42.
        let config = Configuration::from_counts(vec![300, 700], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(77));
        assert!((engine.productive_probability() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn gen_u128_below_stays_in_range_and_covers_small_bounds() {
        let mut rng = SimSeed::from_u64(1).rng();
        let mut seen = [false; 5];
        for _ in 0..2_000 {
            let x = uniform_u128_below(&mut rng, 5);
            assert!(x < 5);
            seen[x as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some residues never sampled: {seen:?}"
        );
    }

    #[test]
    fn recorder_sees_initial_and_event_configurations() {
        let config = Configuration::from_counts(vec![90, 10], 0).unwrap();
        let mut engine = BatchedEngine::new(Usd2Plain, config, SimSeed::from_u64(9));
        let mut times: Vec<u64> = Vec::new();
        let mut rec = |t: u64, _c: &Configuration| times.push(t);
        engine.run_engine_recorded(
            StopCondition::consensus().or_max_interactions(1_000_000),
            &mut rec,
        );
        assert_eq!(times[0], 0);
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "event times must increase"
        );
    }
}
