//! The agent-level simulator.
//!
//! [`AgentSimulator`] keeps an explicit `Vec<AgentState>` of all `n` agents
//! and draws ordered pairs through an [`InteractionScheduler`].  It is slower
//! than [`crate::CountSimulator`] (each interaction is `O(1)` but the state is
//! `O(n)` and cache-unfriendly for huge `n`), but it is the ground truth
//! implementation of the model: the count simulator is validated against it.

use crate::config::Configuration;
use crate::error::PpError;
use crate::opinion::AgentState;
use crate::protocol::OpinionProtocol;
use crate::recorder::Recorder;
use crate::rng::SimSeed;
use crate::run::{RunOutcome, RunResult};
use crate::scheduler::{InteractionScheduler, UniformPairScheduler};
use crate::stopping::StopCondition;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// An explicit-agent simulator for an [`OpinionProtocol`].
///
/// # Examples
///
/// ```
/// use pp_core::prelude::*;
///
/// struct Voter { k: usize }
/// impl OpinionProtocol for Voter {
///     fn num_opinions(&self) -> usize { self.k }
///     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
///         if i.is_decided() { i } else { r }
///     }
/// }
///
/// let config = Configuration::from_counts(vec![30, 10], 0).unwrap();
/// let mut sim = AgentSimulator::new(Voter { k: 2 }, &config, SimSeed::from_u64(9));
/// let result = sim.run(StopCondition::consensus().or_max_interactions(200_000));
/// assert!(result.reached_consensus());
/// ```
#[derive(Debug)]
pub struct AgentSimulator<P, S = UniformPairScheduler> {
    protocol: P,
    agents: Vec<AgentState>,
    config: Configuration,
    scheduler: S,
    interactions: u64,
    rng: SmallRng,
}

impl<P: OpinionProtocol> AgentSimulator<P, UniformPairScheduler> {
    /// Creates a simulator with the paper's uniform-pair scheduler.  Agent
    /// states are laid out from the configuration and then shuffled (agent
    /// identity is irrelevant to the dynamics but the shuffle keeps any
    /// index-dependent instrumentation honest).
    ///
    /// # Panics
    ///
    /// Panics if the protocol and configuration disagree on `k`.
    #[must_use]
    pub fn new(protocol: P, config: &Configuration, seed: SimSeed) -> Self {
        Self::with_scheduler(
            protocol,
            config,
            UniformPairScheduler::with_self_interactions(),
            seed,
        )
        .expect("protocol/configuration opinion count mismatch")
    }
}

impl<P: OpinionProtocol, S: InteractionScheduler> AgentSimulator<P, S> {
    /// Creates a simulator with an explicit scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] if the protocol and the
    /// configuration disagree on `k`.
    pub fn with_scheduler(
        protocol: P,
        config: &Configuration,
        scheduler: S,
        seed: SimSeed,
    ) -> Result<Self, PpError> {
        if protocol.num_opinions() != config.num_opinions() {
            return Err(PpError::OpinionCountMismatch {
                protocol: protocol.num_opinions(),
                configuration: config.num_opinions(),
            });
        }
        let mut rng = seed.rng();
        let mut agents = config.to_states();
        agents.shuffle(&mut rng);
        Ok(AgentSimulator {
            protocol,
            agents,
            config: config.clone(),
            scheduler,
            interactions: 0,
            rng,
        })
    }

    /// The current configuration (maintained incrementally).
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// The individual agent states.
    #[must_use]
    pub fn agents(&self) -> &[AgentState] {
        &self.agents
    }

    /// Number of interactions performed so far.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Performs one interaction; returns `true` if the responder changed state.
    pub fn step(&mut self) -> bool {
        let n = self.agents.len();
        let pair = self.scheduler.next_pair(n, &mut self.rng);
        self.interactions += 1;
        let responder = self.agents[pair.responder];
        let initiator = self.agents[pair.initiator];
        let new_responder = self.protocol.respond(responder, initiator);
        if new_responder == responder {
            return false;
        }
        self.agents[pair.responder] = new_responder;
        self.config
            .apply_move(responder, new_responder)
            .expect("transition produced an inconsistent move");
        true
    }

    /// Runs until the stop condition is met, recording nothing.
    pub fn run(&mut self, stop: StopCondition) -> RunResult {
        self.run_recorded(stop, &mut crate::recorder::NullRecorder)
    }

    /// Runs until the stop condition is met, feeding every changed
    /// configuration to the recorder.
    ///
    /// # Panics
    ///
    /// Panics if the stop condition is unbounded.
    pub fn run_recorded<R: Recorder>(
        &mut self,
        stop: StopCondition,
        recorder: &mut R,
    ) -> RunResult {
        assert!(
            stop.is_bounded(),
            "stop condition can never terminate the run"
        );
        recorder.record(self.interactions, &self.config);
        loop {
            if stop.goal_met(&self.config) {
                let outcome = if self.config.is_consensus() {
                    RunOutcome::Consensus
                } else {
                    RunOutcome::OpinionSettled
                };
                return RunResult::new(outcome, self.interactions, self.config.clone())
                    .with_scheduler(self.scheduler.name());
            }
            if let Some(budget) = stop.max_interactions() {
                if self.interactions >= budget {
                    return RunResult::new(
                        RunOutcome::BudgetExhausted,
                        self.interactions,
                        self.config.clone(),
                    )
                    .with_scheduler(self.scheduler.name());
                }
            }
            if self.step() {
                recorder.record(self.interactions, &self.config);
            }
        }
    }

    /// The scheduler driving this simulator.
    #[must_use]
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Usd2;
    impl OpinionProtocol for Usd2 {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
    }

    #[test]
    fn configuration_tracks_agent_array() {
        let cfg = Configuration::from_counts(vec![20, 20], 10).unwrap();
        let mut sim = AgentSimulator::new(Usd2, &cfg, SimSeed::from_u64(4));
        for _ in 0..2_000 {
            sim.step();
            let rebuilt = Configuration::from_states(sim.agents(), 2).unwrap();
            assert_eq!(&rebuilt, sim.configuration());
        }
    }

    #[test]
    fn biased_two_opinion_run_converges_to_plurality() {
        let cfg = Configuration::from_counts(vec![180, 20], 0).unwrap();
        let mut sim = AgentSimulator::new(Usd2, &cfg, SimSeed::from_u64(21));
        let r = sim.run(StopCondition::consensus().or_max_interactions(500_000));
        assert!(r.reached_consensus());
        assert_eq!(r.winner().unwrap().index(), 0);
    }

    #[test]
    fn mismatch_rejected() {
        let cfg = Configuration::uniform(10, 3).unwrap();
        let res = AgentSimulator::with_scheduler(
            Usd2,
            &cfg,
            UniformPairScheduler::with_self_interactions(),
            SimSeed::from_u64(0),
        );
        assert!(res.is_err());
    }

    #[test]
    fn interactions_counter_advances_even_on_unproductive_steps() {
        let cfg = Configuration::from_counts(vec![10, 0], 0).unwrap();
        let mut sim = AgentSimulator::new(Usd2, &cfg, SimSeed::from_u64(2));
        for _ in 0..50 {
            let productive = sim.step();
            assert!(
                !productive,
                "all-agree configuration can never be productive"
            );
        }
        assert_eq!(sim.interactions(), 50);
    }
}
