//! Versioned, serializable descriptions of a complete simulation run.
//!
//! A [`ScenarioConfig`] captures everything `usd_run`'s command line can
//! say — population and opinion count, initial bias and undecided seeding,
//! the dynamic, the step-engine backend with its shard/ensemble/parallelism
//! plan, the stop budget and the master seed — as one JSON document that a
//! job server can queue, persist and replay.  The contract that makes the
//! service trustworthy is *equivalence*: running a scenario through
//! [`crate::runner::run_scenario`] (which both `pp_serve` workers and
//! `usd_run --scenario` call) produces a result bit-identical to typing the
//! corresponding flags into `usd_run` by hand, because the scenario maps
//! 1:1 onto the same [`InitialConfig`] builder and the same seed-derivation
//! and budget formulas.
//!
//! ## Schema (version 1)
//!
//! ```json
//! {
//!   "scenario": 1,
//!   "seed": 7,
//!   "n": 100000,
//!   "k": 8,
//!   "dynamic": "usd",
//!   "replicas": 1,
//!   "samples": 400,
//!   "bias": {"kind": "additive-sqrt-n-log-n", "mult": 2.0},
//!   "undecided": {"kind": "fraction", "fraction": 0.2},
//!   "engine": "batched",
//!   "shards": 8,
//!   "epoch": 1000000,
//!   "fidelity": {"promote": 8.0, "demote": 1.5, "mass-floor": 0.25, "dwell": 100000},
//!   "threads": 4,
//!   "budget": 500000000,
//!   "j": 5
//! }
//! ```
//!
//! * `scenario` (required) is the format version; this build reads 1.
//! * `seed`, `n`, `k`, `dynamic`, `replicas` and `samples` are always
//!   written; the remaining fields are optional and omitted when unset, so
//!   serialize → parse → serialize is byte-stable.
//! * `bias` mirrors [`BiasSpec`] (kinds `additive`, `additive-sqrt-n-log-n`,
//!   `multiplicative`, `two-way-tie`, `power-law`, `dirichlet-like`);
//!   `undecided` mirrors [`UndecidedSpec`] (kinds `count`, `fraction`,
//!   `max-admissible`).
//! * `engine` is one of `exact`, `batched`, `sharded`, `mean-field`,
//!   `hybrid`; when absent the run uses the CLI's defaulting rule (exact,
//!   or batched when `replicas > 1`).
//! * `fidelity` tunes the hybrid engine's fluctuation detector (the
//!   `usd_run --fidelity-*` flags): `promote`/`demote` are the
//!   drift-to-noise switch ratios, `mass-floor` the `√n`-scaled
//!   minimum-mass guard, `dwell` the post-switch dwell in interactions
//!   (0 = one parallel-time unit `n`).  Subfields are optional and default
//!   like the flags; the whole object is only legal with
//!   `"engine": "hybrid"`.
//! * `j` carries the j-majority sample count and is only written (and only
//!   legal) when `dynamic` is `j-majority` — the same rule as `usd_run --j`.
//! * `budget` overrides the derived interaction budget
//!   `⌊400·k·n·ln n⌋ + 10⁷`; leave it unset for CLI equivalence.
//! * Unknown fields are rejected by name, so schema drift fails loudly.
//!
//! Validation reuses the CLI's diagnostics verbatim (field ↔ flag names map
//! 1:1), so a config rejected here is rejected with the same sentence
//! `usd_run` would print.

use crate::json::{Json, ObjBuilder};
use pp_core::ensemble::EnsembleChoice;
use pp_core::{EngineChoice, FidelityConfig, Parallelism};
use pp_workloads::{BiasSpec, InitialConfig, UndecidedSpec};

/// The scenario format version this build writes and reads.
pub const SCENARIO_FORMAT_VERSION: u32 = 1;

/// Which process a scenario drives — the USD or a baseline sampling
/// dynamic (same names as `usd_run --dynamic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dynamic {
    /// The k-opinion undecided state dynamics (default; all five engines).
    Usd,
    /// The voter model (copy one sampled opinion).
    Voter,
    /// Two-choices (adopt when two samples agree).
    TwoChoices,
    /// 3-majority (majority of three samples).
    ThreeMajority,
    /// j-majority with a configurable sample count.
    JMajority,
    /// The median rule over the opinion order.
    Median,
}

impl Dynamic {
    /// Every dynamic, in documentation order.
    pub const ALL: [Dynamic; 6] = [
        Dynamic::Usd,
        Dynamic::Voter,
        Dynamic::TwoChoices,
        Dynamic::ThreeMajority,
        Dynamic::JMajority,
        Dynamic::Median,
    ];

    /// The canonical name (the `usd_run --dynamic` spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dynamic::Usd => "usd",
            Dynamic::Voter => "voter",
            Dynamic::TwoChoices => "two-choices",
            Dynamic::ThreeMajority => "3-majority",
            Dynamic::JMajority => "j-majority",
            Dynamic::Median => "median",
        }
    }

    /// Parses a dynamic name (same diagnostics as the CLI).
    ///
    /// # Errors
    ///
    /// Returns the CLI's unknown-dynamic message.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "usd" => Ok(Dynamic::Usd),
            "voter" => Ok(Dynamic::Voter),
            "two-choices" => Ok(Dynamic::TwoChoices),
            "3-majority" => Ok(Dynamic::ThreeMajority),
            "j-majority" => Ok(Dynamic::JMajority),
            "median" => Ok(Dynamic::Median),
            other => Err(format!(
                "unknown dynamic {other:?} (expected usd, voter, two-choices, 3-majority, \
                 j-majority, or median)"
            )),
        }
    }
}

impl std::fmt::Display for Dynamic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete, versioned description of one simulation run.
///
/// Build with [`ScenarioConfig::new`] plus the `with_*` setters, or parse a
/// JSON document with [`ScenarioConfig::from_json`]; [`validate`] applies
/// the CLI's cross-field rules, [`to_initial_config`] hands the workload
/// half to [`InitialConfig`].
///
/// [`validate`]: ScenarioConfig::validate
/// [`to_initial_config`]: ScenarioConfig::to_initial_config
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// The master seed (the run itself uses `SimSeed::from_u64(seed)` and
    /// its children, exactly like `usd_run --seed`).
    pub seed: u64,
    /// Population size `n`.
    pub population: u64,
    /// Number of opinions `k`.
    pub opinions: usize,
    /// Initial bias specification.
    pub bias: BiasSpec,
    /// Initial undecided seeding.
    pub undecided: UndecidedSpec,
    /// The process to drive.
    pub dynamic: Dynamic,
    /// The j-majority sample count (meaningful only for that dynamic).
    pub majority_samples: usize,
    /// The step-engine backend; `None` applies the CLI defaulting rule
    /// (exact, or batched when `replicas > 1`).
    pub engine: Option<EngineChoice>,
    /// Shard count for the sharded backend.
    pub shards: Option<usize>,
    /// Epoch length override for the sharded backend.
    pub epoch: Option<u64>,
    /// Fidelity-controller thresholds for the hybrid backend.
    pub fidelity: Option<FidelityConfig>,
    /// Lockstep replica count (`1` = a single run).
    pub replicas: usize,
    /// Worker-thread cap for the parallel engines.
    pub threads: Option<usize>,
    /// Trajectory sample count (sets the recorder period; never affects
    /// the result).
    pub samples: u64,
    /// Explicit interaction budget; `None` derives the CLI's
    /// `⌊400·k·n·ln n⌋ + 10⁷`.
    pub budget: Option<u64>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            population: 100_000,
            opinions: 8,
            bias: BiasSpec::None,
            undecided: UndecidedSpec::None,
            dynamic: Dynamic::Usd,
            majority_samples: 3,
            engine: None,
            shards: None,
            epoch: None,
            fidelity: None,
            replicas: 1,
            threads: None,
            samples: 400,
            budget: None,
        }
    }
}

impl ScenarioConfig {
    /// A scenario over `n` agents and `k` opinions with the CLI's defaults
    /// everywhere else.
    #[must_use]
    pub fn new(n: u64, k: usize) -> Self {
        ScenarioConfig {
            population: n,
            opinions: k,
            ..ScenarioConfig::default()
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the bias specification.
    #[must_use]
    pub fn with_bias(mut self, bias: BiasSpec) -> Self {
        self.bias = bias;
        self
    }

    /// Sets the undecided seeding.
    #[must_use]
    pub fn with_undecided(mut self, undecided: UndecidedSpec) -> Self {
        self.undecided = undecided;
        self
    }

    /// Sets the dynamic.
    #[must_use]
    pub fn with_dynamic(mut self, dynamic: Dynamic) -> Self {
        self.dynamic = dynamic;
        self
    }

    /// Sets the j-majority sample count.
    #[must_use]
    pub fn with_majority_samples(mut self, j: usize) -> Self {
        self.majority_samples = j;
        self
    }

    /// Selects a step-engine backend explicitly.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineChoice) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Sets the shard count (sharded backend).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Sets the sharded epoch length.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Sets the hybrid backend's fidelity thresholds.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: FidelityConfig) -> Self {
        self.fidelity = Some(fidelity);
        self
    }

    /// Sets the lockstep replica count.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Caps the parallel engines' worker threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the trajectory sample count.
    #[must_use]
    pub fn with_samples(mut self, samples: u64) -> Self {
        self.samples = samples;
        self
    }

    /// Overrides the derived interaction budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The backend the run actually uses: the explicit choice, or the
    /// CLI's default (exact; batched when `replicas > 1`).
    #[must_use]
    pub fn effective_engine(&self) -> EngineChoice {
        self.engine.unwrap_or(if self.replicas > 1 {
            EngineChoice::Batched
        } else {
            EngineChoice::Exact
        })
    }

    /// The CLI's derived interaction budget: `⌊400·k·n·ln n⌋ + 10⁷`.
    #[must_use]
    pub fn derived_budget(&self) -> u64 {
        let n_f = self.population as f64;
        (400.0 * self.opinions as f64 * n_f * n_f.ln()) as u64 + 10_000_000
    }

    /// The budget the run chases: the explicit override, else the derived
    /// formula.
    #[must_use]
    pub fn interaction_budget(&self) -> u64 {
        self.budget.unwrap_or_else(|| self.derived_budget())
    }

    /// The fidelity thresholds the run resolves to: the explicit object, or
    /// the controller defaults (the CLI's `--fidelity-*` defaulting rule).
    #[must_use]
    pub fn effective_fidelity(&self) -> FidelityConfig {
        self.fidelity.unwrap_or_default()
    }

    /// The trajectory recorder's sample period (the CLI's
    /// `(budget / samples).max(1).min(n)` rule).
    #[must_use]
    pub fn sample_period(&self) -> u64 {
        (self.interaction_budget() / self.samples)
            .max(1)
            .min(self.population.max(1))
    }

    /// Applies the CLI's cross-field rules, with its diagnostics verbatim
    /// (scenario fields map 1:1 onto the flags the messages name).
    ///
    /// # Errors
    ///
    /// Returns the same lowercase sentence `usd_run` prints for the
    /// equivalent flag combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.samples == 0 {
            return Err("--samples must be positive".to_string());
        }
        if self.majority_samples == 0 {
            return Err("--j must be positive".to_string());
        }
        let engine = self.effective_engine();
        if self.dynamic != Dynamic::Usd
            && matches!(
                engine,
                EngineChoice::Sharded | EngineChoice::MeanField | EngineChoice::Hybrid
            )
        {
            return Err(format!(
                "the {engine} engine only drives the USD: sampling dynamics update from \
                 j-agent samples, so the pairwise cross-shard reconciliation and the USD's \
                 ODE limit (which the hybrid engine switches into) do not apply — use \
                 --engine exact or --engine batched"
            ));
        }
        if (self.shards.is_some() || self.epoch.is_some()) && engine != EngineChoice::Sharded {
            return Err("--shards/--epoch require --engine sharded".to_string());
        }
        if self.fidelity.is_some() && engine != EngineChoice::Hybrid {
            return Err(
                "--fidelity-promote/--fidelity-demote/--fidelity-mass-floor/--fidelity-dwell \
                 tune the hybrid fidelity controller; they require --engine hybrid"
                    .to_string(),
            );
        }
        if let Err(msg) = self.effective_fidelity().validate() {
            return Err(format!("invalid fidelity thresholds: {msg}"));
        }
        if self.shards == Some(0) {
            return Err("--shards must be positive".to_string());
        }
        if self.epoch == Some(0) {
            return Err("--epoch must be positive".to_string());
        }
        if self.replicas == 0 {
            return Err("--replicas must be positive".to_string());
        }
        if self.threads == Some(0) {
            return Err("--threads must be positive".to_string());
        }
        if self.budget == Some(0) {
            return Err("budget must be positive".to_string());
        }
        if self.threads.is_some() && engine != EngineChoice::Sharded && self.replicas <= 1 {
            return Err(
                "--threads caps the parallel engines' workers; it requires --engine sharded \
                 or --replicas > 1"
                    .to_string(),
            );
        }
        if self.replicas > 1 {
            self.ensemble_choice().validate().map_err(|e| {
                format!(
                    "{e}: the replica ensemble shares skip-ahead row computations, so only \
                     the batched base engine can run inside it — use --engine batched (or \
                     drop --replicas)"
                )
            })?;
        }
        Ok(())
    }

    /// The workload spec this scenario builds — the exact sequence of
    /// [`InitialConfig`] builder calls `usd_run` makes for the equivalent
    /// flags, so configurations (and therefore trajectories) match the CLI
    /// bit-for-bit.
    #[must_use]
    pub fn to_initial_config(&self) -> InitialConfig {
        let mut spec = InitialConfig::new(self.population, self.opinions)
            .bias(self.bias)
            .undecided(self.undecided)
            .engine(self.effective_engine());
        if let Some(shards) = self.shards {
            spec = spec.shards(shards);
        }
        if let Some(fidelity) = self.fidelity {
            spec = spec.fidelity(fidelity);
        }
        if self.replicas > 1 {
            spec = spec.replicas(self.replicas);
        }
        if let Some(threads) = self.threads {
            spec = spec.threads(threads);
        }
        spec
    }

    /// Recovers a scenario from a workload spec (a USD run; sampling
    /// dynamics carry no workload-side marker).  The inverse of
    /// [`ScenarioConfig::to_initial_config`] up to the engine-defaulting
    /// rule: the spec's engine is always explicit, so the round trip pins
    /// it rather than re-deriving the default.
    #[must_use]
    pub fn from_initial_config(spec: &InitialConfig, seed: u64) -> Self {
        let mut scenario = ScenarioConfig::new(spec.population(), spec.opinions())
            .with_seed(seed)
            .with_bias(spec.bias_spec())
            .with_undecided(spec.undecided_spec())
            .with_engine(spec.engine_choice());
        if let Some(shards) = spec.shard_count() {
            scenario = scenario.with_shards(shards);
        }
        if let Some(fidelity) = spec.fidelity_override() {
            scenario = scenario.with_fidelity(fidelity);
        }
        if let Some(replicas) = spec.replica_count() {
            scenario.replicas = replicas;
        }
        if let Some(threads) = spec.parallelism_choice().requested() {
            scenario = scenario.with_threads(threads);
        }
        scenario
    }

    /// The ensemble choice a `replicas > 1` scenario runs under (same
    /// construction as [`InitialConfig::ensemble_choice`]).
    #[must_use]
    pub fn ensemble_choice(&self) -> EnsembleChoice {
        EnsembleChoice::new(self.replicas)
            .with_base(self.effective_engine())
            .with_parallelism(self.parallelism())
    }

    /// The parallelism knob the scenario resolves to.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        match self.threads {
            Some(t) => Parallelism::fixed(t),
            None => Parallelism::auto(),
        }
    }

    /// Serializes the scenario as its canonical version-1 JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// The scenario as a [`Json`] tree (canonical field order).
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        ObjBuilder::new()
            .field("scenario", Json::U64(u64::from(SCENARIO_FORMAT_VERSION)))
            .field("seed", Json::U64(self.seed))
            .field("n", Json::U64(self.population))
            .field("k", Json::U64(self.opinions as u64))
            .field("dynamic", Json::Str(self.dynamic.name().to_string()))
            .opt(
                "j",
                (self.dynamic == Dynamic::JMajority)
                    .then_some(Json::U64(self.majority_samples as u64)),
            )
            .opt("bias", bias_to_json(self.bias))
            .opt("undecided", undecided_to_json(self.undecided))
            .opt(
                "engine",
                self.engine.map(|e| Json::Str(e.name().to_string())),
            )
            .opt("shards", self.shards.map(|s| Json::U64(s as u64)))
            .opt("epoch", self.epoch.map(Json::U64))
            .opt("fidelity", self.fidelity.map(fidelity_to_json))
            .field("replicas", Json::U64(self.replicas as u64))
            .opt("threads", self.threads.map(|t| Json::U64(t as u64)))
            .field("samples", Json::U64(self.samples))
            .opt("budget", self.budget.map(Json::U64))
            .build()
    }

    /// Parses a version-1 scenario document, rejecting unknown fields and
    /// out-of-domain values by name.
    ///
    /// # Errors
    ///
    /// Returns a named diagnostic for malformed JSON, a missing or
    /// unsupported `scenario` version, unknown fields, or field values of
    /// the wrong type; cross-field rules are [`ScenarioConfig::validate`]'s
    /// job, not the parser's.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("malformed scenario JSON: {e}"))?;
        Self::from_json_value(&doc)
    }

    /// [`ScenarioConfig::from_json`] over an already-parsed tree.
    ///
    /// # Errors
    ///
    /// Same contract as [`ScenarioConfig::from_json`].
    pub fn from_json_value(doc: &Json) -> Result<Self, String> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| "a scenario must be a JSON object".to_string())?;
        let version = doc
            .get("scenario")
            .ok_or_else(|| {
                "missing \"scenario\" version field (this build writes scenario 1)".to_string()
            })?
            .as_u64()
            .ok_or_else(|| "\"scenario\" must be an unsigned integer".to_string())?;
        if version != u64::from(SCENARIO_FORMAT_VERSION) {
            return Err(format!(
                "unsupported scenario version {version} (this build reads version 1)"
            ));
        }
        let mut scenario = ScenarioConfig::default();
        let mut j_given = false;
        for (key, value) in pairs {
            match key.as_str() {
                "scenario" => {}
                "seed" => scenario.seed = field_u64(value, "seed")?,
                "n" => scenario.population = field_u64(value, "n")?,
                "k" => scenario.opinions = field_usize(value, "k")?,
                "dynamic" => {
                    scenario.dynamic = Dynamic::parse(
                        value
                            .as_str()
                            .ok_or_else(|| "\"dynamic\" must be a string".to_string())?,
                    )?;
                }
                "j" => {
                    j_given = true;
                    scenario.majority_samples = field_usize(value, "j")?;
                }
                "bias" => scenario.bias = bias_from_json(value)?,
                "undecided" => scenario.undecided = undecided_from_json(value)?,
                "engine" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| "\"engine\" must be a string".to_string())?;
                    scenario.engine = Some(name.parse().map_err(|e| format!("engine: {e}"))?);
                }
                "shards" => scenario.shards = Some(field_usize(value, "shards")?),
                "epoch" => scenario.epoch = Some(field_u64(value, "epoch")?),
                "fidelity" => scenario.fidelity = Some(fidelity_from_json(value)?),
                "replicas" => scenario.replicas = field_usize(value, "replicas")?,
                "threads" => scenario.threads = Some(field_usize(value, "threads")?),
                "samples" => scenario.samples = field_u64(value, "samples")?,
                "budget" => scenario.budget = Some(field_u64(value, "budget")?),
                other => {
                    return Err(format!(
                        "unknown scenario field {other:?} (scenario 1 fields: scenario, seed, \
                         n, k, dynamic, j, bias, undecided, engine, shards, epoch, fidelity, \
                         replicas, threads, samples, budget)"
                    ))
                }
            }
        }
        if j_given && scenario.dynamic != Dynamic::JMajority {
            return Err("--j only applies to --dynamic j-majority".to_string());
        }
        Ok(scenario)
    }
}

fn field_u64(value: &Json, name: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("{name:?} must be an unsigned integer"))
}

fn field_usize(value: &Json, name: &str) -> Result<usize, String> {
    let v = field_u64(value, name)?;
    usize::try_from(v).map_err(|_| format!("{name:?} does not fit a usize"))
}

fn field_f64(value: &Json, name: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("{name:?} must be a number"))
}

fn fidelity_to_json(fidelity: FidelityConfig) -> Json {
    ObjBuilder::new()
        .field("promote", Json::F64(fidelity.promote_ratio))
        .field("demote", Json::F64(fidelity.demote_ratio))
        .field("mass-floor", Json::F64(fidelity.mass_floor))
        .field("dwell", Json::U64(fidelity.min_dwell))
        .build()
}

fn fidelity_from_json(value: &Json) -> Result<FidelityConfig, String> {
    let pairs = value
        .as_object()
        .ok_or_else(|| "\"fidelity\" must be an object".to_string())?;
    let mut fidelity = FidelityConfig::default();
    for (key, subvalue) in pairs {
        match key.as_str() {
            "promote" => fidelity.promote_ratio = field_f64(subvalue, "promote")?,
            "demote" => fidelity.demote_ratio = field_f64(subvalue, "demote")?,
            "mass-floor" => fidelity.mass_floor = field_f64(subvalue, "mass-floor")?,
            "dwell" => fidelity.min_dwell = field_u64(subvalue, "dwell")?,
            other => {
                return Err(format!(
                    "unknown fidelity field {other:?} (fidelity fields: promote, demote, \
                     mass-floor, dwell)"
                ))
            }
        }
    }
    Ok(fidelity)
}

fn bias_to_json(bias: BiasSpec) -> Option<Json> {
    let tagged = |kind: &str, field: &str, value: Json| {
        ObjBuilder::new()
            .field("kind", Json::Str(kind.to_string()))
            .field(field, value)
            .build()
    };
    match bias {
        BiasSpec::None => None,
        BiasSpec::Additive(beta) => Some(tagged("additive", "beta", Json::U64(beta))),
        BiasSpec::AdditiveInSqrtNLogN(mult) => {
            Some(tagged("additive-sqrt-n-log-n", "mult", Json::F64(mult)))
        }
        BiasSpec::Multiplicative(factor) => {
            Some(tagged("multiplicative", "factor", Json::F64(factor)))
        }
        BiasSpec::TwoWayTie(fraction) => {
            Some(tagged("two-way-tie", "fraction", Json::F64(fraction)))
        }
        BiasSpec::PowerLaw(exponent) => Some(tagged("power-law", "exponent", Json::F64(exponent))),
        BiasSpec::DirichletLike(shape) => Some(tagged(
            "dirichlet-like",
            "shape",
            Json::U64(u64::from(shape)),
        )),
    }
}

fn bias_from_json(value: &Json) -> Result<BiasSpec, String> {
    if value.is_null() {
        return Ok(BiasSpec::None);
    }
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "\"bias\" must be an object with a \"kind\" string".to_string())?;
    let req = |field: &str| {
        value
            .get(field)
            .ok_or_else(|| format!("bias kind {kind:?} requires a {field:?} field"))
    };
    match kind {
        "additive" => Ok(BiasSpec::Additive(field_u64(req("beta")?, "beta")?)),
        "additive-sqrt-n-log-n" => Ok(BiasSpec::AdditiveInSqrtNLogN(field_f64(
            req("mult")?,
            "mult",
        )?)),
        "multiplicative" => Ok(BiasSpec::Multiplicative(field_f64(
            req("factor")?,
            "factor",
        )?)),
        "two-way-tie" => Ok(BiasSpec::TwoWayTie(field_f64(
            req("fraction")?,
            "fraction",
        )?)),
        "power-law" => Ok(BiasSpec::PowerLaw(field_f64(req("exponent")?, "exponent")?)),
        "dirichlet-like" => {
            let shape = field_u64(req("shape")?, "shape")?;
            u32::try_from(shape)
                .map(BiasSpec::DirichletLike)
                .map_err(|_| "\"shape\" does not fit a u32".to_string())
        }
        other => Err(format!(
            "unknown bias kind {other:?} (expected additive, additive-sqrt-n-log-n, \
             multiplicative, two-way-tie, power-law, or dirichlet-like)"
        )),
    }
}

fn undecided_to_json(undecided: UndecidedSpec) -> Option<Json> {
    match undecided {
        UndecidedSpec::None => None,
        UndecidedSpec::Count(count) => Some(
            ObjBuilder::new()
                .field("kind", Json::Str("count".to_string()))
                .field("count", Json::U64(count))
                .build(),
        ),
        UndecidedSpec::Fraction(fraction) => Some(
            ObjBuilder::new()
                .field("kind", Json::Str("fraction".to_string()))
                .field("fraction", Json::F64(fraction))
                .build(),
        ),
        UndecidedSpec::MaxAdmissible => Some(
            ObjBuilder::new()
                .field("kind", Json::Str("max-admissible".to_string()))
                .build(),
        ),
    }
}

fn undecided_from_json(value: &Json) -> Result<UndecidedSpec, String> {
    if value.is_null() {
        return Ok(UndecidedSpec::None);
    }
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "\"undecided\" must be an object with a \"kind\" string".to_string())?;
    match kind {
        "count" => {
            let count = value
                .get("count")
                .ok_or_else(|| "undecided kind \"count\" requires a \"count\" field".to_string())?;
            Ok(UndecidedSpec::Count(field_u64(count, "count")?))
        }
        "fraction" => {
            let fraction = value.get("fraction").ok_or_else(|| {
                "undecided kind \"fraction\" requires a \"fraction\" field".to_string()
            })?;
            Ok(UndecidedSpec::Fraction(field_f64(fraction, "fraction")?))
        }
        "max-admissible" => Ok(UndecidedSpec::MaxAdmissible),
        other => Err(format!(
            "unknown undecided kind {other:?} (expected count, fraction, or max-admissible)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_byte_stable() {
        let scenario = ScenarioConfig::new(2_000, 3).with_seed(7);
        let json = scenario.to_json();
        let back = ScenarioConfig::from_json(&json).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn every_field_round_trips() {
        let scenario = ScenarioConfig::new(50_000, 6)
            .with_seed(99)
            .with_bias(BiasSpec::AdditiveInSqrtNLogN(2.5))
            .with_undecided(UndecidedSpec::Fraction(0.125))
            .with_engine(EngineChoice::Sharded)
            .with_shards(8)
            .with_epoch(1_000_000)
            .with_threads(4)
            .with_samples(100)
            .with_budget(123_456_789);
        let json = scenario.to_json();
        let back = ScenarioConfig::from_json(&json).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn unknown_fields_and_versions_fail_by_name() {
        let err = ScenarioConfig::from_json("{\"scenario\":1,\"frobnicate\":1}").unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        let err = ScenarioConfig::from_json("{\"scenario\":2,\"n\":10}").unwrap_err();
        assert!(err.contains("unsupported scenario version 2"), "{err}");
        let err = ScenarioConfig::from_json("{\"n\":10}").unwrap_err();
        assert!(err.contains("missing \"scenario\""), "{err}");
    }

    #[test]
    fn validation_matches_cli_diagnostics() {
        let sharded_sampler = ScenarioConfig::new(1_000, 3)
            .with_dynamic(Dynamic::Voter)
            .with_engine(EngineChoice::Sharded);
        let err = sharded_sampler.validate().unwrap_err();
        assert!(
            err.starts_with("the sharded engine only drives the USD"),
            "{err}"
        );

        let exact_ensemble = ScenarioConfig::new(1_000, 3)
            .with_replicas(4)
            .with_engine(EngineChoice::Exact);
        let err = exact_ensemble.validate().unwrap_err();
        assert!(err.contains("only the batched base engine"), "{err}");

        let stray_shards = ScenarioConfig::new(1_000, 3).with_shards(4);
        assert_eq!(
            stray_shards.validate().unwrap_err(),
            "--shards/--epoch require --engine sharded"
        );

        let stray_threads = ScenarioConfig::new(1_000, 3).with_threads(4);
        assert!(stray_threads
            .validate()
            .unwrap_err()
            .contains("--threads caps"));
    }

    #[test]
    fn engine_defaulting_matches_the_cli() {
        assert_eq!(
            ScenarioConfig::new(10, 2).effective_engine(),
            EngineChoice::Exact
        );
        assert_eq!(
            ScenarioConfig::new(10, 2)
                .with_replicas(4)
                .effective_engine(),
            EngineChoice::Batched
        );
        // A replica ensemble scenario validates like `--replicas R` with no
        // explicit engine: the default base is batched, which is legal.
        ScenarioConfig::new(10, 2)
            .with_replicas(4)
            .validate()
            .unwrap();
    }

    #[test]
    fn initial_config_round_trip_preserves_the_spec() {
        let scenario = ScenarioConfig::new(30_000, 5)
            .with_seed(11)
            .with_bias(BiasSpec::Multiplicative(1.5))
            .with_undecided(UndecidedSpec::MaxAdmissible)
            .with_engine(EngineChoice::Batched);
        let spec = scenario.to_initial_config();
        let back = ScenarioConfig::from_initial_config(&spec, 11);
        assert_eq!(back.to_initial_config(), spec);
        assert_eq!(back.bias, scenario.bias);
        assert_eq!(back.undecided, scenario.undecided);
        assert_eq!(back.engine, Some(EngineChoice::Batched));
    }

    #[test]
    fn fidelity_round_trips_and_validates() {
        let scenario = ScenarioConfig::new(50_000, 3)
            .with_engine(EngineChoice::Hybrid)
            .with_fidelity(FidelityConfig {
                promote_ratio: 12.0,
                demote_ratio: 3.0,
                mass_floor: 6.0,
                min_dwell: 25_000,
            });
        scenario.validate().unwrap();
        let json = scenario.to_json();
        let back = ScenarioConfig::from_json(&json).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.to_json(), json);
        // The workload-spec round trip carries the thresholds too.
        let spec = scenario.to_initial_config();
        assert_eq!(spec.fidelity_override(), scenario.fidelity);
        assert_eq!(
            ScenarioConfig::from_initial_config(&spec, 1).fidelity,
            scenario.fidelity
        );
    }

    #[test]
    fn fidelity_diagnostics_match_the_cli() {
        let stray = ScenarioConfig::new(1_000, 2).with_fidelity(FidelityConfig::default());
        assert!(
            stray
                .validate()
                .unwrap_err()
                .ends_with("they require --engine hybrid"),
            "{}",
            stray.validate().unwrap_err()
        );
        let bad = ScenarioConfig::new(1_000, 2)
            .with_engine(EngineChoice::Hybrid)
            .with_fidelity(FidelityConfig {
                promote_ratio: 2.0,
                demote_ratio: 4.0,
                ..FidelityConfig::default()
            });
        assert!(
            bad.validate()
                .unwrap_err()
                .starts_with("invalid fidelity thresholds"),
            "{}",
            bad.validate().unwrap_err()
        );
        // Partial objects default like the flags; unknown subfields fail by
        // name, the same rule as the top-level schema.
        let partial = ScenarioConfig::from_json(
            "{\"scenario\":1,\"engine\":\"hybrid\",\"fidelity\":{\"promote\":10.0}}",
        )
        .unwrap();
        assert_eq!(
            partial.fidelity,
            Some(FidelityConfig {
                promote_ratio: 10.0,
                ..FidelityConfig::default()
            })
        );
        let err =
            ScenarioConfig::from_json("{\"scenario\":1,\"fidelity\":{\"haste\":1}}").unwrap_err();
        assert!(err.contains("haste"), "{err}");
    }

    #[test]
    fn j_rides_only_with_j_majority() {
        let scenario = ScenarioConfig::new(1_000, 3)
            .with_dynamic(Dynamic::JMajority)
            .with_majority_samples(5);
        let back = ScenarioConfig::from_json(&scenario.to_json()).unwrap();
        assert_eq!(back.majority_samples, 5);
        // For other dynamics the field is omitted on write and rejected on
        // read — the CLI's `--j only applies` rule.
        let voter = ScenarioConfig::new(1_000, 3).with_dynamic(Dynamic::Voter);
        assert!(!voter.to_json().contains("\"j\""));
        let err = ScenarioConfig::from_json("{\"scenario\":1,\"dynamic\":\"voter\",\"j\":5}")
            .unwrap_err();
        assert_eq!(err, "--j only applies to --dynamic j-majority");
    }
}
