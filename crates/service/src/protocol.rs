//! The NDJSON wire protocol and event-line formats.
//!
//! Every message — request, response, streamed event — is one JSON object
//! per line.  The same protocol runs over `pp_serve`'s stdin/stdout and its
//! Unix domain socket.
//!
//! ## Requests
//!
//! | op         | fields                         | effect                              |
//! |------------|--------------------------------|-------------------------------------|
//! | `submit`   | `scenario` (object), `priority`| queue a job, reply `{"ok":true,"job":N}` |
//! | `status`   | `job`                          | one job's state snapshot            |
//! | `result`   | `job`                          | the canonical result document       |
//! | `cancel`   | `job`                          | request cancellation                |
//! | `list`     | —                              | all jobs, id order                  |
//! | `watch`    | `job`, optional `from`         | stream events until terminal        |
//! | `wait`     | `job`                          | block until terminal, reply status  |
//! | `shutdown` | —                              | graceful server stop                |
//!
//! ## Responses and events
//!
//! Replies carry `"ok": true` (plus op-specific fields) or
//! `{"ok":false,"error":"..."}`.  `watch` streams sequence-numbered lines:
//! `{"event":"progress","job":N,"seq":K,...}` snapshots and one terminal
//! `{"event":"done","job":N,"seq":K,"state":"done",...}` line — the
//! [`check_progress_line`] / [`check_result_doc`] validators pin both
//! schemas (CI runs them over live streams via `service_check`).

use crate::job::{JobId, JobRecord, JobState};
use crate::json::{Json, ObjBuilder};
use crate::runner::ProgressEvent;
use crate::scenario::ScenarioConfig;
use pp_core::MetricsSnapshot;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Queue a scenario.
    Submit {
        /// The scenario to run.
        scenario: ScenarioConfig,
        /// Scheduling priority (default 0).
        priority: i64,
    },
    /// One job's state snapshot.
    Status(JobId),
    /// One job's canonical result document.
    Result(JobId),
    /// Request cancellation.
    Cancel(JobId),
    /// Every job, in id order.
    List,
    /// Stream a job's events from a sequence number until it is terminal.
    Watch(JobId, u64),
    /// Block until a job is terminal, then reply with its status.
    Wait(JobId),
    /// Graceful server stop.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a named diagnostic for malformed JSON, unknown ops and missing
/// or mistyped fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string \"op\" field".to_string())?;
    let job = |doc: &Json| -> Result<JobId, String> {
        doc.get("job")
            .and_then(Json::as_u64)
            .map(JobId)
            .ok_or_else(|| format!("op {op:?} needs an unsigned integer \"job\" field"))
    };
    match op {
        "submit" => {
            let scenario = doc
                .get("scenario")
                .ok_or_else(|| "op \"submit\" needs a \"scenario\" object".to_string())?;
            let scenario = ScenarioConfig::from_json_value(scenario)?;
            let priority = match doc.get("priority") {
                None => 0,
                Some(Json::U64(v)) => {
                    i64::try_from(*v).map_err(|_| "\"priority\" does not fit an i64".to_string())?
                }
                Some(Json::I64(v)) => *v,
                Some(_) => return Err("\"priority\" must be an integer".to_string()),
            };
            Ok(Request::Submit { scenario, priority })
        }
        "status" => Ok(Request::Status(job(&doc)?)),
        "result" => Ok(Request::Result(job(&doc)?)),
        "cancel" => Ok(Request::Cancel(job(&doc)?)),
        "list" => Ok(Request::List),
        "watch" => {
            let from = match doc.get("from") {
                None => 0,
                Some(value) => value
                    .as_u64()
                    .ok_or_else(|| "\"from\" must be an unsigned integer".to_string())?,
            };
            Ok(Request::Watch(job(&doc)?, from))
        }
        "wait" => Ok(Request::Wait(job(&doc)?)),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op {other:?} (expected submit, status, result, cancel, list, watch, wait, \
             or shutdown)"
        )),
    }
}

/// Builds the error reply line (no trailing newline).
#[must_use]
pub fn error_reply(message: &str) -> String {
    ObjBuilder::new()
        .field("ok", Json::Bool(false))
        .field("error", Json::Str(message.to_string()))
        .build()
        .to_json()
}

/// Builds an `{"ok":true,...}` reply from extra fields.
#[must_use]
pub fn ok_reply(fields: Vec<(String, Json)>) -> String {
    let mut builder = ObjBuilder::new().field("ok", Json::Bool(true));
    for (key, value) in fields {
        builder = builder.field(&key, value);
    }
    builder.build().to_json()
}

/// Serializes a metrics snapshot as nested objects (counter/gauge/histogram
/// maps keyed by metric name).
#[must_use]
pub fn metrics_json(metrics: &MetricsSnapshot) -> Json {
    let counters = metrics
        .counters()
        .iter()
        .map(|(name, v)| (name.clone(), Json::U64(*v)))
        .collect();
    let gauges = metrics
        .gauges()
        .iter()
        .map(|(name, v)| (name.clone(), Json::F64(*v)))
        .collect();
    let histograms = metrics
        .histograms()
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                ObjBuilder::new()
                    .field("count", Json::U64(h.count))
                    .field("sum", Json::U64(h.sum))
                    .build(),
            )
        })
        .collect();
    ObjBuilder::new()
        .field("counters", Json::Obj(counters))
        .field("gauges", Json::Obj(gauges))
        .field("histograms", Json::Obj(histograms))
        .build()
}

/// Renders one streamed progress line (no trailing newline).
#[must_use]
pub fn progress_event(id: JobId, seq: u64, event: &ProgressEvent) -> String {
    ObjBuilder::new()
        .field("event", Json::Str("progress".to_string()))
        .field("job", Json::U64(id.0))
        .field("seq", Json::U64(seq))
        .opt("interactions", event.interactions.map(Json::U64))
        .opt(
            "supports",
            event
                .supports
                .as_ref()
                .map(|s| Json::Arr(s.iter().map(|&v| Json::U64(v)).collect())),
        )
        .opt("undecided", event.undecided.map(Json::U64))
        .opt("metrics", event.metrics.as_ref().map(metrics_json))
        .build()
        .to_json()
}

/// Renders the terminal event line for a job (no trailing newline).  Done
/// jobs embed their canonical result document; failed jobs their error.
#[must_use]
pub fn done_event(record: &JobRecord, seq: u64, result: Option<&str>) -> String {
    ObjBuilder::new()
        .field("event", Json::Str("done".to_string()))
        .field("job", Json::U64(record.id.0))
        .field("seq", Json::U64(seq))
        .field("state", Json::Str(record.state.name().to_string()))
        .opt("error", record.error.clone().map(Json::Str))
        .opt("result", result.and_then(|text| Json::parse(text).ok()))
        .build()
        .to_json()
}

/// Validates one streamed event line against the protocol schema.
///
/// # Errors
///
/// Names the first schema violation.
pub fn check_progress_line(line: &str) -> Result<(), String> {
    let doc = Json::parse(line).map_err(|e| format!("event line is not JSON: {e}"))?;
    let event = doc
        .get("event")
        .and_then(Json::as_str)
        .ok_or_else(|| "event line needs a string \"event\" field".to_string())?;
    doc.get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| "event line needs an unsigned integer \"job\" field".to_string())?;
    doc.get("seq")
        .and_then(Json::as_u64)
        .ok_or_else(|| "event line needs an unsigned integer \"seq\" field".to_string())?;
    match event {
        "progress" => {
            if let Some(supports) = doc.get("supports") {
                let supports = supports
                    .as_array()
                    .ok_or_else(|| "\"supports\" must be an array".to_string())?;
                if !supports.iter().all(|v| v.as_u64().is_some()) {
                    return Err("\"supports\" entries must be unsigned integers".to_string());
                }
            }
            if let Some(undecided) = doc.get("undecided") {
                undecided
                    .as_u64()
                    .ok_or_else(|| "\"undecided\" must be an unsigned integer".to_string())?;
            }
            if let Some(metrics) = doc.get("metrics") {
                for section in ["counters", "gauges", "histograms"] {
                    metrics
                        .get(section)
                        .and_then(Json::as_object)
                        .ok_or_else(|| format!("\"metrics\" needs a {section:?} object"))?;
                }
            }
            Ok(())
        }
        "done" => {
            let state = JobState::parse(
                doc.get("state")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "\"done\" event needs a string \"state\" field".to_string())?,
            )?;
            if !state.is_terminal() {
                return Err(format!("\"done\" event carries non-terminal state {state}"));
            }
            match state {
                JobState::Done => check_result_doc(
                    doc.get("result")
                        .ok_or_else(|| "done jobs must embed their \"result\"".to_string())?,
                ),
                JobState::Failed => doc
                    .get("error")
                    .and_then(Json::as_str)
                    .map(|_| ())
                    .ok_or_else(|| "failed jobs must carry a string \"error\"".to_string()),
                _ => Ok(()),
            }
        }
        other => Err(format!(
            "unknown event kind {other:?} (expected progress or done)"
        )),
    }
}

/// Validates a canonical result document (the payload of `result` replies,
/// `result-<id>.json` files, `done` events and `usd_run --scenario` output).
///
/// # Errors
///
/// Names the first schema violation.
pub fn check_result_doc(doc: &Json) -> Result<(), String> {
    fn check_run(run: &Json) -> Result<(), String> {
        let outcome = run
            .get("outcome")
            .and_then(Json::as_str)
            .ok_or_else(|| "run needs a string \"outcome\"".to_string())?;
        if !matches!(
            outcome,
            "consensus" | "opinion-settled" | "budget-exhausted"
        ) {
            return Err(format!("unknown run outcome {outcome:?}"));
        }
        run.get("interactions")
            .and_then(Json::as_u64)
            .ok_or_else(|| "run needs an unsigned integer \"interactions\"".to_string())?;
        run.get("parallel_time")
            .and_then(Json::as_f64)
            .ok_or_else(|| "run needs a numeric \"parallel_time\"".to_string())?;
        let fin = run
            .get("final")
            .ok_or_else(|| "run needs a \"final\" object".to_string())?;
        let supports = fin
            .get("supports")
            .and_then(Json::as_array)
            .ok_or_else(|| "\"final\" needs a \"supports\" array".to_string())?;
        if supports.is_empty() || !supports.iter().all(|v| v.as_u64().is_some()) {
            return Err(
                "\"final.supports\" must be a non-empty unsigned-integer array".to_string(),
            );
        }
        fin.get("undecided")
            .and_then(Json::as_u64)
            .ok_or_else(|| "\"final\" needs an unsigned integer \"undecided\"".to_string())?;
        Ok(())
    }
    if doc.get("result").and_then(Json::as_u64) != Some(1) {
        return Err("result document must carry \"result\": 1".to_string());
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("single") => check_run(
            doc.get("run")
                .ok_or_else(|| "single results need a \"run\" object".to_string())?,
        ),
        Some("ensemble") => {
            let replicas = doc
                .get("replicas")
                .and_then(Json::as_u64)
                .ok_or_else(|| "ensemble results need a \"replicas\" count".to_string())?;
            let results = doc
                .get("results")
                .and_then(Json::as_array)
                .ok_or_else(|| "ensemble results need a \"results\" array".to_string())?;
            if results.len() as u64 != replicas {
                return Err(format!(
                    "\"results\" holds {} runs but \"replicas\" says {replicas}",
                    results.len()
                ));
            }
            results.iter().try_for_each(check_run)
        }
        _ => Err("result document needs \"mode\": \"single\" or \"ensemble\"".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_named_diagnostics() {
        let submit = parse_request(
            r#"{"op":"submit","scenario":{"scenario":1,"seed":3,"n":500,"k":3,"dynamic":"usd","replicas":1,"samples":400},"priority":2}"#,
        )
        .unwrap();
        let Request::Submit { scenario, priority } = submit else {
            panic!("expected a submit request");
        };
        assert_eq!(priority, 2);
        assert_eq!(scenario.seed, 3);
        assert_eq!(scenario.population, 500);

        assert_eq!(
            parse_request(r#"{"op":"status","job":4}"#).unwrap(),
            Request::Status(JobId(4))
        );
        assert_eq!(
            parse_request(r#"{"op":"watch","job":4,"from":10}"#).unwrap(),
            Request::Watch(JobId(4), 10)
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert!(parse_request(r#"{"op":"status"}"#)
            .unwrap_err()
            .contains("\"job\""));
        assert!(parse_request(r#"{"op":"poke"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(parse_request("not json")
            .unwrap_err()
            .contains("malformed request"));
    }

    #[test]
    fn event_lines_satisfy_their_own_validator() {
        let progress = progress_event(
            JobId(3),
            0,
            &ProgressEvent {
                interactions: Some(500),
                supports: Some(vec![10, 20]),
                undecided: Some(5),
                metrics: None,
            },
        );
        check_progress_line(&progress).unwrap();

        let record = JobRecord {
            id: JobId(3),
            priority: 0,
            state: JobState::Failed,
            scenario: ScenarioConfig::new(100, 2),
            error: Some("boom".to_string()),
        };
        check_progress_line(&done_event(&record, 1, None)).unwrap();
        assert!(check_progress_line(r#"{"event":"progress","job":1}"#).is_err());
        assert!(
            check_progress_line(r#"{"event":"done","job":1,"seq":0,"state":"queued"}"#).is_err()
        );
    }

    #[test]
    fn result_docs_validate_by_schema() {
        let good = r#"{"result":1,"mode":"single","run":{"outcome":"consensus","interactions":10,"parallel_time":0.5,"winner":0,"scheduler":null,"rejection_misses":null,"final":{"supports":[100,0],"undecided":0}}}"#;
        check_result_doc(&Json::parse(good).unwrap()).unwrap();
        let bad = r#"{"result":1,"mode":"ensemble","replicas":2,"results":[]}"#;
        assert!(check_result_doc(&Json::parse(bad).unwrap())
            .unwrap_err()
            .contains("replicas"));
    }
}
