//! A small self-contained JSON value, writer and recursive-descent parser.
//!
//! The workspace's `serde` is a vendored no-op facade (no registry access),
//! so every crate that speaks JSON rolls its own.  `pp_core::checkpoint`
//! carries a private u64-only reader sized for engine snapshots; the service
//! layer needs the full scalar set — floats for bias factors, booleans for
//! protocol acks, negative numbers never (the domain is counts and
//! fractions), but the parser accepts them anyway so foreign clients cannot
//! wedge the server with well-formed JSON.
//!
//! Two properties the service relies on:
//!
//! * **Deterministic output.**  Objects keep insertion order (a `Vec` of
//!   pairs, not a hash map) and floats print through Rust's shortest
//!   round-trip `Display`, so writing the same value twice yields the same
//!   bytes — the scenario round-trip tests and the byte-equality contract
//!   between `pp_serve` results and `usd_run --scenario` stand on this.
//! * **Integer exactness.**  Interaction counts exceed 2^53, so integers
//!   parse into `u64`/`i64` variants and never detour through `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (kept exact; counts exceed 2^53).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A number with a fraction or exponent part.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (deterministic re-serialization).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; precision loss past 2^53 is
    /// the caller's concern).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's key/value pairs, in document order.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes the value to compact JSON (no whitespace).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => out.push_str(&write_f64(*v)),
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a position-stamped message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

/// A finite float in Rust's shortest round-trip form, `null` otherwise
/// (JSON has no NaN/∞) — the same convention `usd_run` uses.
#[must_use]
pub fn write_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected {:?} at byte {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected {literal:?} at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not reassembled: the service's
                        // own output never emits them (identifiers and
                        // diagnostics are ASCII), foreign ones map to the
                        // replacement character instead of an error.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("bad escape {other:?} at byte {}", *pos));
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut fractional = false;
    if bytes.get(*pos) == Some(&b'.') {
        fractional = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        fractional = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at byte {start}"));
    }
    if !fractional {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

/// An insertion-ordered object builder — the writer the service's canonical
/// documents go through.
#[derive(Debug, Default)]
pub struct ObjBuilder {
    pairs: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `key: value`.
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.pairs.push((key.to_string(), value));
        self
    }

    /// Appends `key: value` only when `value` is `Some` — the omit-none
    /// convention that keeps serialize → parse → serialize byte-stable.
    #[must_use]
    pub fn opt(self, key: &str, value: Option<Json>) -> Self {
        match value {
            Some(v) => self.field(key, v),
            None => self,
        }
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Obj(self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in [
            "null",
            "true",
            "false",
            "0",
            "18446744073709551615",
            "-7",
            "2.5",
            "\"hi \\\"there\\\"\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ] {
            let parsed = Json::parse(doc).unwrap();
            assert_eq!(parsed.to_json(), doc, "round trip of {doc}");
        }
    }

    #[test]
    fn large_counts_stay_exact() {
        let doc = format!("{{\"interactions\":{}}}", u64::MAX);
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("interactions").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parsed.to_json(), doc);
    }

    #[test]
    fn float_display_is_idempotent() {
        // Display ∘ parse ∘ Display is a fixed point: the second pass
        // serializes to the same bytes, which is all the round-trip
        // contract needs.
        for x in [0.1 + 0.2, 1.0 / 3.0, 2.0, 1e-9, 123456.789] {
            let once = write_f64(x);
            let back = Json::parse(&once).unwrap().as_f64().unwrap();
            assert_eq!(write_f64(back), once);
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = "{\"z\":1,\"a\":2}";
        assert_eq!(Json::parse(doc).unwrap().to_json(), doc);
    }

    #[test]
    fn malformed_documents_fail_with_positions() {
        for doc in ["{", "[1,]", "\"abc", "{\"a\":}", "12 34", "nul"] {
            assert!(Json::parse(doc).is_err(), "{doc} should fail");
        }
    }

    #[test]
    fn control_characters_escape_and_restore() {
        let original = "line\nbreak\ttab \u{0001} end";
        let mut out = String::new();
        write_json_string(original, &mut out);
        assert_eq!(Json::parse(&out).unwrap().as_str(), Some(original));
    }
}
