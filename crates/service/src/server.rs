//! The job queue, scheduler and worker pool.
//!
//! A [`Server`] owns a priority FIFO of jobs and a bounded pool of worker
//! threads (sized through [`pp_core::Parallelism`]).  Workers multiplex
//! concurrent jobs — each job's simulation state is self-contained (own
//! engines, own RNG streams derived from its scenario seed), so scheduling
//! order, pool size and neighbouring jobs can never move a trajectory:
//! submitting the same scenario twice, alone or among twenty rivals,
//! yields bit-identical results (pinned by `tests/service_equivalence.rs`).
//!
//! ## Lifecycle and crash recovery
//!
//! Jobs move `Queued → Running → {Done, Failed, Cancelled}`.  With a state
//! directory configured, every transition persists (see [`crate::job`]),
//! running USD jobs checkpoint periodically, and [`Server::kill`] halts
//! workers at the next pause boundary with a final checkpoint — so a
//! killed (or crashed) server reopened on the same directory re-queues
//! in-flight jobs and resumes them from their captures, finishing on the
//! bit-identical trajectory.  Jobs without a pause seam (the sampling
//! dynamics) restart from scratch instead; determinism makes the re-run's
//! result equal, it just repays the wall time.
//!
//! ## Streaming progress
//!
//! Workers append JSON progress events (sequence-numbered, see
//! [`crate::protocol`]) to each job; [`Server::events`] reads them by
//! sequence range and [`Server::wait_events`] blocks for more — the
//! primitive the front-ends' `watch` op streams from.

use crate::job::{JobId, JobRecord, JobState};
use crate::protocol;
use crate::runner::{self, Interrupt, RunControl, RunVerdict};
use crate::scenario::ScenarioConfig;
use pp_core::{Checkpoint, Parallelism};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Server construction knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Worker pool size; `None` resolves like the parallel engines
    /// (machine parallelism).
    pub workers: Option<usize>,
    /// Persistence root; `None` keeps everything in memory (no crash
    /// recovery, no checkpoints).
    pub state_dir: Option<PathBuf>,
    /// Interactions between progress events (`0` = one parallel-time
    /// unit, i.e. the job's `n`).
    pub progress_every: u64,
    /// Interactions between periodic job checkpoints (`0` = the job's
    /// `n`) — meaningful only with a state directory.
    pub checkpoint_every: u64,
}

/// A point-in-time public view of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's identifier.
    pub id: JobId,
    /// Scheduling priority.
    pub priority: i64,
    /// Lifecycle state.
    pub state: JobState,
    /// Progress events emitted so far.
    pub events: u64,
    /// The failure message, for failed jobs.
    pub error: Option<String>,
    /// The canonical result document, for done jobs.
    pub result: Option<String>,
}

struct Job {
    record: JobRecord,
    result: Option<String>,
    events: Vec<String>,
    cancel: Arc<AtomicBool>,
    resume: bool,
}

struct ServerState {
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    /// Pending job ids; [`pop_next`] picks highest priority, then lowest
    /// id (submission order).
    queue: Vec<u64>,
    shutdown: bool,
}

struct ServerInner {
    cfg: ServerConfig,
    state: Mutex<ServerState>,
    /// Wakes workers (new job, shutdown, kill).
    work_cv: Condvar,
    /// Wakes watchers (new event, state change).
    watch_cv: Condvar,
    /// Cooperative crash switch: workers halt at the next pause boundary,
    /// leaving running jobs resumable on disk.
    kill: AtomicBool,
}

/// The job server.  Dropping it without [`Server::shutdown`] or
/// [`Server::kill`] kills it (workers are halted, not detached).
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("cfg", &self.inner.cfg)
            .finish()
    }
}

impl Server {
    /// Opens a server: restores persisted jobs from the state directory
    /// (if any), re-queues unfinished ones, and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Returns a named diagnostic when the state directory cannot be
    /// created or scanned, or holds a corrupt job record.
    pub fn open(cfg: ServerConfig) -> Result<Self, String> {
        let mut state = ServerState {
            next_id: 1,
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            shutdown: false,
        };
        if let Some(dir) = &cfg.state_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create state directory {}: {e}", dir.display()))?;
            let mut records = Vec::new();
            let entries = std::fs::read_dir(dir)
                .map_err(|e| format!("cannot scan state directory {}: {e}", dir.display()))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("cannot scan state directory: {e}"))?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if !name.starts_with("job-") || !name.ends_with(".json") {
                    continue;
                }
                let text = std::fs::read_to_string(entry.path())
                    .map_err(|e| format!("cannot read {name}: {e}"))?;
                let record =
                    JobRecord::from_json(&text).map_err(|e| format!("corrupt {name}: {e}"))?;
                records.push(record);
            }
            records.sort_by_key(|r| r.id);
            for mut record in records {
                let id = record.id;
                state.next_id = state.next_id.max(id.0 + 1);
                let result_path = JobRecord::result_path_in(dir, id);
                let result = std::fs::read_to_string(&result_path).ok();
                let resume = JobRecord::checkpoint_path_in(dir, id).exists();
                let requeue = !record.state.is_terminal();
                if requeue {
                    // A `running` job was interrupted by a kill or crash;
                    // it goes back on the queue (resuming from its
                    // checkpoint when one exists).
                    record.state = JobState::Queued;
                }
                let job = Job {
                    record,
                    result,
                    events: Vec::new(),
                    cancel: Arc::new(AtomicBool::new(false)),
                    resume,
                };
                state.jobs.insert(id.0, job);
                if requeue {
                    state.queue.push(id.0);
                }
            }
        }
        let workers = cfg
            .workers
            .map_or_else(Parallelism::auto, Parallelism::fixed)
            .resolve(usize::MAX)
            .max(1);
        let inner = Arc::new(ServerInner {
            cfg,
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            watch_cv: Condvar::new(),
            kill: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Server {
            inner,
            workers: handles,
        })
    }

    /// Submits a scenario with a priority (higher runs first; ties run in
    /// submission order).  The scenario is validated up front so a broken
    /// config fails the submit, not the worker.
    ///
    /// # Errors
    ///
    /// Returns the scenario's own validation diagnostic.
    pub fn submit(&self, scenario: ScenarioConfig, priority: i64) -> Result<JobId, String> {
        scenario.validate()?;
        let mut state = self.inner.lock();
        if state.shutdown {
            return Err("the server is shutting down".to_string());
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        let record = JobRecord {
            id,
            priority,
            state: JobState::Queued,
            scenario,
            error: None,
        };
        self.inner.persist_record(&record);
        state.jobs.insert(
            id.0,
            Job {
                record,
                result: None,
                events: Vec::new(),
                cancel: Arc::new(AtomicBool::new(false)),
                resume: false,
            },
        );
        state.queue.push(id.0);
        drop(state);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// A snapshot of one job.
    #[must_use]
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let state = self.inner.lock();
        state.jobs.get(&id.0).map(snapshot)
    }

    /// Snapshots of every job, in id (= submission) order.
    #[must_use]
    pub fn list(&self) -> Vec<JobStatus> {
        let state = self.inner.lock();
        state.jobs.values().map(snapshot).collect()
    }

    /// Requests cancellation.  Queued jobs cancel immediately; running
    /// jobs cancel at their next pause boundary (sampling-dynamic jobs
    /// have none and finish anyway — see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a named diagnostic for unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        let mut state = self.inner.lock();
        let dir = self.inner.cfg.state_dir.clone();
        let job = state
            .jobs
            .get_mut(&id.0)
            .ok_or_else(|| format!("no such job: {id}"))?;
        match job.record.state {
            JobState::Queued => {
                job.record.state = JobState::Cancelled;
                let record = job.record.clone();
                push_terminal_event(job, &record, None);
                if let Some(dir) = &dir {
                    let _ = std::fs::remove_file(JobRecord::checkpoint_path_in(dir, id));
                }
                self.inner.persist_record(&record);
                state.queue.retain(|&q| q != id.0);
                drop(state);
                self.inner.watch_cv.notify_all();
                Ok(())
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::Relaxed);
                Ok(())
            }
            terminal => Err(format!("job {id} is already {terminal}")),
        }
    }

    /// Copies events `[from, ..)` for a job, plus whether its state is
    /// terminal (the stream is complete once both the copy drains and the
    /// job is terminal).
    ///
    /// # Errors
    ///
    /// Returns a named diagnostic for unknown jobs.
    pub fn events(&self, id: JobId, from: u64) -> Result<(Vec<String>, bool), String> {
        let state = self.inner.lock();
        let job = state
            .jobs
            .get(&id.0)
            .ok_or_else(|| format!("no such job: {id}"))?;
        let from = (from as usize).min(job.events.len());
        Ok((job.events[from..].to_vec(), job.record.state.is_terminal()))
    }

    /// Blocks until the job has events past `from` or reaches a terminal
    /// state, then behaves like [`Server::events`].
    ///
    /// # Errors
    ///
    /// Returns a named diagnostic for unknown jobs.
    pub fn wait_events(&self, id: JobId, from: u64) -> Result<(Vec<String>, bool), String> {
        let mut state = self.inner.lock();
        loop {
            let job = state
                .jobs
                .get(&id.0)
                .ok_or_else(|| format!("no such job: {id}"))?;
            let terminal = job.record.state.is_terminal();
            if job.events.len() > from as usize || terminal {
                let from = (from as usize).min(job.events.len());
                return Ok((job.events[from..].to_vec(), terminal));
            }
            state = self
                .inner
                .watch_cv
                .wait(state)
                .map_err(|e| format!("server state poisoned: {e}"))?;
        }
    }

    /// Blocks until the job reaches a terminal state and returns its final
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Returns a named diagnostic for unknown jobs.
    pub fn wait(&self, id: JobId) -> Result<JobStatus, String> {
        let mut state = self.inner.lock();
        loop {
            let job = state
                .jobs
                .get(&id.0)
                .ok_or_else(|| format!("no such job: {id}"))?;
            if job.record.state.is_terminal() {
                return Ok(snapshot(job));
            }
            state = self
                .inner
                .watch_cv
                .wait(state)
                .map_err(|e| format!("server state poisoned: {e}"))?;
        }
    }

    /// Graceful shutdown: stops accepting submissions, lets running jobs
    /// finish, leaves queued jobs persisted for the next open.
    pub fn shutdown(mut self) {
        {
            let mut state = self.inner.lock();
            state.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        self.join();
    }

    /// Simulated crash: halts workers at their next pause boundary.
    /// Running USD jobs write a final checkpoint and stay `running` on
    /// disk, so a later [`Server::open`] on the same state directory
    /// resumes them bit-exactly.
    pub fn kill(mut self) {
        self.inner.kill.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        self.join();
    }

    fn join(&mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.inner.kill.store(true, Ordering::SeqCst);
            self.inner.work_cv.notify_all();
            self.join();
        }
    }
}

fn snapshot(job: &Job) -> JobStatus {
    JobStatus {
        id: job.record.id,
        priority: job.record.priority,
        state: job.record.state,
        events: job.events.len() as u64,
        error: job.record.error.clone(),
        result: job.result.clone(),
    }
}

impl ServerInner {
    fn lock(&self) -> std::sync::MutexGuard<'_, ServerState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Best-effort persistence; an unwritable state directory degrades to
    /// in-memory operation rather than failing the job.
    fn persist_record(&self, record: &JobRecord) {
        if let Some(dir) = &self.cfg.state_dir {
            let _ = std::fs::write(JobRecord::path_in(dir, record.id), record.to_json());
        }
    }

    fn persist_result(&self, id: JobId, result: &str) {
        if let Some(dir) = &self.cfg.state_dir {
            let _ = std::fs::write(JobRecord::result_path_in(dir, id), result);
            let _ = std::fs::remove_file(JobRecord::checkpoint_path_in(dir, id));
        }
    }
}

/// Appends the terminal `done` event for a job (the watcher streams end on
/// it).  Caller persists the record and notifies `watch_cv`.
fn push_terminal_event(job: &mut Job, record: &JobRecord, result: Option<&str>) {
    let seq = job.events.len() as u64;
    job.events.push(protocol::done_event(record, seq, result));
}

/// Picks the next runnable job: highest priority first, submission order
/// within a priority.
fn pop_next(state: &mut ServerState) -> Option<u64> {
    let best = state.queue.iter().copied().min_by_key(|id| {
        let priority = state.jobs[id].record.priority;
        (std::cmp::Reverse(priority), *id)
    })?;
    state.queue.retain(|&q| q != best);
    Some(best)
}

fn worker_loop(inner: &ServerInner) {
    loop {
        let claimed = {
            let mut state = inner.lock();
            loop {
                if inner.kill.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = pop_next(&mut state) {
                    let job = state.jobs.get_mut(&id).expect("queued job exists");
                    job.record.state = JobState::Running;
                    let record = job.record.clone();
                    inner.persist_record(&record);
                    break Some((id, record, Arc::clone(&job.cancel), job.resume));
                }
                if state.shutdown {
                    return;
                }
                state = inner
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some((id, record, cancel, resume)) = claimed else {
            return;
        };
        run_job(inner, id, &record, &cancel, resume);
    }
}

/// Drives one job through the shared scenario runner, wiring the server's
/// interrupt, progress and checkpoint hooks.
fn run_job(inner: &ServerInner, id: u64, record: &JobRecord, cancel: &AtomicBool, resume: bool) {
    let job_id = JobId(id);
    let scenario = record.scenario;
    let checkpoint_path = inner
        .cfg
        .state_dir
        .as_ref()
        .map(|dir| JobRecord::checkpoint_path_in(dir, job_id));
    let checkpoint_every = if inner.cfg.checkpoint_every == 0 {
        scenario.population.max(1)
    } else {
        inner.cfg.checkpoint_every
    };
    let resume_checkpoint = if resume {
        checkpoint_path
            .as_ref()
            .and_then(|path| Checkpoint::load(path).ok())
    } else {
        None
    };
    let interrupt = || {
        if inner.kill.load(Ordering::SeqCst) {
            Some(Interrupt::Halted)
        } else if cancel.load(Ordering::Relaxed) {
            Some(Interrupt::Cancelled)
        } else {
            None
        }
    };
    let mut seq = 0_u64;
    let mut on_progress = |event: runner::ProgressEvent| {
        let line = protocol::progress_event(job_id, seq, &event);
        seq += 1;
        let mut state = inner.lock();
        if let Some(job) = state.jobs.get_mut(&id) {
            job.events.push(line);
        }
        drop(state);
        inner.watch_cv.notify_all();
    };
    let control = RunControl {
        progress: Some(&mut on_progress),
        progress_every: inner.cfg.progress_every,
        interrupt: Some(&interrupt),
        checkpoint: checkpoint_path
            .as_deref()
            .map(|path| (path, checkpoint_every)),
        resume: resume_checkpoint.as_ref(),
    };
    let verdict = runner::run_scenario(&scenario, control);

    let mut state = inner.lock();
    let Some(job) = state.jobs.get_mut(&id) else {
        return;
    };
    match verdict {
        Ok(RunVerdict::Finished(outcome)) => {
            let result = runner::result_json(&outcome);
            job.record.state = JobState::Done;
            job.result = Some(result.clone());
            job.resume = false;
            let record = job.record.clone();
            push_terminal_event(job, &record, Some(&result));
            inner.persist_record(&record);
            inner.persist_result(job_id, &result);
        }
        Ok(RunVerdict::Interrupted(Interrupt::Cancelled)) => {
            job.record.state = JobState::Cancelled;
            job.resume = false;
            let record = job.record.clone();
            push_terminal_event(job, &record, None);
            inner.persist_record(&record);
            if let Some(dir) = &inner.cfg.state_dir {
                let _ = std::fs::remove_file(JobRecord::checkpoint_path_in(dir, job_id));
            }
        }
        Ok(RunVerdict::Interrupted(Interrupt::Halted)) => {
            // The server is going down; the job stays `running` on disk
            // (with its checkpoint) so the next open re-queues it.  In
            // memory nothing more to do — the process is exiting.
            job.resume = true;
        }
        Err(message) => {
            job.record.state = JobState::Failed;
            job.record.error = Some(message);
            job.resume = false;
            let record = job.record.clone();
            push_terminal_event(job, &record, None);
            inner.persist_record(&record);
        }
    }
    drop(state);
    inner.watch_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;

    fn scenario(seed: u64) -> ScenarioConfig {
        ScenarioConfig::new(500, 3).with_seed(seed)
    }

    fn standalone_json(config: &ScenarioConfig) -> String {
        let RunVerdict::Finished(outcome) = run_scenario(config, RunControl::default()).unwrap()
        else {
            panic!("standalone run must finish");
        };
        runner::result_json(&outcome)
    }

    #[test]
    fn jobs_finish_with_standalone_identical_results() {
        let server = Server::open(ServerConfig {
            workers: Some(2),
            ..ServerConfig::default()
        })
        .unwrap();
        let ids: Vec<_> = (0..4)
            .map(|i| server.submit(scenario(100 + i), 0).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let status = server.wait(*id).unwrap();
            assert_eq!(status.state, JobState::Done);
            assert_eq!(
                status.result.as_deref(),
                Some(standalone_json(&scenario(100 + i as u64)).as_str()),
                "job {id} diverged from its standalone run"
            );
        }
        server.shutdown();
    }

    #[test]
    fn priorities_order_the_queue_and_cancel_works() {
        // One worker, and a long-running decoy submitted first so the
        // queue holds the contested jobs while we reorder them.
        let server = Server::open(ServerConfig {
            workers: Some(1),
            ..ServerConfig::default()
        })
        .unwrap();
        let decoy = server
            .submit(ScenarioConfig::new(20_000, 8).with_seed(1), 0)
            .unwrap();
        let low = server.submit(scenario(1), -1).unwrap();
        let high = server.submit(scenario(2), 5).unwrap();
        server.cancel(low).unwrap();
        let status = server.wait(low).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        let status = server.wait(high).unwrap();
        assert_eq!(status.state, JobState::Done);
        let _ = server.cancel(decoy);
        let listed = server.list();
        assert_eq!(listed.len(), 3);
        assert!(
            listed.windows(2).all(|w| w[0].id < w[1].id),
            "list is id-ordered"
        );
        server.shutdown();
    }

    #[test]
    fn invalid_scenarios_fail_at_submit_with_cli_diagnostics() {
        let server = Server::open(ServerConfig::default()).unwrap();
        let err = server.submit(scenario(1).with_shards(4), 0).unwrap_err();
        assert_eq!(err, "--shards/--epoch require --engine sharded");
        server.shutdown();
    }

    #[test]
    fn kill_and_reopen_resumes_to_identical_results() {
        let dir = std::env::temp_dir().join(format!(
            "pp_service_server_kill_test_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let expected = standalone_json(&scenario(7));
        let cfg = || ServerConfig {
            workers: Some(1),
            state_dir: Some(dir.clone()),
            progress_every: 50,
            checkpoint_every: 50,
        };
        let server = Server::open(cfg()).unwrap();
        let id = server.submit(scenario(7), 0).unwrap();
        // Let the job actually start before pulling the plug, so the kill
        // path (checkpoint + `running` on disk) is what we exercise.
        let (_events, _) = server.wait_events(id, 0).unwrap();
        server.kill();

        let reopened = Server::open(cfg()).unwrap();
        let status = reopened.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.result.as_deref(), Some(expected.as_str()));
        reopened.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
