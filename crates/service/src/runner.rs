//! The one place a [`ScenarioConfig`] turns into a running simulation.
//!
//! Both front-ends call [`run_scenario`] — `pp_serve`'s worker threads and
//! `usd_run --scenario` — so "submit a job" and "run it by hand" are the
//! same code path, and the determinism contract (same scenario + seed ⇒
//! bit-identical result, regardless of queueing, concurrency, pauses or
//! crash/resume cycles) reduces to the engine-layer contracts already
//! pinned in `pp_core`/`usd_core`.
//!
//! ## Equivalence with `usd_run`
//!
//! The runner reproduces the CLI's exact derivations: configurations come
//! from the same [`InitialConfig`](pp_workloads::InitialConfig) builder
//! calls, the run seed is `SimSeed::from_u64(seed).child(1)` on every path,
//! the replica ensemble seeds replica `i` with `master.child(i)`, and the
//! stop condition is consensus-or-budget with the CLI's budget formula.
//! Attaching recorders, telemetry, checkpoints or pause hooks consumes no
//! randomness, so none of the service machinery can move a trajectory.
//!
//! ## Interrupts
//!
//! Single USD runs pause cooperatively between `advance` calls (the
//! checkpoint-exact boundary) via `UsdSimulator::run_interruptible`;
//! replica ensembles pause between lockstep windows via
//! `UsdEnsemble::run_windows`; single sampling-dynamic runs pause between
//! activations (exact stepping) or between skip-ahead `advance` calls
//! (batched) via `SequentialSampler::run_interruptible` /
//! `run_engine_interruptible`.  All three resume bit-exactly — in place or
//! from a persisted [`Checkpoint`] in a fresh process.  Sampler
//! checkpoints carry the replica snapshot in the `exact` engine slot,
//! stamped with `sampler.format`/`sampler.dynamic` meta so feeding one to
//! a USD scenario (or vice versa, or to the wrong dynamic) fails loudly
//! instead of silently diverging.  Sampling *ensembles* remain the one
//! seam-free path: they run to completion and re-run from scratch after a
//! crash (determinism makes the re-run's result identical — it just costs
//! wall time).

use crate::scenario::{Dynamic, ScenarioConfig};
use consensus_dynamics::{
    sampler_ensemble, JMajority, MedianRule, SamplingDynamics, SequentialSampler, ThreeMajority,
    TwoChoices, Voter,
};
use pp_core::checkpoint::ReplicaCheckpoint;
use pp_core::ensemble::EnsembleRunResult;
use pp_core::{
    Checkpoint, Configuration, EngineChoice, MetricsSnapshot, RunOutcome, RunResult, SimSeed,
    StopCondition, Telemetry,
};
use std::path::Path;

/// How many lockstep windows a replica ensemble advances between interrupt
/// polls and progress events.
const ENSEMBLE_WINDOWS_PER_SLICE: u64 = 4;

/// The deterministic outcome of a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutcome {
    /// A single trajectory (`replicas == 1`).
    Single(RunResult),
    /// A lockstep replica ensemble (`replicas > 1`).
    Ensemble(EnsembleRunResult),
}

/// Why a run stopped before reaching its stop condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The job was cancelled; it will not resume.
    Cancelled,
    /// The server is going down; the job stays resumable (checkpointed
    /// when a sink is configured).
    Halted,
}

/// What [`run_scenario`] produced.
// One verdict exists per (milliseconds-to-minutes) run, so the size gap
// between the outcome-carrying and marker variants costs nothing; boxing
// would only complicate every matcher.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum RunVerdict {
    /// The stop condition was reached; the outcome is canonical.
    Finished(ScenarioOutcome),
    /// An interrupt stopped the run first.
    Interrupted(Interrupt),
}

/// A streamed progress snapshot, taken at a pause boundary (so it is also
/// always a valid capture point).
#[derive(Debug, Clone)]
pub struct ProgressEvent {
    /// Interactions consumed so far (`None` where the backend exposes no
    /// mid-run counter, e.g. the replica ensemble between windows).
    pub interactions: Option<u64>,
    /// Per-opinion support counts at the pause point.
    pub supports: Option<Vec<u64>>,
    /// Undecided count at the pause point.
    pub undecided: Option<u64>,
    /// Cumulative metrics registry snapshot (diff consecutive events for
    /// deltas); `None` when empty.
    pub metrics: Option<MetricsSnapshot>,
}

/// Hooks the service layer threads through a run.  `RunControl::default()`
/// runs to completion silently — exactly what `usd_run --scenario` wants.
#[derive(Default)]
pub struct RunControl<'a> {
    /// Progress event sink.
    pub progress: Option<&'a mut dyn FnMut(ProgressEvent)>,
    /// Interactions between progress events (`0` = one parallel-time unit,
    /// i.e. `n`).
    pub progress_every: u64,
    /// Polled at pause boundaries; returning `Some` stops the run.
    pub interrupt: Option<&'a dyn Fn() -> Option<Interrupt>>,
    /// Periodic checkpoint sink `(path, cadence)`; also captured once on a
    /// `Halted` interrupt so the resume point is never stale.
    pub checkpoint: Option<(&'a Path, u64)>,
    /// Resume from this capture instead of building the initial state
    /// (single USD, USD-ensemble, and single sampling-dynamic
    /// checkpoints).
    pub resume: Option<&'a Checkpoint>,
}

impl std::fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("progress", &self.progress.is_some())
            .field("progress_every", &self.progress_every)
            .field("interrupt", &self.interrupt.is_some())
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume.map(Checkpoint::kind))
            .finish()
    }
}

impl RunControl<'_> {
    fn poll(&self) -> Option<Interrupt> {
        self.interrupt.and_then(|f| f())
    }
}

/// Runs a scenario to its stop condition (or first interrupt), mirroring
/// `usd_run` exactly — see the module docs for the equivalence argument.
///
/// # Errors
///
/// Returns the CLI's diagnostics for invalid scenarios, impossible
/// configurations, unsupported engine/dynamic combinations and broken
/// resume checkpoints.
pub fn run_scenario(
    scenario: &ScenarioConfig,
    mut control: RunControl<'_>,
) -> Result<RunVerdict, String> {
    scenario.validate()?;
    let spec = scenario.to_initial_config();
    let seed = SimSeed::from_u64(scenario.seed);
    let budget = scenario.interaction_budget();
    let stop = StopCondition::consensus().or_max_interactions(budget);
    let tel = if control.progress.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    if scenario.replicas > 1 {
        let (config, choice) = spec.build_ensemble(seed).map_err(|e| e.to_string())?;
        let run_seed = seed.child(1);
        if scenario.dynamic == Dynamic::Usd {
            let mut ensemble = match control.resume {
                Some(checkpoint) => usd_core::UsdEnsemble::restore(checkpoint, choice)
                    .map_err(|e| format!("cannot resume: {e}"))?,
                None => usd_core::UsdEnsemble::try_new(config, run_seed, choice)
                    .map_err(|e| e.to_string())?,
            };
            ensemble.set_telemetry(tel.clone());
            loop {
                match ensemble.run_windows(stop, ENSEMBLE_WINDOWS_PER_SLICE) {
                    Some(outcome) => {
                        return Ok(RunVerdict::Finished(ScenarioOutcome::Ensemble(outcome)))
                    }
                    None => {
                        if let Some(kind) = control.poll() {
                            if kind == Interrupt::Halted {
                                if let Some((path, _)) = control.checkpoint {
                                    ensemble
                                        .capture()
                                        .save(path)
                                        .map_err(|e| format!("cannot checkpoint: {e}"))?;
                                }
                            }
                            return Ok(RunVerdict::Interrupted(kind));
                        }
                        emit(&mut control.progress, &tel, None, None);
                    }
                }
            }
        }
        let outcome = match scenario.dynamic {
            Dynamic::Voter => run_sampling_ensemble(
                Voter::new(scenario.opinions),
                config,
                run_seed,
                choice,
                stop,
                &tel,
            ),
            Dynamic::TwoChoices => run_sampling_ensemble(
                TwoChoices::new(scenario.opinions),
                config,
                run_seed,
                choice,
                stop,
                &tel,
            ),
            Dynamic::ThreeMajority => run_sampling_ensemble(
                ThreeMajority::new(scenario.opinions),
                config,
                run_seed,
                choice,
                stop,
                &tel,
            ),
            Dynamic::JMajority => run_sampling_ensemble(
                JMajority::new(scenario.opinions, scenario.majority_samples),
                config,
                run_seed,
                choice,
                stop,
                &tel,
            ),
            Dynamic::Median => run_sampling_ensemble(
                MedianRule::new(scenario.opinions),
                config,
                run_seed,
                choice,
                stop,
                &tel,
            ),
            Dynamic::Usd => unreachable!("handled above"),
        }?;
        return Ok(RunVerdict::Finished(ScenarioOutcome::Ensemble(outcome)));
    }

    if scenario.dynamic == Dynamic::Usd {
        return run_single_usd(scenario, &spec, seed, stop, &tel, &mut control);
    }

    // Single sampling dynamic: pauses between activations (exact) or
    // skip-ahead `advance` calls (batched) — the capture-exact boundaries.
    let config = match control.resume {
        // A resumed run takes its counts from the checkpoint.
        Some(_) => None,
        None => Some(
            spec.build(seed)
                .map_err(|e| format!("invalid configuration: {e}"))?,
        ),
    };
    let run_seed = seed.child(1);
    let engine = scenario.effective_engine();
    match scenario.dynamic {
        Dynamic::Voter => run_sampling_dynamic(
            Voter::new(scenario.opinions),
            Dynamic::Voter,
            config,
            run_seed,
            engine,
            stop,
            &mut control,
        ),
        Dynamic::TwoChoices => run_sampling_dynamic(
            TwoChoices::new(scenario.opinions),
            Dynamic::TwoChoices,
            config,
            run_seed,
            engine,
            stop,
            &mut control,
        ),
        Dynamic::ThreeMajority => run_sampling_dynamic(
            ThreeMajority::new(scenario.opinions),
            Dynamic::ThreeMajority,
            config,
            run_seed,
            engine,
            stop,
            &mut control,
        ),
        Dynamic::JMajority => run_sampling_dynamic(
            JMajority::new(scenario.opinions, scenario.majority_samples),
            Dynamic::JMajority,
            config,
            run_seed,
            engine,
            stop,
            &mut control,
        ),
        Dynamic::Median => run_sampling_dynamic(
            MedianRule::new(scenario.opinions),
            Dynamic::Median,
            config,
            run_seed,
            engine,
            stop,
            &mut control,
        ),
        Dynamic::Usd => unreachable!("handled above"),
    }
}

/// A single USD run through the cooperative pause seam.
fn run_single_usd(
    scenario: &ScenarioConfig,
    spec: &pp_workloads::InitialConfig,
    seed: SimSeed,
    stop: StopCondition,
    tel: &Telemetry,
    control: &mut RunControl<'_>,
) -> Result<RunVerdict, String> {
    let mut plan = spec.shard_plan();
    if let Some(epoch) = scenario.epoch {
        plan = plan.epoch_interactions(epoch);
    }
    let mut sim = match control.resume {
        Some(checkpoint) => {
            if checkpoint.meta(SAMPLER_FORMAT_META).is_some() {
                return Err(
                    "cannot resume: the checkpoint was captured from a sampling-dynamic run, \
                     not a USD run"
                        .to_string(),
                );
            }
            usd_core::UsdSimulator::restore(checkpoint, plan)
                .map_err(|e| format!("cannot resume: {e}"))?
        }
        None => {
            let config = spec
                .build(seed)
                .map_err(|e| format!("invalid configuration: {e}"))?;
            usd_core::UsdSimulator::with_engine_fidelity(
                config,
                seed.child(1),
                spec.engine_choice(),
                plan,
                spec.fidelity_config(),
            )
        }
    };
    sim.set_telemetry(tel.clone());
    if let Some((path, every)) = control.checkpoint {
        sim.set_checkpoint_sink(path, every);
    }
    let progress_every = if control.progress_every == 0 {
        scenario.population.max(1)
    } else {
        control.progress_every
    };
    let mut recorder = pp_core::NullRecorder;
    let mut next_progress = sim.interactions().saturating_add(progress_every);
    loop {
        // The hook polls the interrupt exactly once per pause boundary and
        // parks the verdict, so one-shot interrupt closures are honoured.
        // Pausing consumes no RNG.
        let want_interrupt = control.interrupt;
        let mut pending: Option<Interrupt> = None;
        let result = sim.run_interruptible(stop, &mut recorder, &mut |i| {
            if let Some(kind) = want_interrupt.and_then(|f| f()) {
                pending = Some(kind);
                return true;
            }
            i >= next_progress
        });
        match result {
            Some(result) => return Ok(RunVerdict::Finished(ScenarioOutcome::Single(result))),
            None => {
                if let Some(kind) = pending {
                    if kind == Interrupt::Halted {
                        if let Some((path, _)) = control.checkpoint {
                            sim.capture()
                                .map_err(|e| format!("cannot checkpoint: {e}"))?
                                .save(path)
                                .map_err(|e| format!("cannot checkpoint: {e}"))?;
                        }
                    }
                    return Ok(RunVerdict::Interrupted(kind));
                }
                emit(
                    &mut control.progress,
                    tel,
                    Some(sim.interactions()),
                    Some(sim.configuration()),
                );
                next_progress = sim.interactions().saturating_add(progress_every);
            }
        }
    }
}

/// Sends one progress event, snapshotting the metrics registry (empty
/// snapshots collapse to `None`).
fn emit(
    progress: &mut Option<&mut dyn FnMut(ProgressEvent)>,
    tel: &Telemetry,
    interactions: Option<u64>,
    config: Option<&Configuration>,
) {
    let Some(callback) = progress else { return };
    let metrics = tel.snapshot();
    callback(ProgressEvent {
        interactions,
        supports: config.map(|c| c.supports().to_vec()),
        undecided: config.map(Configuration::undecided),
        metrics: (!metrics.is_empty()).then_some(metrics),
    });
}

/// The meta stamp marking a checkpoint as a sampling-dynamic capture (the
/// snapshot itself rides in the `exact` engine slot — the sampler *is* a
/// per-activation engine).
const SAMPLER_FORMAT_META: &str = "sampler.format";
/// The meta stamp naming which dynamic captured the checkpoint (an index
/// into [`Dynamic::ALL`]), so resuming under a different dynamic fails
/// loudly instead of silently diverging.
const SAMPLER_DYNAMIC_META: &str = "sampler.dynamic";

fn dynamic_index(dynamic: Dynamic) -> u64 {
    Dynamic::ALL
        .iter()
        .position(|&d| d == dynamic)
        .expect("every dynamic is listed in Dynamic::ALL") as u64
}

fn capture_sampler<D: SamplingDynamics + Clone>(
    sim: &SequentialSampler<D>,
    dynamic: Dynamic,
) -> Checkpoint {
    Checkpoint::new(pp_core::checkpoint::EngineState::Exact(
        sim.capture_replica(),
    ))
    .with_meta(SAMPLER_FORMAT_META, 1)
    .with_meta(SAMPLER_DYNAMIC_META, dynamic_index(dynamic))
}

fn restore_sampler<D: SamplingDynamics + Clone>(
    dynamics: &D,
    dynamic: Dynamic,
    checkpoint: &Checkpoint,
) -> Result<SequentialSampler<D>, String> {
    match checkpoint.meta(SAMPLER_FORMAT_META) {
        Some(1) => {}
        Some(version) => {
            return Err(format!(
                "cannot resume: sampler checkpoint format {version} is not supported \
                 (this build reads format 1)"
            ))
        }
        None => {
            return Err(format!(
                "cannot resume: the {} checkpoint was not captured from a sampling-dynamic \
                 run (missing the \"sampler.format\" stamp)",
                checkpoint.kind()
            ))
        }
    }
    let stamped = checkpoint.meta(SAMPLER_DYNAMIC_META);
    if stamped != Some(dynamic_index(dynamic)) {
        let stamped_name = stamped
            .and_then(|i| usize::try_from(i).ok())
            .and_then(|i| Dynamic::ALL.get(i))
            .map_or("an unknown dynamic", |d| d.name());
        return Err(format!(
            "cannot resume: the checkpoint was captured from {stamped_name}, not {dynamic}"
        ));
    }
    let snapshot = checkpoint
        .expect_single("exact")
        .map_err(|e| format!("cannot resume: {e}"))?;
    SequentialSampler::restore_replica(dynamics, snapshot)
        .map_err(|e| format!("cannot resume: {e}"))
}

/// Mirrors `usd_run`'s single sampling-dynamic path (same engine gating
/// and diagnostics), threading the cooperative pause seam through
/// [`SequentialSampler::run_interruptible`] (exact) or
/// [`SequentialSampler::run_engine_interruptible`] (batched): interrupts,
/// progress events and checkpoint captures all happen at activation or
/// `advance`-call boundaries, where the replica snapshot is exact.
fn run_sampling_dynamic<D: SamplingDynamics + Clone>(
    dynamics: D,
    dynamic: Dynamic,
    config: Option<Configuration>,
    seed: SimSeed,
    engine: EngineChoice,
    stop: StopCondition,
    control: &mut RunControl<'_>,
) -> Result<RunVerdict, String> {
    let name = dynamics.name().to_string();
    let mut sim = match (control.resume, config) {
        (Some(checkpoint), _) => restore_sampler(&dynamics, dynamic, checkpoint)?,
        (None, Some(config)) => {
            SequentialSampler::try_new(dynamics, config, seed).map_err(|e| e.to_string())?
        }
        (None, None) => unreachable!("run_scenario builds a configuration when not resuming"),
    };
    if engine == EngineChoice::Batched {
        sim.require_skip_ahead().map_err(|e| {
            format!(
                "{e}: the {name} dynamic provides no closed-form skip-ahead hooks \
                 — use --engine exact"
            )
        })?;
    }
    let every = if control.progress_every == 0 {
        sim.configuration().population().max(1)
    } else {
        control.progress_every
    };
    let checkpoint_every = control
        .checkpoint
        .map(|(_, cadence)| {
            if cadence == 0 {
                sim.configuration().population().max(1)
            } else {
                cadence
            }
        })
        .unwrap_or(u64::MAX);
    let tel = Telemetry::disabled();
    let mut recorder = pp_core::NullRecorder;
    let mut next_progress = sim.steps().saturating_add(every);
    let mut next_checkpoint = sim.steps().saturating_add(checkpoint_every);
    loop {
        // Same one-shot interrupt contract as the USD seam: poll once per
        // pause boundary and park the verdict.  Pausing consumes no RNG.
        let want_interrupt = control.interrupt;
        let mut pending: Option<Interrupt> = None;
        let pause_at = next_progress.min(next_checkpoint);
        let mut pause = |i: u64| {
            if let Some(kind) = want_interrupt.and_then(|f| f()) {
                pending = Some(kind);
                return true;
            }
            i >= pause_at
        };
        let result = match engine {
            EngineChoice::Exact => sim.run_interruptible(stop, &mut recorder, &mut pause),
            EngineChoice::Batched => sim.run_engine_interruptible(stop, &mut recorder, &mut pause),
            other => unreachable!("validate rejects {other} for sampling dynamics"),
        };
        match result {
            Some(result) => return Ok(RunVerdict::Finished(ScenarioOutcome::Single(result))),
            None => {
                if let Some(kind) = pending {
                    if kind == Interrupt::Halted {
                        if let Some((path, _)) = control.checkpoint {
                            capture_sampler(&sim, dynamic)
                                .save(path)
                                .map_err(|e| format!("cannot checkpoint: {e}"))?;
                        }
                    }
                    return Ok(RunVerdict::Interrupted(kind));
                }
                if sim.steps() >= next_checkpoint {
                    if let Some((path, _)) = control.checkpoint {
                        capture_sampler(&sim, dynamic)
                            .save(path)
                            .map_err(|e| format!("cannot checkpoint: {e}"))?;
                    }
                    next_checkpoint = sim.steps().saturating_add(checkpoint_every);
                }
                if sim.steps() >= next_progress {
                    emit(
                        &mut control.progress,
                        &tel,
                        Some(sim.steps()),
                        Some(sim.configuration()),
                    );
                    next_progress = sim.steps().saturating_add(every);
                }
            }
        }
    }
}

/// Mirrors `usd_run`'s sampling-ensemble path (same diagnostics).
fn run_sampling_ensemble<D: SamplingDynamics + Clone + Send>(
    dynamics: D,
    config: Configuration,
    seed: SimSeed,
    choice: pp_core::ensemble::EnsembleChoice,
    stop: StopCondition,
    tel: &Telemetry,
) -> Result<EnsembleRunResult, String> {
    let name = dynamics.name().to_string();
    let mut ensemble = sampler_ensemble(&dynamics, &config, seed, choice).map_err(|e| {
        format!(
            "{e}: the {name} dynamic cannot run under the replica ensemble \
             (it provides no closed-form skip-ahead hooks)"
        )
    })?;
    ensemble.set_telemetry(tel.clone());
    Ok(ensemble.run(stop))
}

/// Renders a finished outcome as the service's canonical result JSON: only
/// fields the determinism contract covers (no wall-clock times, no worker
/// counts), so the same scenario always yields the same bytes — the payload
/// `pp_serve` stores and `usd_run --scenario` prints are compared verbatim
/// in `tests/service_equivalence.rs`.
#[must_use]
pub fn result_json(outcome: &ScenarioOutcome) -> String {
    use crate::json::{Json, ObjBuilder};
    fn outcome_name(outcome: RunOutcome) -> &'static str {
        match outcome {
            RunOutcome::Consensus => "consensus",
            RunOutcome::OpinionSettled => "opinion-settled",
            RunOutcome::BudgetExhausted => "budget-exhausted",
        }
    }
    fn run_json(result: &RunResult) -> Json {
        ObjBuilder::new()
            .field(
                "outcome",
                Json::Str(outcome_name(result.outcome()).to_string()),
            )
            .field("interactions", Json::U64(result.interactions()))
            .field("parallel_time", Json::F64(result.parallel_time()))
            .field(
                "winner",
                result
                    .winner()
                    .map_or(Json::Null, |w| Json::U64(w.index() as u64)),
            )
            .field(
                "scheduler",
                result
                    .scheduler()
                    .map_or(Json::Null, |s| Json::Str(s.to_string())),
            )
            .field(
                "rejection_misses",
                result.rejection_misses().map_or(Json::Null, Json::U64),
            )
            .field(
                "final",
                ObjBuilder::new()
                    .field(
                        "supports",
                        Json::Arr(
                            result
                                .final_configuration()
                                .supports()
                                .iter()
                                .map(|&s| Json::U64(s))
                                .collect(),
                        ),
                    )
                    .field(
                        "undecided",
                        Json::U64(result.final_configuration().undecided()),
                    )
                    .build(),
            )
            .build()
    }
    let doc = match outcome {
        ScenarioOutcome::Single(result) => ObjBuilder::new()
            .field("result", Json::U64(1))
            .field("mode", Json::Str("single".to_string()))
            .field("run", run_json(result))
            .build(),
        ScenarioOutcome::Ensemble(outcome) => ObjBuilder::new()
            .field("result", Json::U64(1))
            .field("mode", Json::Str("ensemble".to_string()))
            .field("replicas", Json::U64(outcome.len() as u64))
            .field("rounds", Json::U64(outcome.rounds()))
            .field(
                "total_interactions",
                // u128 in-core; a real total always fits u64 (budgets are u64
                // per replica and replica counts are small).
                Json::U64(u64::try_from(outcome.total_interactions()).unwrap_or(u64::MAX)),
            )
            .field(
                "results",
                Json::Arr(outcome.results().iter().map(run_json).collect()),
            )
            .build(),
    };
    doc.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        ScenarioConfig::new(600, 3).with_seed(5)
    }

    #[test]
    fn plain_run_finishes_with_consensus() {
        let verdict = run_scenario(&small(), RunControl::default()).unwrap();
        let RunVerdict::Finished(ScenarioOutcome::Single(result)) = verdict else {
            panic!("uninterrupted run must finish: {verdict:?}");
        };
        assert!(result.reached_consensus());
    }

    #[test]
    fn progress_and_interrupt_hooks_never_move_the_trajectory() {
        let RunVerdict::Finished(reference) =
            run_scenario(&small(), RunControl::default()).unwrap()
        else {
            panic!("reference run must finish");
        };
        let mut events = Vec::new();
        let mut on_progress = |event: ProgressEvent| events.push(event);
        let control = RunControl {
            progress: Some(&mut on_progress),
            progress_every: 100,
            interrupt: Some(&|| None),
            ..RunControl::default()
        };
        let RunVerdict::Finished(observed) = run_scenario(&small(), control).unwrap() else {
            panic!("hooked run must finish");
        };
        assert_eq!(observed, reference, "hooks perturbed the trajectory");
        assert!(!events.is_empty(), "progress cadence 100 must fire");
        let event = &events[0];
        assert!(event.interactions.is_some());
        assert_eq!(
            event.supports.as_ref().map(Vec::len),
            Some(3),
            "progress snapshots carry per-opinion counts"
        );
    }

    #[test]
    fn cancelled_runs_report_the_interrupt() {
        let verdict = run_scenario(
            &small(),
            RunControl {
                interrupt: Some(&|| Some(Interrupt::Cancelled)),
                ..RunControl::default()
            },
        )
        .unwrap();
        assert_eq!(verdict, RunVerdict::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn halt_checkpoint_resume_is_bit_exact() {
        let dir = std::env::temp_dir().join("pp_service_runner_halt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("halt.ckpt.json");
        let RunVerdict::Finished(reference) =
            run_scenario(&small(), RunControl::default()).unwrap()
        else {
            panic!("reference run must finish");
        };
        // Halt after the first pause boundary, checkpointing on the way
        // out; a "fresh process" resumes from the file and must finish on
        // the reference trajectory.
        use std::sync::atomic::{AtomicBool, Ordering};
        let fired = AtomicBool::new(false);
        let halt = move || {
            if fired.swap(true, Ordering::Relaxed) {
                None
            } else {
                Some(Interrupt::Halted)
            }
        };
        let verdict = run_scenario(
            &small(),
            RunControl {
                interrupt: Some(&halt),
                checkpoint: Some((&path, u64::MAX)),
                progress_every: 50,
                ..RunControl::default()
            },
        )
        .unwrap();
        assert_eq!(verdict, RunVerdict::Interrupted(Interrupt::Halted));
        let checkpoint = Checkpoint::load(&path).unwrap();
        let resumed = run_scenario(
            &small(),
            RunControl {
                resume: Some(&checkpoint),
                ..RunControl::default()
            },
        )
        .unwrap();
        assert_eq!(resumed, RunVerdict::Finished(reference));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn sampler_halt_checkpoint_resume_is_bit_exact() {
        let scenario = ScenarioConfig::new(600, 3)
            .with_seed(5)
            .with_dynamic(Dynamic::Voter)
            .with_engine(EngineChoice::Batched);
        let dir = std::env::temp_dir().join("pp_service_runner_sampler_halt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("halt.ckpt.json");
        let RunVerdict::Finished(reference) =
            run_scenario(&scenario, RunControl::default()).unwrap()
        else {
            panic!("reference run must finish");
        };
        use std::sync::atomic::{AtomicBool, Ordering};
        let fired = AtomicBool::new(false);
        let halt = move || {
            if fired.swap(true, Ordering::Relaxed) {
                None
            } else {
                Some(Interrupt::Halted)
            }
        };
        let verdict = run_scenario(
            &scenario,
            RunControl {
                interrupt: Some(&halt),
                checkpoint: Some((&path, u64::MAX)),
                progress_every: 50,
                ..RunControl::default()
            },
        )
        .unwrap();
        assert_eq!(verdict, RunVerdict::Interrupted(Interrupt::Halted));
        let checkpoint = Checkpoint::load(&path).unwrap();
        assert_eq!(checkpoint.meta(SAMPLER_FORMAT_META), Some(1));
        let resumed = run_scenario(
            &scenario,
            RunControl {
                resume: Some(&checkpoint),
                ..RunControl::default()
            },
        )
        .unwrap();
        assert_eq!(resumed, RunVerdict::Finished(reference));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn sampler_hooks_never_move_the_trajectory() {
        let scenario = ScenarioConfig::new(500, 3)
            .with_seed(11)
            .with_dynamic(Dynamic::ThreeMajority);
        let RunVerdict::Finished(reference) =
            run_scenario(&scenario, RunControl::default()).unwrap()
        else {
            panic!("reference run must finish");
        };
        let mut events = Vec::new();
        let mut on_progress = |event: ProgressEvent| events.push(event);
        let control = RunControl {
            progress: Some(&mut on_progress),
            progress_every: 75,
            interrupt: Some(&|| None),
            ..RunControl::default()
        };
        let RunVerdict::Finished(observed) = run_scenario(&scenario, control).unwrap() else {
            panic!("hooked run must finish");
        };
        assert_eq!(observed, reference, "hooks perturbed the trajectory");
        assert!(!events.is_empty(), "progress cadence 75 must fire");
        assert_eq!(events[0].supports.as_ref().map(Vec::len), Some(3));
    }

    #[test]
    fn cross_restores_between_usd_and_sampler_checkpoints_fail_loudly() {
        let dir = std::env::temp_dir().join("pp_service_runner_cross_restore_test");
        std::fs::create_dir_all(&dir).unwrap();
        use std::sync::atomic::{AtomicBool, Ordering};
        let capture = |scenario: &ScenarioConfig, file: &str| -> Checkpoint {
            let path = dir.join(file);
            let fired = AtomicBool::new(false);
            let halt = move || {
                if fired.swap(true, Ordering::Relaxed) {
                    None
                } else {
                    Some(Interrupt::Halted)
                }
            };
            let verdict = run_scenario(
                scenario,
                RunControl {
                    interrupt: Some(&halt),
                    checkpoint: Some((&path, u64::MAX)),
                    ..RunControl::default()
                },
            )
            .unwrap();
            assert_eq!(verdict, RunVerdict::Interrupted(Interrupt::Halted));
            let checkpoint = Checkpoint::load(&path).unwrap();
            let _ = std::fs::remove_file(path);
            checkpoint
        };
        let usd = small();
        let voter = small().with_dynamic(Dynamic::Voter);
        let usd_ckpt = capture(&usd, "usd.ckpt.json");
        let voter_ckpt = capture(&voter, "voter.ckpt.json");
        // USD checkpoint into a sampler scenario: missing sampler stamp.
        let err = run_scenario(
            &voter,
            RunControl {
                resume: Some(&usd_ckpt),
                ..RunControl::default()
            },
        )
        .unwrap_err();
        assert!(
            err.contains("not captured from a sampling-dynamic run"),
            "diagnostic must name the mismatch: {err}"
        );
        // Sampler checkpoint into a USD scenario: rejected by the stamp.
        let err = run_scenario(
            &usd,
            RunControl {
                resume: Some(&voter_ckpt),
                ..RunControl::default()
            },
        )
        .unwrap_err();
        assert!(
            err.contains("captured from a sampling-dynamic run, not a USD run"),
            "diagnostic must name the mismatch: {err}"
        );
        // Sampler checkpoint into the wrong dynamic: rejected by name.
        let err = run_scenario(
            &small().with_dynamic(Dynamic::Median),
            RunControl {
                resume: Some(&voter_ckpt),
                ..RunControl::default()
            },
        )
        .unwrap_err();
        assert!(
            err.contains("captured from voter, not median"),
            "diagnostic must name both dynamics: {err}"
        );
    }

    #[test]
    fn result_json_is_deterministic_and_parseable() {
        let RunVerdict::Finished(outcome) = run_scenario(&small(), RunControl::default()).unwrap()
        else {
            panic!("run must finish");
        };
        let a = result_json(&outcome);
        let b = result_json(&outcome);
        assert_eq!(a, b);
        let doc = crate::json::Json::parse(&a).unwrap();
        assert_eq!(
            doc.get("mode").and_then(crate::json::Json::as_str),
            Some("single")
        );
        assert!(doc.get("run").is_some());
    }

    #[test]
    fn ensemble_scenarios_run_and_serialize() {
        let scenario = ScenarioConfig::new(400, 3).with_seed(9).with_replicas(3);
        let RunVerdict::Finished(outcome) = run_scenario(&scenario, RunControl::default()).unwrap()
        else {
            panic!("ensemble run must finish");
        };
        let ScenarioOutcome::Ensemble(ref ensemble) = outcome else {
            panic!("replicas > 1 must produce an ensemble outcome");
        };
        assert_eq!(ensemble.len(), 3);
        let doc = crate::json::Json::parse(&result_json(&outcome)).unwrap();
        assert_eq!(
            doc.get("replicas").and_then(crate::json::Json::as_u64),
            Some(3)
        );
        assert_eq!(
            doc.get("results")
                .and_then(crate::json::Json::as_array)
                .map(<[_]>::len),
            Some(3)
        );
    }
}
