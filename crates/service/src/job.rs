//! Job identity, lifecycle states and on-disk persistence records.
//!
//! A job is one queued [`ScenarioConfig`] with a priority.  Its lifecycle
//! is strictly `Queued → Running → {Done, Failed, Cancelled}`; a server
//! kill can park a `Running` job back on disk (with a checkpoint) so the
//! next [`crate::server::Server::open`] re-queues it — that re-queue is
//! invisible in the result, which is pinned bit-identical either way.
//!
//! Persistence layout (inside the server's state directory):
//!
//! * `job-<id>.json` — the [`JobRecord`]: version, id, priority, state,
//!   scenario, and the failure message for failed jobs.
//! * `result-<id>.json` — the canonical result document
//!   ([`crate::runner::result_json`] bytes, stored verbatim so replaying a
//!   `result` request after a restart returns the identical bytes).
//! * `ckpt-<id>.json` — a [`pp_core::Checkpoint`] for a job halted
//!   mid-run, removed when the job reaches a terminal state.

use crate::json::{Json, ObjBuilder};
use crate::scenario::ScenarioConfig;
use std::path::{Path, PathBuf};

/// The job-record format version.
pub const JOB_FORMAT_VERSION: u32 = 1;

/// A queue-unique job identifier (dense, starting at 1, in submission
/// order — ids double as FIFO sequence numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is driving it.
    Running,
    /// Finished; the canonical result is available.
    Done,
    /// The scenario was rejected or the run errored; see the message.
    Failed,
    /// Cancelled before completion; it will not resume.
    Cancelled,
}

impl JobState {
    /// The canonical lowercase name (protocol and persistence spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a state name.
    ///
    /// # Errors
    ///
    /// Names the unknown state.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            "cancelled" => Ok(JobState::Cancelled),
            other => Err(format!(
                "unknown job state {other:?} (expected queued, running, done, failed, or \
                 cancelled)"
            )),
        }
    }

    /// Whether the state is terminal (no further transitions).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The persisted job description.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job's identifier.
    pub id: JobId,
    /// Scheduling priority (higher first; ties run in submission order).
    pub priority: i64,
    /// Lifecycle state at the last persist.
    pub state: JobState,
    /// The scenario to run.
    pub scenario: ScenarioConfig,
    /// The failure message, for failed jobs.
    pub error: Option<String>,
}

impl JobRecord {
    /// Serializes the record as its version-1 JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("job", Json::U64(u64::from(JOB_FORMAT_VERSION)))
            .field("id", Json::U64(self.id.0))
            .field("priority", priority_json(self.priority))
            .field("state", Json::Str(self.state.name().to_string()))
            .field("scenario", self.scenario.to_json_value())
            .opt("error", self.error.clone().map(Json::Str))
            .build()
            .to_json()
    }

    /// Parses a version-1 job record.
    ///
    /// # Errors
    ///
    /// Returns a named diagnostic for malformed or wrong-version records.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("malformed job record: {e}"))?;
        let version = doc
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing \"job\" version field".to_string())?;
        if version != u64::from(JOB_FORMAT_VERSION) {
            return Err(format!(
                "unsupported job record version {version} (this build reads version 1)"
            ));
        }
        let id = doc
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "\"id\" must be an unsigned integer".to_string())?;
        let priority = match doc.get("priority") {
            None => 0,
            Some(Json::U64(v)) => {
                i64::try_from(*v).map_err(|_| "\"priority\" does not fit an i64".to_string())?
            }
            Some(Json::I64(v)) => *v,
            Some(_) => return Err("\"priority\" must be an integer".to_string()),
        };
        let state = JobState::parse(
            doc.get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| "\"state\" must be a string".to_string())?,
        )?;
        let scenario = ScenarioConfig::from_json_value(
            doc.get("scenario")
                .ok_or_else(|| "missing \"scenario\" object".to_string())?,
        )?;
        let error = doc.get("error").and_then(Json::as_str).map(str::to_string);
        Ok(JobRecord {
            id: JobId(id),
            priority,
            state,
            scenario,
            error,
        })
    }

    /// The record's file name inside a state directory.
    #[must_use]
    pub fn path_in(dir: &Path, id: JobId) -> PathBuf {
        dir.join(format!("job-{}.json", id.0))
    }

    /// The canonical-result file for a job.
    #[must_use]
    pub fn result_path_in(dir: &Path, id: JobId) -> PathBuf {
        dir.join(format!("result-{}.json", id.0))
    }

    /// The resume-checkpoint file for a job.
    #[must_use]
    pub fn checkpoint_path_in(dir: &Path, id: JobId) -> PathBuf {
        dir.join(format!("ckpt-{}.json", id.0))
    }
}

/// Priorities serialize through the exact-integer JSON variants.
fn priority_json(priority: i64) -> Json {
    if priority >= 0 {
        Json::U64(priority as u64)
    } else {
        Json::I64(priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let record = JobRecord {
            id: JobId(7),
            priority: -3,
            state: JobState::Failed,
            scenario: ScenarioConfig::new(1_000, 4).with_seed(2),
            error: Some("invalid configuration: boom".to_string()),
        };
        let json = record.to_json();
        let back = JobRecord::from_json(&json).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn states_round_trip_by_name() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(state.name()), Ok(state));
        }
        assert!(JobState::parse("paused").is_err());
    }
}
