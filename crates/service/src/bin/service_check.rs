//! Schema-checks the service layer's streamed artifacts, so CI can assert
//! that `pp_serve`'s progress streams and result documents stay loadable
//! PR over PR (the service-side sibling of `telemetry_check`).
//!
//! ```text
//! service_check [--events events.ndjson] [--min-progress N]
//!               [--result result.json]
//! ```
//!
//! * `--events` — a file of streamed event lines (a `watch` transcript).
//!   Every non-empty line must satisfy the protocol schema
//!   (`pp_service::protocol::check_progress_line`), sequence numbers must
//!   be dense from 0, the stream must end in exactly one terminal `done`
//!   event, and at least `--min-progress` progress snapshots must precede
//!   it (default 1).
//! * `--result` — a canonical result document (a `result-<id>.json` file,
//!   a `result` reply's payload, or `usd_run --scenario` output), checked
//!   with `pp_service::protocol::check_result_doc`.
//!
//! Exits 0 when every given artifact passes, 1 with a diagnostic per
//! failure otherwise.  At least one artifact flag is required.

use pp_service::json::Json;
use pp_service::protocol::{check_progress_line, check_result_doc};
use std::process::ExitCode;

struct Options {
    events: Option<String>,
    min_progress: u64,
    result: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        events: None,
        min_progress: 1,
        result: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag {
            "--events" => opts.events = Some(value(&mut i)?),
            "--min-progress" => {
                opts.min_progress = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--min-progress: {e}"))?;
            }
            "--result" => opts.result = Some(value(&mut i)?),
            "--help" | "-h" => {
                return Err("usage: service_check [--events <ndjson transcript>] \
                     [--min-progress <count>] [--result <result json>]"
                    .to_string())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    if opts.events.is_none() && opts.result.is_none() {
        return Err("give at least one of --events, --result".to_string());
    }
    Ok(opts)
}

fn check_events(path: &str, min_progress: u64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut progress = 0_u64;
    let mut done = 0_u64;
    let mut expected_seq = 0_u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if done > 0 {
            return Err(format!(
                "{path}:{}: events continue past the terminal line",
                lineno + 1
            ));
        }
        check_progress_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let doc = Json::parse(line).expect("validated lines parse");
        let seq = doc
            .get("seq")
            .and_then(Json::as_u64)
            .expect("validated seq");
        if seq != expected_seq {
            return Err(format!(
                "{path}:{}: sequence jumps to {seq} (expected {expected_seq})",
                lineno + 1
            ));
        }
        expected_seq += 1;
        match doc.get("event").and_then(Json::as_str) {
            Some("progress") => progress += 1,
            Some("done") => done += 1,
            _ => unreachable!("validator admits only progress/done"),
        }
    }
    if done != 1 {
        return Err(format!(
            "{path}: stream must end in exactly one terminal event (saw {done})"
        ));
    }
    if progress < min_progress {
        return Err(format!(
            "{path}: only {progress} progress events (needed at least {min_progress})"
        ));
    }
    Ok(())
}

fn check_result_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Accept either a bare result document or a `result` reply that embeds
    // one — the two places CI captures results from.
    let doc = Json::parse(text.trim()).map_err(|e| format!("{path}: not JSON: {e}"))?;
    let payload = match doc.get("result") {
        Some(inner) if inner.as_u64() != Some(1) => inner.clone(),
        _ => doc,
    };
    check_result_doc(&payload).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    if let Some(path) = &opts.events {
        if let Err(message) = check_events(path, opts.min_progress) {
            eprintln!("{message}");
            failed = true;
        }
    }
    if let Some(path) = &opts.result {
        if let Err(message) = check_result_file(path) {
            eprintln!("{message}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
