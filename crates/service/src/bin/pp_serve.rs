//! The simulation job server: NDJSON over stdin/stdout or a Unix socket.
//!
//! ```text
//! pp_serve [--socket PATH] [--workers N] [--state-dir DIR]
//!          [--progress-every N] [--checkpoint-every N]
//! pp_serve --connect PATH --request 'JSON'
//! ```
//!
//! * With `--socket`, listens on a Unix domain socket; each connection
//!   carries **one** request line and the server streams its reply lines
//!   (one for most ops, the event stream for `watch`) before closing the
//!   connection — so clients simply read to EOF.
//! * Without `--socket`, speaks the same protocol over stdin/stdout, one
//!   request per line, until EOF or a `shutdown` op.
//! * `--connect` is a built-in client: it sends one request to a running
//!   server and prints the reply lines — what the CI smoke test drives.
//!
//! See `pp_service::protocol` for the message reference.  Determinism and
//! crash-resume contracts are documented on the `pp_service` crate root.

use pp_service::json::{Json, ObjBuilder};
use pp_service::protocol::{error_reply, ok_reply, parse_request, Request};
use pp_service::server::{JobStatus, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

struct Options {
    socket: Option<PathBuf>,
    connect: Option<PathBuf>,
    request: Option<String>,
    cfg: ServerConfig,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        socket: None,
        connect: None,
        request: None,
        cfg: ServerConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag {
            "--socket" => opts.socket = Some(PathBuf::from(value(&mut i)?)),
            "--connect" => opts.connect = Some(PathBuf::from(value(&mut i)?)),
            "--request" => opts.request = Some(value(&mut i)?),
            "--workers" => {
                let workers: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be positive".to_string());
                }
                opts.cfg.workers = Some(workers);
            }
            "--state-dir" => opts.cfg.state_dir = Some(PathBuf::from(value(&mut i)?)),
            "--progress-every" => {
                opts.cfg.progress_every = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--progress-every: {e}"))?;
            }
            "--checkpoint-every" => {
                opts.cfg.checkpoint_every = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: pp_serve [--socket PATH] [--workers N] [--state-dir DIR] \
                     [--progress-every N] [--checkpoint-every N] | pp_serve --connect PATH \
                     --request 'JSON'"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    if opts.connect.is_some() != opts.request.is_some() {
        return Err("--connect and --request go together".to_string());
    }
    Ok(opts)
}

fn status_fields(status: &JobStatus) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("job".to_string(), Json::U64(status.id.0)),
        (
            "state".to_string(),
            Json::Str(status.state.name().to_string()),
        ),
        (
            "priority".to_string(),
            if status.priority >= 0 {
                Json::U64(status.priority as u64)
            } else {
                Json::I64(status.priority)
            },
        ),
        ("events".to_string(), Json::U64(status.events)),
    ];
    if let Some(error) = &status.error {
        fields.push(("error".to_string(), Json::Str(error.clone())));
    }
    fields
}

/// Handles one request, writing reply line(s).  Returns `true` when the
/// request asks the server to shut down.
fn handle(server: &Server, line: &str, out: &mut dyn Write) -> std::io::Result<bool> {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(message) => {
            writeln!(out, "{}", error_reply(&message))?;
            return Ok(false);
        }
    };
    let reply = match request {
        Request::Submit { scenario, priority } => match server.submit(scenario, priority) {
            Ok(id) => ok_reply(vec![("job".to_string(), Json::U64(id.0))]),
            Err(message) => error_reply(&message),
        },
        Request::Status(id) => match server.status(id) {
            Some(status) => ok_reply(status_fields(&status)),
            None => error_reply(&format!("no such job: {id}")),
        },
        Request::Result(id) => match server.status(id) {
            Some(status) => match status.result {
                Some(result) => match Json::parse(&result) {
                    Ok(doc) => ok_reply(vec![("result".to_string(), doc)]),
                    Err(e) => error_reply(&format!("stored result is corrupt: {e}")),
                },
                None => error_reply(&format!("job {id} is {}, not done", status.state)),
            },
            None => error_reply(&format!("no such job: {id}")),
        },
        Request::Cancel(id) => match server.cancel(id) {
            Ok(()) => ok_reply(Vec::new()),
            Err(message) => error_reply(&message),
        },
        Request::List => {
            let jobs = server
                .list()
                .iter()
                .map(|status| {
                    let mut builder = ObjBuilder::new();
                    for (key, value) in status_fields(status) {
                        builder = builder.field(&key, value);
                    }
                    builder.build()
                })
                .collect();
            ok_reply(vec![("jobs".to_string(), Json::Arr(jobs))])
        }
        Request::Watch(id, mut from) => loop {
            match server.wait_events(id, from) {
                Ok((lines, terminal)) => {
                    for event in &lines {
                        writeln!(out, "{event}")?;
                    }
                    out.flush()?;
                    from += lines.len() as u64;
                    if terminal && lines.is_empty() {
                        return Ok(false);
                    }
                }
                Err(message) => {
                    writeln!(out, "{}", error_reply(&message))?;
                    return Ok(false);
                }
            }
        },
        Request::Wait(id) => match server.wait(id) {
            Ok(status) => ok_reply(status_fields(&status)),
            Err(message) => error_reply(&message),
        },
        Request::Shutdown => {
            writeln!(out, "{}", ok_reply(Vec::new()))?;
            out.flush()?;
            return Ok(true);
        }
    };
    writeln!(out, "{reply}")?;
    out.flush()?;
    Ok(false)
}

fn serve_stdio(server: Server) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if handle(&server, &line, &mut stdout)? {
            server.shutdown();
            return Ok(());
        }
    }
    server.shutdown();
    Ok(())
}

fn serve_socket(server: Server, path: &PathBuf) -> Result<(), String> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| format!("cannot bind socket {}: {e}", path.display()))?;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let server = &server;
            let stop = &stop;
            let path = path.clone();
            scope.spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let mut reader = BufReader::new(read_half);
                let mut line = String::new();
                let mut stream = stream;
                if reader.read_line(&mut line).is_ok() && !line.trim().is_empty() {
                    if let Ok(true) = handle(server, &line, &mut stream) {
                        stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop with a throwaway
                        // connection so the listener notices the flag.
                        let _ = UnixStream::connect(&path);
                    }
                }
                let _ = stream.shutdown(std::net::Shutdown::Both);
            });
        }
    });
    server.shutdown();
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn run_client(path: &PathBuf, request: &str) -> Result<bool, String> {
    let mut stream = UnixStream::connect(path)
        .map_err(|e| format!("cannot connect to {}: {e}", path.display()))?;
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let reader = BufReader::new(stream);
    let mut all_ok = true;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("connection dropped: {e}"))?;
        if let Ok(doc) = Json::parse(&line) {
            if doc.get("ok").and_then(Json::as_bool) == Some(false) {
                all_ok = false;
            }
        }
        println!("{line}");
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let (Some(path), Some(request)) = (&opts.connect, &opts.request) {
        return match run_client(path, request) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    let server = match Server::open(opts.cfg.clone()) {
        Ok(server) => server,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &opts.socket {
        Some(path) => serve_socket(server, path),
        None => serve_stdio(server).map_err(|e| format!("stdio transport failed: {e}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
