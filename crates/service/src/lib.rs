//! Simulation-as-a-service for the k-opinion USD engine stack.
//!
//! This crate turns the simulators under `pp-core`/`usd-core` into a
//! long-lived job server without weakening any of their guarantees.  It is
//! four layers, each usable on its own:
//!
//! * [`scenario`] — [`ScenarioConfig`], a versioned JSON description of one
//!   complete run: seed, population and opinion count, bias and undecided
//!   seeding, the dynamic, the engine choice with its shard / ensemble /
//!   parallelism plan, the stop budget, and the progress-sampling knobs.
//!   See the module docs for the full schema reference.
//! * [`runner`] — [`run_scenario`], the single code path that executes a
//!   scenario, shared by the server's workers and `usd_run --scenario`.
//!   [`RunControl`] threads in progress, interrupt, checkpoint and resume
//!   hooks; none of them consumes randomness.
//! * [`job`] + [`server`] — a [`JobId`]-keyed priority FIFO with a bounded
//!   worker pool, lifecycle tracking (`Queued → Running → Done / Failed /
//!   Cancelled`), sequence-numbered streamed progress events, cancellation,
//!   and crash-consistent persistence (job records, canonical results and
//!   resume checkpoints in a state directory).
//! * [`protocol`] — the NDJSON wire format the `pp_serve` binary speaks
//!   over stdin/stdout and a Unix domain socket, with schema validators
//!   (`service_check` runs them in CI).  See the module docs for the
//!   message reference.
//!
//! ## Determinism contract
//!
//! Submitting a scenario to a server yields a result **bit-identical** to
//! running the same scenario standalone (`usd_run --scenario`, or the
//! equivalent hand-typed flags): same `SimSeed` derivations, same budget
//! formula, same builder calls, and service machinery (recorders,
//! telemetry, progress pauses, checkpoints) that never touches the RNG
//! stream.  The contract is independent of queue order, priority, worker
//! pool size and whatever other jobs run concurrently — each job owns its
//! engines and RNG streams outright.  `tests/service_equivalence.rs` pins
//! it with concurrent-job and socket round trips.
//!
//! ## Resume contract
//!
//! With a state directory, a killed server (crash or [`Server::kill`])
//! leaves every in-flight USD job as a `running` record plus a checkpoint
//! captured at an exact pause boundary; reopening the directory re-queues
//! and resumes those jobs, and their results are bit-identical to the
//! never-interrupted run.  Sampling-dynamic jobs have no mid-run capture
//! seam — they restart from scratch and reach the same result by
//! determinism alone, repaying only wall time.  Canonical result documents
//! are stored verbatim, so `result` replies survive restarts byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod job;
pub mod json;
pub mod protocol;
pub mod runner;
pub mod scenario;
pub mod server;

pub use job::{JobId, JobRecord, JobState, JOB_FORMAT_VERSION};
pub use protocol::{check_progress_line, check_result_doc, parse_request, Request};
pub use runner::{
    result_json, run_scenario, Interrupt, ProgressEvent, RunControl, RunVerdict, ScenarioOutcome,
};
pub use scenario::{Dynamic, ScenarioConfig, SCENARIO_FORMAT_VERSION};
pub use server::{JobStatus, Server, ServerConfig};
