//! Drives the real `pp_serve` binary over its Unix domain socket: submit,
//! watch (schema-validated event stream), result, shutdown — and the
//! stored result is bit-identical to the standalone runner.

use pp_service::json::Json;
use pp_service::protocol;
use pp_service::runner::{result_json, run_scenario, RunControl, RunVerdict};
use pp_service::scenario::ScenarioConfig;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

fn standalone_json(scenario: &ScenarioConfig) -> String {
    let RunVerdict::Finished(outcome) =
        run_scenario(scenario, RunControl::default()).expect("standalone scenario run failed")
    else {
        panic!("a default RunControl cannot be interrupted");
    };
    result_json(&outcome)
}

#[test]
fn socket_round_trip_matches_standalone() {
    let scenario = ScenarioConfig::new(500, 3).with_seed(9);
    let expected = standalone_json(&scenario);
    let dir = std::env::temp_dir().join(format!("pp_serve_socket_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("socket dir");
    let socket = dir.join("pp.sock");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pp_serve"))
        .args(["--socket", socket.to_str().unwrap(), "--workers", "2"])
        .spawn()
        .expect("spawn pp_serve");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !socket.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(socket.exists(), "pp_serve never bound its socket");

    // One request per connection; the server replies and closes.
    let request = |line: String| -> Vec<String> {
        let mut stream = UnixStream::connect(&socket).expect("connect");
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send newline");
        BufReader::new(stream)
            .lines()
            .map(|l| l.expect("read reply"))
            .collect()
    };

    let submit = request(format!(
        "{{\"op\":\"submit\",\"scenario\":{},\"priority\":0}}",
        scenario.to_json()
    ));
    let reply = Json::parse(&submit[0]).expect("submit reply parses");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{submit:?}"
    );
    let id = reply.get("job").and_then(Json::as_u64).expect("job id");

    // `watch` streams schema-valid, densely-numbered events ending in the
    // terminal line, which embeds the result document.
    let events = request(format!("{{\"op\":\"watch\",\"job\":{id}}}"));
    assert!(!events.is_empty());
    for (seq, line) in events.iter().enumerate() {
        protocol::check_progress_line(line).expect("streamed line violates the schema");
        let doc = Json::parse(line).expect("event parses");
        assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(seq as u64));
    }
    let last = Json::parse(events.last().unwrap()).expect("terminal event parses");
    assert_eq!(last.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(last.get("state").and_then(Json::as_str), Some("done"));

    // The stored result comes back bit-identical to the standalone run.
    let result = request(format!("{{\"op\":\"result\",\"job\":{id}}}"));
    let reply = Json::parse(&result[0]).expect("result reply parses");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{result:?}"
    );
    let payload = reply.get("result").expect("payload");
    protocol::check_result_doc(payload).expect("result violates the schema");
    assert_eq!(
        payload.to_json(),
        expected,
        "socket result diverged from standalone"
    );

    // Errors arrive as `"ok":false` replies, not dropped connections.
    let missing = request("{\"op\":\"result\",\"job\":999}".to_string());
    let reply = Json::parse(&missing[0]).expect("error reply parses");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));

    let bye = request("{\"op\":\"shutdown\"}".to_string());
    assert_eq!(
        Json::parse(&bye[0])
            .ok()
            .and_then(|d| d.get("ok").and_then(Json::as_bool)),
        Some(true)
    );
    let status = child.wait().expect("pp_serve exits");
    assert!(status.success(), "pp_serve exited with {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
