//! Property tests for the scenario schema (issue satellite): random valid
//! configs serialize → parse → serialize to byte-identical JSON, and
//! invalid configs fail with the same named diagnostics the CLI prints.
//!
//! The vendored proptest harness only offers range/tuple strategies, so
//! enum variants are selected by drawn indices and assembled in plain code.

use pp_core::EngineChoice;
use pp_service::scenario::{Dynamic, ScenarioConfig};
use pp_workloads::{BiasSpec, UndecidedSpec};
use proptest::prelude::*;

/// Everything a case draws, as plain numbers.
type Draw = (
    (u64, u64, usize, usize),   // seed, n, k, dynamic index
    (usize, f64, u64, usize),   // bias index, bias float, bias integer, undecided index
    (f64, u64, usize),          // undecided fraction, undecided count, plan index
    (usize, u64, usize, usize), // shards, epoch selector, threads, replicas
    (usize, u64, u64),          // j, samples, budget selector
);

/// Assembles a scenario that satisfies every cross-field rule, exercising
/// all bias/undecided kinds, all dynamics and all legal engine plans.
fn assemble(draw: Draw) -> ScenarioConfig {
    let (
        (seed, n, k, dyn_idx),
        (bias_idx, bias_f, bias_u, und_idx),
        (und_f, und_u, plan_idx),
        (shards, epoch_sel, threads, replicas),
        (j, samples, budget_sel),
    ) = draw;
    let dynamic = Dynamic::ALL[dyn_idx % Dynamic::ALL.len()];
    let mut scenario = ScenarioConfig::new(n, k)
        .with_seed(seed)
        .with_dynamic(dynamic)
        .with_samples(samples);
    scenario.bias = match bias_idx % 7 {
        0 => BiasSpec::None,
        1 => BiasSpec::Additive(bias_u),
        2 => BiasSpec::AdditiveInSqrtNLogN(bias_f),
        3 => BiasSpec::Multiplicative(1.0 + bias_f / 4.0),
        4 => BiasSpec::TwoWayTie(0.05 + bias_f / 12.0),
        5 => BiasSpec::PowerLaw(bias_f),
        _ => BiasSpec::DirichletLike(bias_u as u32 % 16 + 1),
    };
    scenario.undecided = match und_idx % 4 {
        0 => UndecidedSpec::None,
        1 => UndecidedSpec::Count(und_u),
        2 => UndecidedSpec::Fraction(und_f),
        _ => UndecidedSpec::MaxAdmissible,
    };
    if dynamic == Dynamic::JMajority {
        scenario = scenario.with_majority_samples(j);
    }
    // Sampling dynamics only admit the serial engines; the USD takes every
    // plan shape (serial, sharded with knobs, replica ensemble, mean-field).
    let plan_idx = if dynamic == Dynamic::Usd {
        plan_idx % 6
    } else {
        plan_idx % 3
    };
    match plan_idx {
        0 => {}
        1 => scenario.engine = Some(EngineChoice::Exact),
        2 => scenario.engine = Some(EngineChoice::Batched),
        3 => {
            scenario.engine = Some(EngineChoice::Sharded);
            if shards > 0 {
                scenario.shards = Some(shards);
            }
            if epoch_sel > 0 {
                scenario.epoch = Some(epoch_sel * 10_000);
            }
            if threads > 0 {
                scenario.threads = Some(threads);
            }
        }
        4 => {
            scenario.replicas = replicas;
            if shards % 2 == 0 {
                scenario.engine = Some(EngineChoice::Batched);
            }
            if threads > 0 {
                scenario.threads = Some(threads);
            }
        }
        _ => scenario.engine = Some(EngineChoice::MeanField),
    }
    if budget_sel > 0 {
        scenario.budget = Some(budget_sel * 1_000_000);
    }
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn valid_scenarios_round_trip_byte_identically(
        g1 in (0u64..u64::MAX, 2u64..50_000, 2usize..10, 0usize..6),
        g2 in (0usize..7, 0.1f64..4.0, 1u64..1_000, 0usize..4),
        g3 in (0.0f64..0.9, 0u64..500, 0usize..6),
        g4 in (0usize..8, 0u64..10, 0usize..8, 2usize..6),
        g5 in (1usize..9, 1u64..2_000, 0u64..4),
    ) {
        let scenario = assemble((g1, g2, g3, g4, g5));
        prop_assert!(
            scenario.validate().is_ok(),
            "generator emitted an invalid scenario: {:?} ({})",
            scenario,
            scenario.validate().unwrap_err()
        );
        let json = scenario.to_json();
        let back = match ScenarioConfig::from_json(&json) {
            Ok(back) => back,
            Err(e) => return Err(TestCaseError::Fail(format!("parse failed: {e} on {json}"))),
        };
        prop_assert_eq!(back, scenario, "parse changed the scenario");
        prop_assert_eq!(back.to_json(), json, "re-serialization changed the bytes");
    }

    #[test]
    fn invalid_scenarios_reproduce_cli_diagnostics(
        g1 in (0u64..u64::MAX, 2u64..50_000, 2usize..10, 0usize..6),
        g2 in (0usize..7, 0.1f64..4.0, 1u64..1_000, 0usize..4),
        g3 in (0.0f64..0.9, 0u64..500, 0usize..6),
        g4 in (0usize..8, 0u64..10, 0usize..8, 2usize..6),
        g5 in (1usize..9, 1u64..2_000, 0u64..4),
        which in 0usize..4,
    ) {
        // Break one cross-field rule and demand the CLI's exact sentence.
        let mut broken = assemble((g1, g2, g3, g4, g5));
        let expected: &str = match which {
            0 => {
                broken.samples = 0;
                "--samples must be positive"
            }
            1 => {
                broken.replicas = 0;
                "--replicas must be positive"
            }
            2 => {
                broken.engine = Some(EngineChoice::Exact);
                broken.shards = Some(4);
                broken.epoch = None;
                broken.replicas = 1;
                broken.threads = None;
                "--shards/--epoch require --engine sharded"
            }
            _ => {
                broken.budget = Some(0);
                "budget must be positive"
            }
        };
        prop_assert_eq!(broken.validate().unwrap_err(), expected.to_string());
        // The same document, parsed back, fails validation identically —
        // the service path and the CLI path reject with one voice.
        let reparsed = match ScenarioConfig::from_json(&broken.to_json()) {
            Ok(back) => back,
            Err(e) => return Err(TestCaseError::Fail(format!("parse failed: {e}"))),
        };
        prop_assert_eq!(reparsed.validate().unwrap_err(), expected.to_string());
    }
}
