//! The synchronous gossip-round engine.
//!
//! One gossip round applies `n` simultaneous responder updates against the
//! previous round's states, so it is *not* an instance of the sequential
//! count-vector chain and cannot be driven through the
//! [`pp_core::StepEngine`] backends — the round itself is already the batch
//! unit.  For the asynchronous (Poisson-clock) gossip model, which *is*
//! interaction-equivalent to the population model, use
//! [`crate::PoissonGossip::with_engine`] to pick an exact or batched
//! backend; experiment E7 compares the two models with the engine as a run
//! parameter.

use pp_core::{
    AgentState, Configuration, OpinionProtocol, Recorder, RunOutcome, RunResult, SimSeed,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// Executes an [`OpinionProtocol`] in the parallel gossip model: in every
/// round each agent draws a partner uniformly at random (self-partners
/// allowed, mirroring the population model's convention) and all agents apply
/// the responder rule simultaneously against the *previous* round's states.
///
/// # Examples
///
/// ```
/// use gossip_model::GossipSimulator;
/// use pp_core::{AgentState, Configuration, OpinionProtocol, SimSeed};
///
/// struct Voter { k: usize }
/// impl OpinionProtocol for Voter {
///     fn num_opinions(&self) -> usize { self.k }
///     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
///         if i.is_decided() { i } else { r }
///     }
/// }
///
/// let config = Configuration::from_counts(vec![95, 5], 0).unwrap();
/// let mut sim = GossipSimulator::new(Voter { k: 2 }, &config, SimSeed::from_u64(1));
/// let result = sim.run(10_000);
/// assert!(result.reached_consensus());
/// ```
#[derive(Debug)]
pub struct GossipSimulator<P> {
    protocol: P,
    agents: Vec<AgentState>,
    scratch: Vec<AgentState>,
    config: Configuration,
    rounds: u64,
    rng: SmallRng,
}

impl<P: OpinionProtocol> GossipSimulator<P> {
    /// Creates a gossip simulator.
    ///
    /// # Panics
    ///
    /// Panics if the protocol and configuration disagree on `k`.
    #[must_use]
    pub fn new(protocol: P, config: &Configuration, seed: SimSeed) -> Self {
        assert_eq!(
            protocol.num_opinions(),
            config.num_opinions(),
            "protocol/configuration opinion count mismatch"
        );
        let agents = config.to_states();
        GossipSimulator {
            scratch: agents.clone(),
            protocol,
            agents,
            config: config.clone(),
            rounds: 0,
            rng: seed.rng(),
        }
    }

    /// The current configuration.
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The protocol driving the simulation.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Executes one synchronous round.
    pub fn round(&mut self) {
        let n = self.agents.len();
        for idx in 0..n {
            let partner = self.agents[self.rng.gen_range(0..n)];
            self.scratch[idx] = self.protocol.respond(self.agents[idx], partner);
        }
        std::mem::swap(&mut self.agents, &mut self.scratch);
        self.rounds += 1;
        self.config = Configuration::from_states(&self.agents, self.config.num_opinions())
            .expect("gossip round preserves the population");
    }

    /// Runs until consensus or until `max_rounds`; the returned result carries
    /// the number of *rounds* in its interactions field (one gossip round is
    /// one unit of parallel time).
    pub fn run(&mut self, max_rounds: u64) -> RunResult {
        self.run_recorded(max_rounds, &mut pp_core::NullRecorder)
    }

    /// Runs like [`GossipSimulator::run`] while feeding the configuration
    /// after every round to the recorder (keyed by round number).
    pub fn run_recorded<R: Recorder>(&mut self, max_rounds: u64, recorder: &mut R) -> RunResult {
        recorder.record(self.rounds, &self.config);
        while self.rounds < max_rounds && !self.config.is_consensus() {
            self.round();
            recorder.record(self.rounds, &self.config);
        }
        let outcome = if self.config.is_consensus() {
            RunOutcome::Consensus
        } else {
            RunOutcome::BudgetExhausted
        };
        RunResult::new(outcome, self.rounds, self.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Usd {
        k: usize,
    }

    impl OpinionProtocol for Usd {
        fn num_opinions(&self) -> usize {
            self.k
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
    }

    #[test]
    fn rounds_preserve_population() {
        let config = Configuration::uniform(1_000, 4).unwrap();
        let mut sim = GossipSimulator::new(Usd { k: 4 }, &config, SimSeed::from_u64(1));
        for _ in 0..5 {
            sim.round();
            assert_eq!(sim.configuration().population(), 1_000);
            assert!(sim.configuration().is_consistent());
        }
        assert_eq!(sim.rounds(), 5);
    }

    #[test]
    fn a_round_can_change_a_constant_fraction_of_agents() {
        // The qualitative difference the paper highlights: one gossip round
        // can flip Θ(n) agents, whereas one population interaction flips at
        // most one.
        let config = Configuration::from_counts(vec![500, 500], 0).unwrap();
        let mut sim = GossipSimulator::new(Usd { k: 2 }, &config, SimSeed::from_u64(2));
        sim.round();
        let undecided = sim.configuration().undecided();
        assert!(
            undecided > 300,
            "expected a constant fraction of agents to become undecided, got {undecided}"
        );
    }

    #[test]
    fn biased_usd_gossip_converges_quickly() {
        let config = Configuration::from_counts(vec![1_500, 300, 200], 0).unwrap();
        let mut sim = GossipSimulator::new(Usd { k: 3 }, &config, SimSeed::from_u64(3));
        let result = sim.run(10_000);
        assert!(result.reached_consensus());
        assert!(
            result.interactions() < 200,
            "rounds = {}",
            result.interactions()
        );
        assert_eq!(result.winner().unwrap().index(), 0);
    }

    #[test]
    fn recorder_sees_round_indexed_snapshots() {
        let config = Configuration::from_counts(vec![90, 10], 0).unwrap();
        let mut last_round = 0u64;
        let mut count = 0u64;
        {
            let mut rec = |round: u64, _c: &Configuration| {
                assert!(round >= last_round);
                last_round = round;
                count += 1;
            };
            let mut sim = GossipSimulator::new(Usd { k: 2 }, &config, SimSeed::from_u64(4));
            sim.run_recorded(1_000, &mut rec);
        }
        assert!(count >= 2);
    }
}
