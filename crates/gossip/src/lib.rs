//! # gossip-model — the parallel gossip model and the USD within it
//!
//! The paper contrasts the population protocol model with the *parallel
//! gossip model*: in each synchronous round every agent independently selects
//! a uniformly random interaction partner and all agents update
//! simultaneously.  Becchetti et al. analyzed the k-opinion USD in that model
//! (`O(md(x)·log n)` rounds under a multiplicative bias); Appendix D of the
//! paper compares the two models' convergence rates.  This crate provides:
//!
//! * [`GossipSimulator`] — a synchronous-round engine for any
//!   [`pp_core::OpinionProtocol`],
//! * [`UsdGossip`] — the k-opinion USD in the gossip model, with the
//!   Becchetti et al. round bound for the comparison experiment,
//! * [`PoissonGossip`] — the asynchronous (continuous-time) gossip variant of
//!   Perron et al. / Boyd et al., which is the continuous-time analogue of
//!   the population protocol model.
//!
//! ## Example
//!
//! ```
//! use gossip_model::UsdGossip;
//! use pp_core::{Configuration, SimSeed};
//!
//! let config = Configuration::from_counts(vec![500, 300, 200], 0).unwrap();
//! let mut sim = UsdGossip::new(&config, SimSeed::from_u64(1));
//! let result = sim.run(10_000);
//! assert!(result.reached_consensus());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod async_gossip;
pub mod engine;
pub mod usd_gossip;

pub use async_gossip::PoissonGossip;
pub use engine::GossipSimulator;
pub use usd_gossip::UsdGossip;
