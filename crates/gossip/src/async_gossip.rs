//! The asynchronous (continuous-time) gossip model of Boyd et al. /
//! Perron et al.
//!
//! Each agent carries an independent Poisson clock of rate 1; when an agent's
//! clock rings it contacts a uniformly random partner.  This is the
//! continuous-time variant of the population protocol model: interaction
//! *counts* are identical in distribution, and continuous time advances by an
//! exponential with rate `n` between interactions.  The paper notes its
//! results transfer to this model directly; the reproduction includes it so
//! the three time scales (interactions, parallel time, continuous time) can
//! be compared explicitly.
//!
//! The simulator is built on the unified step-engine layer: it can drive the
//! discrete chain through [`pp_core::ExactEngine`] or
//! [`pp_core::BatchedEngine`].  With the batched backend a block of `m`
//! skipped interactions elapses `Gamma(m, n)` of continuous time in one draw
//! (the exact distribution of a sum of `m` independent `Exp(n)` waits), so
//! the continuous clock stays exact-in-distribution under skip-ahead.

use pp_core::engine::{Advance, StepEngine};
use pp_core::{
    Configuration, CountEngine, EngineChoice, OpinionProtocol, PpError, RunOutcome, RunResult,
    SimSeed, StopCondition,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// Draws a standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws `Gamma(shape, 1)` for integer `shape ≥ 1` via Marsaglia–Tsang
/// (exact; no shape restriction beyond `shape ≥ 1`).
fn gamma_integer_shape<R: Rng + ?Sized>(rng: &mut R, shape: u64) -> f64 {
    debug_assert!(shape >= 1);
    if shape == 1 {
        // Exponential: the common case (per-step waits).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return -u.ln();
    }
    let d = shape as f64 - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// A continuous-time simulator for any [`OpinionProtocol`].
///
/// Internally this drives the discrete count-based chain through a selectable
/// step engine and accumulates the exponential (or, for skipped blocks,
/// Gamma-distributed) waiting times between interactions.
///
/// # Examples
///
/// ```
/// use gossip_model::PoissonGossip;
/// use pp_core::{AgentState, Configuration, EngineChoice, OpinionProtocol, SimSeed, StopCondition};
///
/// struct Voter { k: usize }
/// impl OpinionProtocol for Voter {
///     fn num_opinions(&self) -> usize { self.k }
///     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
///         if i.is_decided() { i } else { r }
///     }
/// }
///
/// let config = Configuration::from_counts(vec![90, 10], 0).unwrap();
/// let mut sim = PoissonGossip::with_engine(
///     Voter { k: 2 }, config, SimSeed::from_u64(1), EngineChoice::Batched,
/// ).unwrap();
/// let result = sim.run(StopCondition::consensus().or_max_interactions(1_000_000));
/// assert!(result.reached_consensus());
/// assert!(sim.continuous_time() > 0.0);
/// ```
#[derive(Debug)]
pub struct PoissonGossip<P> {
    inner: CountEngine<P>,
    continuous_time: f64,
    clock_rng: SmallRng,
}

impl<P: OpinionProtocol> PoissonGossip<P> {
    /// Creates a continuous-time simulator on the exact backend.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] if the protocol and the
    /// configuration disagree on `k`.
    pub fn new(protocol: P, config: Configuration, seed: SimSeed) -> Result<Self, PpError> {
        Self::with_engine(protocol, config, seed, EngineChoice::Exact)
    }

    /// Creates a continuous-time simulator on the selected count-based
    /// backend (exact or batched).
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] on a `k` mismatch and
    /// [`PpError::UnsupportedEngine`] for the mean-field backend (which has
    /// no interaction-level clock to couple to) and the sharded backend
    /// (its reconciliation epochs bundle many events into one jump, so the
    /// Gamma waiting-time coupling per state change does not apply).
    pub fn with_engine(
        protocol: P,
        config: Configuration,
        seed: SimSeed,
        choice: EngineChoice,
    ) -> Result<Self, PpError> {
        Ok(PoissonGossip {
            inner: CountEngine::try_new(protocol, config, seed.child(0), choice)?,
            continuous_time: 0.0,
            clock_rng: seed.child(1).rng(),
        })
    }

    /// The current configuration.
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        self.inner.configuration()
    }

    /// Elapsed continuous time (expected `t/n` after `t` interactions).
    #[must_use]
    pub fn continuous_time(&self) -> f64 {
        self.continuous_time
    }

    /// Number of discrete interactions performed.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.inner.interactions()
    }

    /// The backend identifier of the underlying engine.
    #[must_use]
    pub fn engine_name(&self) -> &'static str {
        self.inner.engine_name()
    }

    /// Elapses the continuous time of `m` consecutive interactions: one
    /// `Gamma(m, n)` draw, the exact law of a sum of `m` rate-`n`
    /// exponentials.
    fn elapse(&mut self, m: u64) {
        if m == 0 {
            return;
        }
        let n = self.configuration().population() as f64;
        self.continuous_time += gamma_integer_shape(&mut self.clock_rng, m) / n;
    }

    /// Performs one interaction, advancing continuous time by an
    /// `Exponential(n)` waiting time; returns `true` if it was productive.
    pub fn step(&mut self) -> bool {
        let before = self.interactions();
        let advance = self.inner.advance(before + 1);
        let elapsed = self.interactions() - before;
        self.elapse(elapsed);
        advance == Advance::Event
    }

    /// Runs until the stop condition is met (budget counts interactions).
    ///
    /// # Panics
    ///
    /// Panics if the stop condition is unbounded.
    pub fn run(&mut self, stop: StopCondition) -> RunResult {
        assert!(
            stop.is_bounded(),
            "stop condition can never terminate the run"
        );
        loop {
            if stop.goal_met(self.configuration()) {
                let outcome = if self.configuration().is_consensus() {
                    RunOutcome::Consensus
                } else {
                    RunOutcome::OpinionSettled
                };
                return RunResult::new(outcome, self.interactions(), self.configuration().clone())
                    .with_scheduler(self.inner.scheduler_name());
            }
            let limit = match stop.max_interactions() {
                Some(budget) if self.interactions() >= budget => {
                    return RunResult::new(
                        RunOutcome::BudgetExhausted,
                        self.interactions(),
                        self.configuration().clone(),
                    )
                    .with_scheduler(self.inner.scheduler_name());
                }
                Some(budget) => budget,
                None => u64::MAX,
            };
            let before = self.interactions();
            let advance = self.inner.advance(limit);
            let elapsed = self.interactions() - before;
            self.elapse(elapsed);
            if advance == Advance::Absorbed {
                assert!(
                    stop.max_interactions().is_some() || stop.goal_met(self.configuration()),
                    "absorbing configuration {} can never meet the stop condition",
                    self.configuration()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::AgentState;

    #[derive(Debug)]
    struct Usd2;

    impl OpinionProtocol for Usd2 {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
    }

    #[test]
    fn continuous_time_tracks_interactions_over_n() {
        let config = Configuration::from_counts(vec![500, 500], 0).unwrap();
        let mut sim = PoissonGossip::new(Usd2, config, SimSeed::from_u64(1)).unwrap();
        for _ in 0..100_000 {
            sim.step();
        }
        let expected = sim.interactions() as f64 / 1_000.0;
        let measured = sim.continuous_time();
        assert!(
            (measured - expected).abs() / expected < 0.05,
            "continuous time {measured} vs expected {expected}"
        );
    }

    #[test]
    fn batched_continuous_time_matches_interaction_count_too() {
        let config = Configuration::from_counts(vec![1_500, 500], 0).unwrap();
        let mut sim =
            PoissonGossip::with_engine(Usd2, config, SimSeed::from_u64(4), EngineChoice::Batched)
                .unwrap();
        let result = sim.run(StopCondition::consensus().or_max_interactions(50_000_000));
        assert!(result.reached_consensus());
        let expected = sim.interactions() as f64 / 2_000.0;
        let measured = sim.continuous_time();
        // Gamma batch waits must aggregate to the same time scale.
        assert!(
            (measured - expected).abs() / expected < 0.2,
            "continuous time {measured} vs expected {expected}"
        );
    }

    #[test]
    fn biased_run_converges_in_logarithmic_continuous_time() {
        let config = Configuration::from_counts(vec![1_800, 200], 0).unwrap();
        let mut sim = PoissonGossip::new(Usd2, config, SimSeed::from_u64(2)).unwrap();
        let result = sim.run(StopCondition::consensus().or_max_interactions(50_000_000));
        assert!(result.reached_consensus());
        // Perron et al.: O(log n) continuous time; allow a generous constant.
        let log_n = 2_000f64.ln();
        assert!(
            sim.continuous_time() < 40.0 * log_n,
            "continuous time {} vs log n {log_n}",
            sim.continuous_time()
        );
    }

    #[test]
    fn mismatch_is_reported() {
        let config = Configuration::uniform(100, 3).unwrap();
        assert!(PoissonGossip::new(Usd2, config, SimSeed::from_u64(0)).is_err());
    }

    #[test]
    fn mean_field_backend_is_rejected() {
        let config = Configuration::uniform(100, 2).unwrap();
        let err =
            PoissonGossip::with_engine(Usd2, config, SimSeed::from_u64(0), EngineChoice::MeanField)
                .unwrap_err();
        assert!(matches!(err, PpError::UnsupportedEngine { .. }));
    }

    #[test]
    fn sharded_backend_is_rejected_with_a_clear_error() {
        // Epoch-granular engines cannot drive the per-event Gamma clock.
        let config = Configuration::uniform(100, 2).unwrap();
        let err =
            PoissonGossip::with_engine(Usd2, config, SimSeed::from_u64(0), EngineChoice::Sharded)
                .unwrap_err();
        assert!(matches!(
            err,
            PpError::UnsupportedEngine {
                requested: "sharded"
            }
        ));
    }

    #[test]
    fn unsupported_engine_errors_render_an_actionable_diagnostic() {
        // The error an operator actually sees: it must name the rejected
        // backend, and the accepted backends must still construct — the
        // diagnostic contract `usd_run`-style frontends rely on.
        let config = Configuration::uniform(100, 2).unwrap();
        for (choice, name) in [
            (EngineChoice::MeanField, "mean-field"),
            (EngineChoice::Sharded, "sharded"),
        ] {
            let err =
                PoissonGossip::with_engine(Usd2, config.clone(), SimSeed::from_u64(0), choice)
                    .unwrap_err();
            let message = err.to_string();
            assert!(
                message.contains(name) && message.contains("not available"),
                "diagnostic for {choice} should name the backend: {message:?}"
            );
        }
        for choice in [EngineChoice::Exact, EngineChoice::Batched] {
            assert!(
                PoissonGossip::with_engine(Usd2, config.clone(), SimSeed::from_u64(0), choice)
                    .is_ok(),
                "{choice} must stay constructible"
            );
        }
    }

    #[test]
    fn gamma_sampler_matches_mean_and_variance() {
        let mut rng = SimSeed::from_u64(77).rng();
        for &shape in &[1u64, 2, 7, 50] {
            let trials = 20_000;
            let draws: Vec<f64> = (0..trials)
                .map(|_| gamma_integer_shape(&mut rng, shape))
                .collect();
            let mean = draws.iter().sum::<f64>() / trials as f64;
            let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
            let s = shape as f64;
            assert!(
                (mean - s).abs() < 0.1 * s.max(1.0),
                "shape {shape}: mean {mean}"
            );
            assert!(
                (var - s).abs() < 0.2 * s.max(1.0),
                "shape {shape}: var {var}"
            );
        }
    }
}
