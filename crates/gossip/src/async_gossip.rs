//! The asynchronous (continuous-time) gossip model of Boyd et al. /
//! Perron et al.
//!
//! Each agent carries an independent Poisson clock of rate 1; when an agent's
//! clock rings it contacts a uniformly random partner.  This is the
//! continuous-time variant of the population protocol model: interaction
//! *counts* are identical in distribution, and continuous time advances by an
//! exponential with rate `n` between interactions.  The paper notes its
//! results transfer to this model directly; the reproduction includes it so
//! the three time scales (interactions, parallel time, continuous time) can
//! be compared explicitly.

use pp_core::{Configuration, CountSimulator, OpinionProtocol, PpError, RunResult, SimSeed, StopCondition};
use rand::Rng;

/// A continuous-time simulator for any [`OpinionProtocol`].
///
/// Internally this drives the discrete count-based simulator and accumulates
/// exponential waiting times between interactions.
///
/// # Examples
///
/// ```
/// use gossip_model::PoissonGossip;
/// use pp_core::{AgentState, Configuration, OpinionProtocol, SimSeed, StopCondition};
///
/// struct Voter { k: usize }
/// impl OpinionProtocol for Voter {
///     fn num_opinions(&self) -> usize { self.k }
///     fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
///         if i.is_decided() { i } else { r }
///     }
/// }
///
/// let config = Configuration::from_counts(vec![90, 10], 0).unwrap();
/// let mut sim = PoissonGossip::new(Voter { k: 2 }, config, SimSeed::from_u64(1)).unwrap();
/// let result = sim.run(StopCondition::consensus().or_max_interactions(1_000_000));
/// assert!(result.reached_consensus());
/// assert!(sim.continuous_time() > 0.0);
/// ```
#[derive(Debug)]
pub struct PoissonGossip<P> {
    inner: CountSimulator<P>,
    continuous_time: f64,
    clock_rng: rand::rngs::SmallRng,
}

impl<P: OpinionProtocol> PoissonGossip<P> {
    /// Creates a continuous-time simulator.
    ///
    /// # Errors
    ///
    /// Returns [`PpError::OpinionCountMismatch`] if the protocol and the
    /// configuration disagree on `k`.
    pub fn new(protocol: P, config: Configuration, seed: SimSeed) -> Result<Self, PpError> {
        Ok(PoissonGossip {
            inner: CountSimulator::try_new(protocol, config, seed.child(0))?,
            continuous_time: 0.0,
            clock_rng: seed.child(1).rng(),
        })
    }

    /// The current configuration.
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        self.inner.configuration()
    }

    /// Elapsed continuous time (expected `t/n` after `t` interactions).
    #[must_use]
    pub fn continuous_time(&self) -> f64 {
        self.continuous_time
    }

    /// Number of discrete interactions performed.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.inner.interactions()
    }

    /// Performs one interaction, advancing continuous time by an
    /// `Exponential(n)` waiting time; returns `true` if it was productive.
    pub fn step(&mut self) -> bool {
        let n = self.configuration().population() as f64;
        let u: f64 = self.clock_rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.continuous_time += -u.ln() / n;
        self.inner.step()
    }

    /// Runs until the stop condition is met (budget counts interactions).
    ///
    /// # Panics
    ///
    /// Panics if the stop condition is unbounded.
    pub fn run(&mut self, stop: StopCondition) -> RunResult {
        assert!(stop.is_bounded(), "stop condition can never terminate the run");
        loop {
            if stop.goal_met(self.configuration()) {
                break;
            }
            if let Some(budget) = stop.max_interactions() {
                if self.interactions() >= budget {
                    break;
                }
            }
            self.step();
        }
        // Delegate the final classification to the discrete simulator by
        // running it for zero further interactions.
        self.inner.run(StopCondition::after_interactions(self.interactions()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::AgentState;

    #[derive(Debug)]
    struct Usd2;

    impl OpinionProtocol for Usd2 {
        fn num_opinions(&self) -> usize {
            2
        }
        fn respond(&self, r: AgentState, i: AgentState) -> AgentState {
            match (r, i) {
                (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
                (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
                _ => r,
            }
        }
    }

    #[test]
    fn continuous_time_tracks_interactions_over_n() {
        let config = Configuration::from_counts(vec![500, 500], 0).unwrap();
        let mut sim = PoissonGossip::new(Usd2, config, SimSeed::from_u64(1)).unwrap();
        for _ in 0..100_000 {
            sim.step();
        }
        let expected = sim.interactions() as f64 / 1_000.0;
        let measured = sim.continuous_time();
        assert!(
            (measured - expected).abs() / expected < 0.05,
            "continuous time {measured} vs expected {expected}"
        );
    }

    #[test]
    fn biased_run_converges_in_logarithmic_continuous_time() {
        let config = Configuration::from_counts(vec![1_800, 200], 0).unwrap();
        let mut sim = PoissonGossip::new(Usd2, config, SimSeed::from_u64(2)).unwrap();
        let result = sim.run(StopCondition::consensus().or_max_interactions(50_000_000));
        assert!(result.reached_consensus());
        // Perron et al.: O(log n) continuous time; allow a generous constant.
        let log_n = 2_000f64.ln();
        assert!(
            sim.continuous_time() < 40.0 * log_n,
            "continuous time {} vs log n {log_n}",
            sim.continuous_time()
        );
    }

    #[test]
    fn mismatch_is_reported() {
        let config = Configuration::uniform(100, 3).unwrap();
        assert!(PoissonGossip::new(Usd2, config, SimSeed::from_u64(0)).is_err());
    }
}
