//! The k-opinion USD in the parallel gossip model (Becchetti et al.).

use crate::engine::GossipSimulator;
use pp_core::{AgentState, Configuration, OpinionProtocol, Recorder, RunResult, SimSeed};

/// The USD transition, defined locally for the gossip engine (identical to
/// `usd_core::UndecidedStateDynamics`; duplicated to keep the gossip crate
/// independent of the core crate's build).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipUsdProtocol {
    k: usize,
}

impl OpinionProtocol for GossipUsdProtocol {
    fn num_opinions(&self) -> usize {
        self.k
    }

    fn respond(&self, responder: AgentState, initiator: AgentState) -> AgentState {
        match (responder, initiator) {
            (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
            (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
            _ => responder,
        }
    }

    fn name(&self) -> &str {
        "undecided state dynamics (gossip model)"
    }
}

/// The k-opinion USD running in synchronous gossip rounds, as analyzed by
/// Becchetti et al. (SODA 2015).
///
/// # Examples
///
/// ```
/// use gossip_model::UsdGossip;
/// use pp_core::{Configuration, SimSeed};
///
/// let config = Configuration::from_counts(vec![600, 250, 150], 0).unwrap();
/// let mut sim = UsdGossip::new(&config, SimSeed::from_u64(9));
/// let result = sim.run(5_000);
/// assert!(result.reached_consensus());
/// ```
#[derive(Debug)]
pub struct UsdGossip {
    inner: GossipSimulator<GossipUsdProtocol>,
    initial: Configuration,
}

impl UsdGossip {
    /// Creates the gossip-model USD from an initial configuration.
    #[must_use]
    pub fn new(config: &Configuration, seed: SimSeed) -> Self {
        UsdGossip {
            inner: GossipSimulator::new(
                GossipUsdProtocol {
                    k: config.num_opinions(),
                },
                config,
                seed,
            ),
            initial: config.clone(),
        }
    }

    /// The initial configuration.
    #[must_use]
    pub fn initial_configuration(&self) -> &Configuration {
        &self.initial
    }

    /// The current configuration.
    #[must_use]
    pub fn configuration(&self) -> &Configuration {
        self.inner.configuration()
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.inner.rounds()
    }

    /// Executes one synchronous round.
    pub fn round(&mut self) {
        self.inner.round();
    }

    /// Runs until consensus or `max_rounds` (the result's interaction count is
    /// the round count).
    pub fn run(&mut self, max_rounds: u64) -> RunResult {
        self.inner.run(max_rounds)
    }

    /// Runs with a recorder keyed by round number.
    pub fn run_recorded<R: Recorder>(&mut self, max_rounds: u64, recorder: &mut R) -> RunResult {
        self.inner.run_recorded(max_rounds, recorder)
    }

    /// The Becchetti et al. round bound `md(x(0))·ln n` (unit constant), where
    /// `md` is the monochromatic distance of the initial configuration.  The
    /// Appendix D comparison experiment contrasts this with the paper's
    /// population-model bound converted to parallel time.
    #[must_use]
    pub fn becchetti_round_bound(&self) -> f64 {
        let n = self.initial.population() as f64;
        let md = self.initial.monochromatic_distance().unwrap_or(1.0);
        md * n.max(2.0).ln()
    }

    /// The paper's Theorem 2 multiplicative-bias bound converted to parallel
    /// time (`log n + n/x₁(0)`, unit constants), for the Appendix D
    /// comparison.
    #[must_use]
    pub fn population_parallel_bound(&self) -> f64 {
        let n = self.initial.population() as f64;
        let x1 = self.initial.max_support().max(1) as f64;
        n.max(2.0).ln() + n / x1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn becchetti_bound_uses_monochromatic_distance() {
        // Uniform over k opinions: md = k, so the bound is ~ k ln n.
        let config = Configuration::uniform(10_000, 10).unwrap();
        let sim = UsdGossip::new(&config, SimSeed::from_u64(1));
        let bound = sim.becchetti_round_bound();
        let expected = 10.0 * 10_000f64.ln();
        assert!(
            (bound - expected).abs() / expected < 0.01,
            "bound = {bound}"
        );
    }

    #[test]
    fn appendix_d_crossover_direction() {
        // When x1 is close to the average opinion size, the population-model
        // parallel bound (log n + n/x1 ≈ log n + k) beats the gossip bound
        // (md log n ≈ k log n); when x1 is much larger than n log n / k the
        // direction flips.  We check the first direction, which is the
        // paper's headline improvement.
        let n = 100_000u64;
        let k = 50usize;
        let config = Configuration::uniform(n, k).unwrap();
        let sim = UsdGossip::new(&config, SimSeed::from_u64(2));
        assert!(
            sim.population_parallel_bound() < sim.becchetti_round_bound(),
            "population bound {} should beat gossip bound {} for x1 ≈ n/k",
            sim.population_parallel_bound(),
            sim.becchetti_round_bound()
        );
    }

    #[test]
    fn multiplicative_bias_run_converges_and_plurality_wins() {
        let config = Configuration::from_counts(vec![4_000, 1_000, 1_000], 0).unwrap();
        let mut sim = UsdGossip::new(&config, SimSeed::from_u64(3));
        let result = sim.run(50_000);
        assert!(result.reached_consensus());
        assert_eq!(result.winner().unwrap().index(), 0);
        // Rounds should be well within a small multiple of md·ln n.
        assert!((result.interactions() as f64) < 20.0 * sim.becchetti_round_bound());
    }

    #[test]
    fn initial_configuration_is_kept() {
        let config = Configuration::from_counts(vec![80, 20], 0).unwrap();
        let mut sim = UsdGossip::new(&config, SimSeed::from_u64(4));
        sim.run(10_000);
        assert_eq!(sim.initial_configuration(), &config);
    }
}
