//! A minimal benchmark harness exposing the subset of the Criterion API this
//! workspace's `benches/` targets use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`Throughput`] and
//! [`BenchmarkId`].
//!
//! The build environment has no registry access, so the workspace vendors
//! this harness instead of the real crate.  It measures wall-clock time with
//! `std::time::Instant`, reports the median over `sample_size` samples as an
//! aligned text line (including derived throughput when configured), and
//! honors `--bench` / test-mode invocation conventions enough for
//! `cargo bench` and `cargo test --benches` to run.  Statistical analysis,
//! HTML reports and baseline comparison are intentionally out of scope.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns its argument while hiding it from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How the setup output of [`Bencher::iter_batched`] is batched (accepted for
/// API compatibility; the vendored harness always runs one setup per
/// measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the measured routine and accumulates timing samples.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(target_samples),
            target_samples,
        }
    }

    /// Times `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(black_box(out));
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(black_box(out));
        }
    }

    fn median(&self) -> Duration {
        let mut v = self.samples.clone();
        v.sort_unstable();
        v.get(v.len() / 2).copied().unwrap_or_default()
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let median = bencher.median();
    let mut line = format!("bench: {name:<60} median {:>12}", format_duration(median));
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:>14.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:>14.0} B/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    smoke_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` (and plain test-mode execution) passes
        // `--test`; use a single sample there so benches act as smoke tests.
        let smoke_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Criterion {
            sample_size: if smoke_mode { 1 } else { 10 },
            smoke_mode,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        if !self.smoke_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&id.to_string(), &bencher, None);
    }
}

/// A group of related benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self._criterion.smoke_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Shrinks the measurement budget (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(4);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 4);
        let mut b = Bencher::new(3);
        b.iter_batched(|| 41, |x| x + 1, BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(1000).to_string(), "1000");
    }

    #[test]
    fn groups_run_to_completion() {
        let mut c = Criterion {
            sample_size: 1,
            smoke_mode: true,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function("plain", |b| b.iter(|| 7));
        group.finish();
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(format_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(12)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
