//! A vendored facade over the `serde` surface this workspace touches.
//!
//! The build environment has no registry access.  In-tree code only ever
//! *annotates* types with `#[derive(Serialize, Deserialize)]` — no module
//! performs actual serialization (reports use hand-rolled CSV/JSON writers) —
//! so this facade provides the two marker traits and derive macros that
//! expand to nothing.  Swapping the real serde back in requires only a
//! manifest edit; the annotations are already in place.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods in the facade).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (no methods in the facade).
pub trait Deserialize<'de>: Sized {}
