//! A minimal property-testing harness exposing the subset of the `proptest`
//! API this workspace uses: the [`proptest!`] macro, range and
//! [`collection::vec`] strategies, tuple strategies, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! The build environment has no registry access, so the workspace vendors
//! this harness instead of the real crate.  Semantics: each property runs for
//! a fixed number of random cases (default 64, configurable through
//! `ProptestConfig::with_cases`), deterministically seeded from the property
//! name so failures reproduce across runs.  Shrinking is not implemented —
//! a failing case reports the panic message of its first failure instead of
//! a minimized counterexample, which is adequate for the invariant checks in
//! this repository.  Swapping the real proptest back in requires only a
//! manifest edit.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::ops::Range;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Per-property configuration (only the case count is supported).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies while generating a case.
#[derive(Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// A deterministic generator derived from the property name, so each
    /// property sees a stable sequence of cases across runs.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open, as in
    /// proptest's `SizeRange` usage with ranges).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Drives one property: samples cases until `config.cases` are accepted (or
/// a generous rejection budget is exhausted) and panics on the first failure.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic(name);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(100);
    while accepted < config.cases {
        assert!(
            attempts < max_attempts,
            "property {name}: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
            config.cases
        );
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed on case {attempts}: {msg}")
            }
        }
    }
}

/// The prelude mirrored from the real crate.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declares property tests (see crate docs for supported grammar).
#[macro_export]
macro_rules! proptest {
    (@internal ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |proptest_case_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), proptest_case_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    // With a leading #![proptest_config(...)] attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@internal ($config) $($rest)*);
    };
    // Without configuration: use the default.
    ($($rest:tt)*) => {
        $crate::proptest!(@internal ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`", left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_size_range(v in collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len = {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_assume_work((a, b) in (0usize..10, 0usize..10)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_panic_with_context() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(3), |_| {
            Err(TestCaseError::Fail("nope".to_string()))
        });
    }
}
