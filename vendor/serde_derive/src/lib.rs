//! No-op stand-ins for serde's derive macros.
//!
//! The build environment has no registry access, so the workspace vendors a
//! serde facade whose derives expand to nothing: types stay annotated with
//! `#[derive(Serialize, Deserialize)]` exactly as they would be against the
//! real crate, and nothing in-tree performs actual serialization (reports are
//! emitted through hand-rolled CSV/JSON writers).  Swapping the real serde
//! back in requires only a manifest edit.

use proc_macro::TokenStream;

/// Accepts the annotated item and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
