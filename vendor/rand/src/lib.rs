//! A minimal, self-contained re-implementation of the subset of the `rand`
//! 0.8 API this workspace uses.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors the handful of primitives it needs: the [`Rng`] extension trait
//! (`gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], the
//! [`rngs::SmallRng`] generator (xoshiro256++, seeded through SplitMix64) and
//! [`seq::SliceRandom::shuffle`].  Integer ranges are sampled without modulo
//! bias via Lemire's widening-multiply rejection method, so the statistical
//! tests in the workspace are trustworthy.
//!
//! The API is call-compatible with `rand` 0.8 for every call site in this
//! repository; swapping the real crate back in requires only a manifest edit.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform sample from `range` using `rng`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Draws a uniform `u64` in `0..bound` without modulo bias (Lemire).
fn sample_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut lo = m as u64;
    if lo < bound {
        // Rejection zone to make every value in 0..bound equally likely.
        let t = bound.wrapping_neg() % bound;
        while lo < t {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + sample_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u64, usize, u32, u16, u8);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + unit * (range.end - range.start);
        // Floating rounding can land exactly on the excluded upper bound.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

/// The random number generator interface used throughout the workspace.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_uniform(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Statistically strong for simulation purposes (passes BigCrush in its
    /// published form) and `O(1)` state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed through SplitMix64 as recommended by the
            // xoshiro authors, so similar seeds yield uncorrelated streams.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SmallRng {
        /// The generator's raw xoshiro256++ state.
        ///
        /// Workspace extension over the `rand` 0.8 API surface: checkpointing
        /// needs to persist and re-own RNG stream positions.  The state is
        /// the full generator — [`SmallRng::from_state`] resumes the stream
        /// exactly where [`SmallRng::state`] observed it.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a raw state captured by
        /// [`SmallRng::state`] (workspace extension, see there).
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_reproducible_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_round_trip_resumes_the_stream_exactly() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn gen_range_is_in_bounds_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 7usize;
        let mut hits = vec![0u64; n];
        let trials = 70_000;
        for _ in 0..trials {
            hits[rng.gen_range(0..n)] += 1;
        }
        for &h in &hits {
            let frac = h as f64 / trials as f64;
            assert!((frac - 1.0 / n as f64).abs() < 0.01, "frac = {frac}");
        }
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
