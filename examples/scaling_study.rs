//! Scaling study: measure how the USD's convergence time grows with `n` and
//! `k` and fit the measurements against the paper's Theorem 2 predictions.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use k_opinion_usd::prelude::*;
use pp_analysis::regression::{log_log_fit, proportionality_fit};
use pp_analysis::Summary;

fn mean_time(n: u64, k: usize, additive_multiplier: f64, trials: u64) -> f64 {
    let budget = 400 * (k as u64) * n * (n as f64).ln() as u64;
    let mut times = Vec::new();
    for trial in 0..trials {
        let seed = SimSeed::from_u64(9_000 + trial);
        let config = InitialConfig::new(n, k)
            .additive_bias_in_sqrt_n_log_n(additive_multiplier)
            .build(seed)
            .expect("valid configuration");
        let mut sim = UsdSimulator::new(config, seed.child(5));
        let result = sim.run_to_consensus(budget);
        times.push(result.interactions() as f64);
    }
    Summary::from_slice(&times).mean()
}

fn main() {
    let trials = 8;

    // Sweep n at fixed k (additive-bias regime, Theorem 2.2: ~ k n log n).
    let k = 6;
    let ns: [u64; 4] = [5_000, 10_000, 20_000, 40_000];
    println!("sweep over n at k = {k} (additive bias 2·sqrt(n ln n), {trials} trials each):");
    let mut n_xs = Vec::new();
    let mut n_ys = Vec::new();
    for &n in &ns {
        let t = mean_time(n, k, 2.0, trials);
        println!(
            "  n = {:>7}: mean interactions = {:>14.0}  ({:.2} × k n ln n)",
            n,
            t,
            t / (k as f64 * n as f64 * (n as f64).ln())
        );
        n_xs.push(n as f64);
        n_ys.push(t);
    }
    if let Ok(fit) = log_log_fit(&n_xs, &n_ys) {
        println!(
            "  log-log slope in n = {:.3} (n log n predicts ≈ 1.0–1.15), R² = {:.4}",
            fit.slope, fit.r_squared
        );
    }

    // Sweep k at fixed n (Theorem 2.2: linear in k).
    let n = 20_000u64;
    let ks = [2usize, 4, 8, 16];
    println!("\nsweep over k at n = {n}:");
    let mut k_xs = Vec::new();
    let mut k_ys = Vec::new();
    for &k in &ks {
        let t = mean_time(n, k, 2.0, trials);
        println!("  k = {:>3}: mean interactions = {:>14.0}", k, t);
        k_xs.push(k as f64);
        k_ys.push(t);
    }
    if let Ok(fit) = proportionality_fit(&k_xs, &k_ys, |k| k * n as f64 * (n as f64).ln()) {
        println!(
            "  fit: interactions ≈ {:.2} · k n ln n (relative RMSE {:.2})",
            fit.coefficient, fit.relative_rmse
        );
    }

    println!("\nexpected shape (Theorem 2.2): interactions grow like k · n log n");
}
