//! Compare the USD across the three interaction models the paper discusses —
//! the population protocol model, the synchronous gossip model (Becchetti et
//! al.) and the asynchronous Poisson-clock model (Perron et al.) — and
//! against the baseline dynamics of the related-work section.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use consensus_dynamics::{
    MedianRule, SequentialSampler, SynchronizedUsd, ThreeMajority, TwoChoices, Voter,
};
use gossip_model::{PoissonGossip, UsdGossip};
use k_opinion_usd::prelude::*;
use pp_core::StopCondition;

fn main() {
    let n = 20_000;
    let k = 6;
    let budget = 500 * (k as u64) * n * (n as f64).ln() as u64;
    let config = InitialConfig::new(n, k)
        .multiplicative_bias(2.0)
        .build(SimSeed::from_u64(3))
        .expect("valid configuration");
    println!("initial configuration: {config}");
    println!("(multiplicative bias 2.0, n = {n}, k = {k}; all times in parallel-time units)\n");

    // --- The USD across the three interaction models -----------------------
    let mut pp = UsdSimulator::new(config.clone(), SimSeed::from_u64(10));
    let pp_result = pp.run_to_consensus(budget);
    println!(
        "{:<38} {:>10.1}  (winner {:?})",
        "USD, population protocol model:",
        pp_result.parallel_time(),
        pp_result.winner().map(|w| w.paper_index())
    );

    let mut gossip = UsdGossip::new(&config, SimSeed::from_u64(11));
    let gossip_result = gossip.run(1_000_000);
    println!(
        "{:<38} {:>10.1}  (winner {:?})",
        "USD, synchronous gossip model:",
        gossip_result.interactions() as f64,
        gossip_result.winner().map(|w| w.paper_index())
    );

    let mut poisson = PoissonGossip::new(
        UndecidedStateDynamics::new(k),
        config.clone(),
        SimSeed::from_u64(12),
    )
    .expect("matching opinion counts");
    let poisson_result = poisson.run(StopCondition::consensus().or_max_interactions(budget));
    println!(
        "{:<38} {:>10.1}  (winner {:?})",
        "USD, asynchronous Poisson model:",
        poisson.continuous_time(),
        poisson_result.winner().map(|w| w.paper_index())
    );

    // --- Baseline dynamics in the sequential (asynchronous) model ----------
    println!();
    let stop = StopCondition::consensus().or_max_interactions(budget);

    let voter =
        SequentialSampler::new(Voter::new(k), config.clone(), SimSeed::from_u64(20)).run(stop);
    println!(
        "{:<38} {:>10.1}",
        "Voter (1 sample):",
        voter.parallel_time()
    );

    let two =
        SequentialSampler::new(TwoChoices::new(k), config.clone(), SimSeed::from_u64(21)).run(stop);
    println!(
        "{:<38} {:>10.1}",
        "TwoChoices (2 samples):",
        two.parallel_time()
    );

    let three =
        SequentialSampler::new(ThreeMajority::new(k), config.clone(), SimSeed::from_u64(22))
            .run(stop);
    println!(
        "{:<38} {:>10.1}",
        "3-Majority (3 samples):",
        three.parallel_time()
    );

    let median =
        SequentialSampler::new(MedianRule::new(k), config.clone(), SimSeed::from_u64(23)).run(stop);
    println!(
        "{:<38} {:>10.1}",
        "MedianRule (ordered opinions):",
        median.parallel_time()
    );

    let mut sync = SynchronizedUsd::new(&config, SimSeed::from_u64(24));
    let sync_result = sync.run(1_000_000);
    println!(
        "{:<38} {:>10.1}",
        "Synchronized USD (phase clock):",
        sync_result.interactions() as f64
    );

    println!();
    println!(
        "paper bounds (unit constants): population USD = log n + n/x1 = {:.1}, gossip USD = md(x) log n = {:.1}",
        (n as f64).ln() + n as f64 / config.max_support() as f64,
        config.monochromatic_distance().unwrap_or(1.0) * (n as f64).ln()
    );
}
