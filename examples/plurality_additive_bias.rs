//! Approximate plurality consensus: how often does the initial plurality win
//! as its additive lead grows through the `√(n log n)` threshold?
//!
//! Reproduces the threshold behaviour of Theorem 2.2 / Lemma 2 on a single
//! population size with repeated trials.
//!
//! ```text
//! cargo run --release --example plurality_additive_bias
//! ```

use k_opinion_usd::prelude::*;
use pp_analysis::stats::proportion_with_wilson;

fn main() {
    let n = 20_000;
    let k = 6;
    let trials = 40;
    let budget = 200 * (k as u64) * n * (n as f64).ln() as u64;

    println!("n = {n}, k = {k}, {trials} trials per bias level");
    println!(
        "bias is given in units of sqrt(n ln n) = {:.0} agents",
        bounds::bias_margin(n, 1.0)
    );
    println!();
    println!(
        "{:>18}  {:>12}  {:>16}  {:>18}",
        "bias multiplier", "bias", "plurality wins", "wilson 95% CI"
    );

    for &mult in &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut wins = 0u64;
        let mut bias_agents = 0u64;
        for trial in 0..trials {
            let seed = SimSeed::from_u64(7_000 + trial);
            let config = InitialConfig::new(n, k)
                .additive_bias_in_sqrt_n_log_n(mult)
                .build(seed)
                .expect("valid configuration");
            bias_agents = config.additive_bias().unwrap_or(0);
            let mut sim = UsdSimulator::new(config, seed.child(1));
            let result = sim.run_to_settlement(budget);
            if result.winner().map(|w| w.index()) == Some(0) {
                wins += 1;
            }
        }
        let (rate, lo, hi) = proportion_with_wilson(wins, trials);
        println!(
            "{:>18.2}  {:>12}  {:>13.2}    [{:.2}, {:.2}]",
            mult, bias_agents, rate, lo, hi
        );
    }

    println!();
    println!(
        "expected shape: ~1/k = {:.2} at zero bias, rising to ~1.0 beyond one threshold unit",
        1.0 / k as f64
    );
}
