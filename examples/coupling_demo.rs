//! Demonstrate the Lemma 17 coupling: the k-opinion USD, run jointly with its
//! 2-opinion projection under the identity coupling, never violates the
//! majorization invariant and finishes no later than the 2-opinion process.
//!
//! ```text
//! cargo run --release --example coupling_demo
//! ```

use k_opinion_usd::prelude::*;
use pp_core::Configuration;

fn main() {
    let n: u64 = 30_000;
    let k = 6;
    // Phase 5 precondition: a 2/3 absolute majority for opinion 1.
    let x1 = 2 * n / 3 + 1;
    let share = (n - x1) / (k as u64 - 1);
    let mut counts = vec![share; k];
    counts[0] = x1;
    counts[k - 1] = n - x1 - share * (k as u64 - 2);
    let config = Configuration::from_counts(counts, 0).expect("valid configuration");
    println!("initial configuration: {config}");

    let mut coupled = CoupledUsd::new(&config, SimSeed::from_u64(42));
    println!("2-opinion projection:   {}", coupled.two_configuration());

    let report = coupled.run(2_000_000_000);
    println!();
    println!("coupled interactions:        {}", report.interactions);
    println!(
        "invariant violations:        {} (Lemma 17 claims 0)",
        report.invariant_violations
    );
    match (report.k_consensus_at, report.two_consensus_at) {
        (Some(kt), Some(tt)) => {
            println!("k-opinion consensus at:      {kt}");
            println!("2-opinion consensus at:      {tt}");
            println!(
                "majorization implies the k-process finishes first: {}",
                if kt <= tt {
                    "confirmed"
                } else {
                    "NOT confirmed (sampling noise)"
                }
            );
        }
        _ => println!("one of the processes did not reach consensus within the budget"),
    }
}
