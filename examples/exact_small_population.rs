//! Exact analysis of the two-opinion USD on a small population: win
//! probabilities and expected consensus times straight from the Markov chain,
//! compared against repeated simulation.
//!
//! ```text
//! cargo run --release --example exact_small_population
//! ```

use k_opinion_usd::prelude::*;
use pp_core::Configuration;

fn main() {
    let n = 40u64;
    let chain = TwoOpinionChain::solve(n, 1e-12, 200_000);
    println!("exact two-opinion USD analysis for n = {n} agents\n");

    println!(
        "{:>6} {:>6} {:>22} {:>26}",
        "x1", "u", "exact Pr[opinion 1 wins]", "exact E[interactions]"
    );
    for &(x1, u) in &[
        (20u64, 0u64),
        (22, 0),
        (24, 0),
        (28, 0),
        (32, 0),
        (20, 10),
        (24, 10),
    ] {
        println!(
            "{:>6} {:>6} {:>22.4} {:>26.1}",
            x1,
            u,
            chain.win_probability(x1, u).unwrap(),
            chain.expected_interactions(x1, u).unwrap()
        );
    }

    // Spot-check one interior point against simulation.
    let (x1, u) = (24u64, 0u64);
    let trials = 20_000u64;
    let mut wins = 0u64;
    let mut total_time = 0u64;
    for t in 0..trials {
        let config = Configuration::from_counts(vec![x1, n - x1 - u], u).unwrap();
        let mut sim = UsdSimulator::new(config, SimSeed::from_u64(t));
        let result = sim.run_to_consensus(10_000_000);
        total_time += result.interactions();
        if result.winner().map(|w| w.index()) == Some(0) {
            wins += 1;
        }
    }
    println!();
    println!("spot check at (x1, u) = ({x1}, {u}) over {trials} simulated runs:");
    println!(
        "  win rate:  simulated {:.4}  vs exact {:.4}",
        wins as f64 / trials as f64,
        chain.win_probability(x1, u).unwrap()
    );
    println!(
        "  mean time: simulated {:.1}  vs exact {:.1}",
        total_time as f64 / trials as f64,
        chain.expected_interactions(x1, u).unwrap()
    );
}
