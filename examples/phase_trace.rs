//! Trace the five phases of the paper's analysis on a single run.
//!
//! Prints, at regular intervals, the number of undecided agents, the largest
//! support, the potential `Z(t) = n − 2u − x_max`, and the current phase —
//! the quantities the proofs of Lemmas 1, 3 and 4 track.
//!
//! ```text
//! cargo run --release --example phase_trace
//! ```

use k_opinion_usd::prelude::*;
use pp_core::{Configuration, Recorder, StopCondition};

struct PhasePrinter {
    tracker: PhaseTracker,
    every: u64,
    next_print: u64,
}

impl Recorder for PhasePrinter {
    fn record(&mut self, interactions: u64, config: &Configuration) {
        self.tracker.record(interactions, config);
        if interactions >= self.next_print {
            self.next_print += self.every;
            let phase = self
                .tracker
                .current_phase()
                .map_or_else(|| "done".to_string(), |p| format!("{}", p.number()));
            println!(
                "t = {:>12}  parallel = {:>8.1}  u = {:>8}  x_max = {:>8}  Z = {:>9.0}  phase = {}",
                interactions,
                interactions as f64 / config.population() as f64,
                config.undecided(),
                config.max_support(),
                potential::z(config),
                phase
            );
        }
    }
}

fn main() {
    let n = 50_000;
    let k = 8;

    // A no-bias start: every phase of the analysis is exercised.
    let config = InitialConfig::new(n, k)
        .build(SimSeed::from_u64(11))
        .expect("valid configuration");
    println!("running the USD on {n} agents with {k} opinions, uniform start");
    println!(
        "undecided equilibrium u* = n(k-1)/(2k-1) = {:.0}",
        potential::undecided_equilibrium(n, k)
    );
    println!();

    let mut printer = PhasePrinter {
        tracker: PhaseTracker::new(1.0),
        every: n * 2,
        next_print: 0,
    };
    let mut sim = UsdSimulator::new(config, SimSeed::from_u64(12));
    let result = sim.run_recorded(
        StopCondition::consensus().or_max_interactions(100_000_000_000),
        &mut printer,
    );

    println!();
    println!("consensus after {} interactions", result.interactions());
    let times = printer.tracker.times();
    for phase in Phase::ALL {
        if let (Some(t), Some(d)) = (times.hitting_time(phase), times.duration(phase)) {
            println!(
                "  T{} = {:>12}   spent in {phase}: {:>12} interactions",
                phase.number(),
                t,
                d
            );
        }
    }
}
