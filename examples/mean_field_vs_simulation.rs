//! Compare a stochastic USD run against its mean-field (fluid-limit)
//! prediction: the trajectory of the undecided fraction and the time at which
//! the plurality absorbs its rivals.
//!
//! ```text
//! cargo run --release --example mean_field_vs_simulation
//! ```

use k_opinion_usd::prelude::*;
use pp_core::StopCondition;
use usd_core::mean_field::{integrate_to_consensus, MeanFieldState};

fn main() {
    let n = 100_000u64;
    let k = 5usize;
    let config = InitialConfig::new(n, k)
        .multiplicative_bias(2.0)
        .build(SimSeed::from_u64(8))
        .expect("valid configuration");
    println!("initial configuration: {config}");

    // Fluid limit.
    let mf_initial = MeanFieldState::from_configuration(&config);
    let mf = integrate_to_consensus(&mf_initial, 0.002, 1e-6, 10_000.0);
    println!();
    println!("fluid limit:");
    println!("  peak undecided fraction: {:.4}", mf.peak_undecided);
    println!(
        "  equilibrium (k-1)/(2k-1):  {:.4}",
        usd_core::mean_field::undecided_fraction_equilibrium(k)
    );
    println!("  near-consensus at parallel time {:.1}", mf.parallel_time);

    // Stochastic run.
    let mut sim = UsdSimulator::new(config, SimSeed::from_u64(9));
    let mut trajectory = Trajectory::sampled_every(n / 10, 1.0);
    let result = sim.run_recorded(
        StopCondition::consensus().or_max_interactions(1_000_000_000_000),
        &mut trajectory,
    );
    println!();
    println!("stochastic run (n = {n}):");
    println!(
        "  peak undecided fraction: {:.4}",
        trajectory.peak_undecided().unwrap_or(0) as f64 / n as f64
    );
    println!("  consensus at parallel time {:.1}", result.parallel_time());
    println!();
    println!("trajectory sample (parallel time, undecided fraction, additive bias):");
    let points = trajectory.points();
    let step = (points.len() / 15).max(1);
    for p in points.iter().step_by(step) {
        println!(
            "  τ = {:>8.1}   u/n = {:.4}   bias = {:>8}   significant opinions = {}",
            p.parallel_time,
            p.undecided as f64 / n as f64,
            p.additive_bias,
            p.significant_opinions
        );
    }
    println!();
    println!(
        "the stochastic curve tracks the fluid limit until the end game, where the\n\
         O(log n) consensus tail is a purely stochastic effect the ODE cannot capture"
    );
}
