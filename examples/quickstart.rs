//! Quickstart: run the k-opinion USD once and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use k_opinion_usd::prelude::*;

fn main() {
    let n = 100_000;
    let k = 10;

    // Start from an additive bias of 2·sqrt(n ln n) for opinion 1 (index 0),
    // the Theorem 2.2 regime.
    let config = InitialConfig::new(n, k)
        .additive_bias_in_sqrt_n_log_n(2.0)
        .build(SimSeed::from_u64(1))
        .expect("valid initial configuration");

    println!("initial configuration: {config}");
    println!(
        "initial additive bias: {} (threshold sqrt(n ln n) = {:.0})",
        config.additive_bias().unwrap_or(0),
        bounds::bias_margin(n, 1.0)
    );

    let mut sim = UsdSimulator::new(config, SimSeed::from_u64(2));
    let result = sim.run_with_phases(1.0, 100_000_000_000);

    println!();
    println!("consensus reached: {}", result.run.reached_consensus());
    if let Some(winner) = result.run.winner() {
        println!(
            "winner: {winner} (initial plurality won: {:?})",
            result.plurality_won
        );
    }
    println!(
        "interactions: {}  (parallel time {:.1}, paper bound O(k n log n) = {:.0})",
        result.run.interactions(),
        result.run.parallel_time(),
        bounds::theorem2_additive_bound_in_k(n, k)
    );

    println!();
    println!("phase hitting times (interactions):");
    for phase in Phase::ALL {
        match result.phases.hitting_time(phase) {
            Some(t) => println!("  {phase}: T{} = {t}", phase.number()),
            None => println!("  {phase}: not reached"),
        }
    }
}
