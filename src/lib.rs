//! # k-opinion-usd — reproduction of the k-opinion Undecided State Dynamics
//!
//! This is the facade crate of the reproduction of *"Fast Convergence of
//! k-Opinion Undecided State Dynamics in the Population Protocol Model"*
//! (PODC 2023).  It re-exports the workspace crates under stable module
//! names so examples and downstream users need a single dependency:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `pp-core` | population protocol engine (configurations, simulators, schedulers) |
//! | [`usd`] | `usd-core` | the k-opinion USD, phases, potentials, bounds, coupling |
//! | [`dynamics`] | `consensus-dynamics` | Voter, TwoChoices, 3-Majority, MedianRule, synchronized USD |
//! | [`gossip`] | `gossip-model` | gossip-model engine, USD-in-gossip, Poisson-clock variant |
//! | [`analysis`] | `pp-analysis` | statistics, regression, random walks, drift, concentration |
//! | [`workloads`] | `pp-workloads` | initial-configuration generators |
//! | [`service`] | `pp-service` | simulation-as-a-service: scenario configs, job queue/server, NDJSON protocol |
//! | [`experiments`] | `usd-experiments` | the E1–E10 experiment harness |
//!
//! ## Quickstart
//!
//! ```
//! use k_opinion_usd::prelude::*;
//!
//! // 10 000 agents, 8 opinions, plurality leads by 2·sqrt(n ln n).
//! let config = InitialConfig::new(10_000, 8)
//!     .additive_bias_in_sqrt_n_log_n(2.0)
//!     .build(SimSeed::from_u64(1))
//!     .unwrap();
//! let mut sim = UsdSimulator::new(config, SimSeed::from_u64(2));
//! let result = sim.run_to_consensus(500_000_000);
//! assert!(result.reached_consensus());
//! assert_eq!(result.winner().unwrap().index(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use consensus_dynamics as dynamics;
pub use gossip_model as gossip;
pub use pp_analysis as analysis;
pub use pp_core as core;
pub use pp_service as service;
pub use pp_workloads as workloads;
pub use usd_core as usd;
pub use usd_experiments as experiments;

/// One-stop prelude for examples and quick scripts.
pub mod prelude {
    pub use pp_core::prelude::*;
    pub use pp_workloads::{BiasSpec, InitialConfig, UndecidedSpec};
    pub use usd_core::{
        bounds, potential, ApproximateMajority, CoupledUsd, MeanFieldState, Phase, PhaseTimes,
        PhaseTracker, Trajectory, TwoOpinionChain, UndecidedStateDynamics, UsdSimulator,
    };
}
