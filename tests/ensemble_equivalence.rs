//! Bit-exactness and conservation of the lockstep replica ensemble.
//!
//! The ensemble layer (`pp_core::ensemble`) claims more than distributional
//! equivalence: replica `i` of an [`EnsembleEngine`] run must be
//! *bit-identical* to a standalone engine seeded `master.child(i)` — same
//! trajectory, same interaction counter, same final configuration, same
//! [`RunResult`] metadata — because the shared per-counts tables consume no
//! randomness and each replica owns its RNG stream.  This suite pins that
//! claim:
//!
//! * **Per-replica bit-exactness** — for the USD (batched backend) and for
//!   all five sampling dynamics (Voter, TwoChoices, 3-Majority, j-Majority,
//!   MedianRule through [`SequentialSampler`]), ensemble results are
//!   compared `==` against standalone same-seed runs, including full
//!   recorded trajectories for the USD, under every [`SharedCacheMode`].
//! * **Thread-count invariance** — the parallel worker pool
//!   (`pp_core::parallel`) must be a pure wall-clock dial: `threads = 1`
//!   and `threads = T` runs are compared `==` per replica for the USD and
//!   all five dynamics, and a proptest drives random thread counts against
//!   the single-threaded reference.
//! * **Distributional sanity** — on top of exact equality, hitting times of
//!   ensemble replicas are chi-squared against freshly seeded standalone
//!   runs through `pp_analysis::conformance` (the same harness the other
//!   equivalence suites use).
//! * **Conservation** — a proptest drives random ensembles over random
//!   configurations and verifies population conservation, configuration
//!   consistency and budget accounting for every replica.
//! * **Counters and diagnostics** — `rejection_misses` stays `Some(0)` for
//!   every shipped dynamic under the ensemble backend, and unsupported
//!   nestings (exact/sharded/mean-field inside the ensemble) fail with
//!   their named `UnsupportedEngine` diagnostics.

use consensus_dynamics::{
    sampler_ensemble, JMajority, MedianRule, SamplingDynamics, SequentialSampler, ThreeMajority,
    TwoChoices, Voter,
};
use pp_analysis::conformance::Conformance;
use pp_core::engine::StepEngine;
use pp_core::ensemble::{EnsembleChoice, EnsembleEngine, SharedCacheMode};
use pp_core::parallel::Parallelism;
use pp_core::{
    BatchedEngine, Configuration, EngineChoice, PpError, RunResult, SimSeed, StopCondition,
};
use proptest::prelude::*;
use usd_core::{UndecidedStateDynamics, UsdEnsemble};

const MASTER: u64 = 0xE25E_7B1E;

fn stop(budget: u64) -> StopCondition {
    StopCondition::consensus().or_max_interactions(budget)
}

/// Standalone reference run for sampling dynamics: the sequential sampler's
/// own skip-ahead driver with the ensemble's per-replica seed convention.
fn standalone_sampler<D: SamplingDynamics + Clone>(
    dynamics: &D,
    config: &Configuration,
    seed: SimSeed,
    budget: u64,
) -> RunResult {
    let mut sim = SequentialSampler::new(dynamics.clone(), config.clone(), seed);
    sim.run_engine(stop(budget))
}

/// Pins every ensemble replica of `dynamics` to its standalone same-seed
/// run, exactly (`Send` because the ensemble spreads replicas over worker
/// threads).
fn pin_sampler_ensemble<D: SamplingDynamics + Clone + Send>(
    dynamics: D,
    config: Configuration,
    replicas: usize,
    budget: u64,
) {
    let master = SimSeed::from_u64(MASTER);
    let choice = EnsembleChoice::new(replicas);
    let mut ensemble =
        sampler_ensemble(&dynamics, &config, master, choice).expect("shipped dynamics support it");
    let outcome = ensemble.run(stop(budget));
    assert_eq!(outcome.len(), replicas);
    for (i, seed) in choice.seeds(master).into_iter().enumerate() {
        let expected = standalone_sampler(&dynamics, &config, seed, budget);
        assert_eq!(
            outcome.replica(i),
            &expected,
            "{} replica {i} diverged from its standalone run",
            dynamics.name()
        );
    }
    // The shipped dynamics never fall back to rejection sampling.
    for result in outcome.results() {
        assert_eq!(
            result.rejection_misses(),
            Some(0),
            "{} rejection path fired under the ensemble backend",
            dynamics.name()
        );
    }
}

#[test]
fn all_five_dynamics_are_bit_exact_under_the_ensemble() {
    let biased = Configuration::from_counts(vec![700, 300], 0).unwrap();
    let with_undecided = Configuration::from_counts(vec![500, 250], 250).unwrap();
    pin_sampler_ensemble(Voter::new(2), with_undecided.clone(), 5, 5_000_000);
    pin_sampler_ensemble(TwoChoices::new(2), biased.clone(), 5, 5_000_000);
    pin_sampler_ensemble(ThreeMajority::new(2), biased.clone(), 5, 5_000_000);
    pin_sampler_ensemble(
        JMajority::new(3, 5),
        Configuration::from_counts(vec![500, 300, 200], 0).unwrap(),
        4,
        5_000_000,
    );
    pin_sampler_ensemble(
        MedianRule::new(3),
        Configuration::from_counts(vec![400, 350, 250], 0).unwrap(),
        4,
        5_000_000,
    );
}

#[test]
fn usd_ensemble_matches_standalone_batched_runs_and_trajectories() {
    let config = Configuration::from_counts(vec![1_200, 500, 300], 0).unwrap();
    let master = SimSeed::from_u64(MASTER ^ 1);
    let choice = EnsembleChoice::new(6);
    let mut ensemble = UsdEnsemble::try_new(config.clone(), master, choice).unwrap();
    let outcome = ensemble.run(stop(50_000_000));
    assert!(outcome.all_reached_goal());
    for (i, seed) in choice.seeds(master).into_iter().enumerate() {
        // Bit-exact final results…
        let mut standalone =
            BatchedEngine::new(UndecidedStateDynamics::new(3), config.clone(), seed);
        let expected = standalone.run_engine(stop(50_000_000));
        assert_eq!(outcome.replica(i), &expected, "replica {i} diverged");
        // …including the whole recorded trajectory: replaying the replica's
        // seed standalone visits the same (interactions, configuration)
        // sequence the ensemble replica walked to its final state.
        let mut replay = BatchedEngine::new(UndecidedStateDynamics::new(3), config.clone(), seed);
        let mut trace: Vec<(u64, Configuration)> = Vec::new();
        let mut recorder = |t: u64, c: &Configuration| trace.push((t, c.clone()));
        replay.run_engine_recorded(stop(50_000_000), &mut recorder);
        let (final_t, final_c) = trace.last().expect("trajectory is non-empty");
        assert_eq!(*final_t, outcome.replica(i).interactions());
        assert_eq!(final_c, outcome.replica(i).final_configuration());
        assert!(trace.windows(2).all(|w| w[0].0 < w[1].0));
    }
}

/// Pins the `threads = 1` vs `threads = T` bit-identity of a sampler
/// ensemble: the worker pool must be a pure wall-clock dial.
fn pin_sampler_threads<D: SamplingDynamics + Clone + Send>(
    dynamics: D,
    config: Configuration,
    replicas: usize,
    budget: u64,
) {
    let master = SimSeed::from_u64(MASTER ^ 7);
    let single = sampler_ensemble(
        &dynamics,
        &config,
        master,
        EnsembleChoice::new(replicas).threads(1),
    )
    .expect("shipped dynamics support the ensemble")
    .run(stop(budget));
    for threads in [2usize, 4] {
        let outcome = sampler_ensemble(
            &dynamics,
            &config,
            master,
            EnsembleChoice::new(replicas).threads(threads),
        )
        .unwrap()
        .run(stop(budget));
        assert_eq!(
            outcome.results(),
            single.results(),
            "{} diverged between threads=1 and threads={threads}",
            dynamics.name()
        );
    }
    // The single-threaded arm is itself pinned to standalone runs, so the
    // multi-threaded arms are transitively standalone-exact; spot-check
    // replica 0 anyway to keep the chain visible.
    let expected = standalone_sampler(&dynamics, &config, master.child(0), budget);
    assert_eq!(single.replica(0), &expected);
}

#[test]
fn all_five_dynamics_are_thread_count_invariant() {
    let biased = Configuration::from_counts(vec![600, 250], 0).unwrap();
    let with_undecided = Configuration::from_counts(vec![400, 200], 200).unwrap();
    pin_sampler_threads(Voter::new(2), with_undecided.clone(), 6, 5_000_000);
    pin_sampler_threads(TwoChoices::new(2), biased.clone(), 6, 5_000_000);
    pin_sampler_threads(ThreeMajority::new(2), biased, 6, 5_000_000);
    pin_sampler_threads(
        JMajority::new(3, 5),
        Configuration::from_counts(vec![450, 300, 150], 0).unwrap(),
        6,
        5_000_000,
    );
    pin_sampler_threads(
        MedianRule::new(3),
        Configuration::from_counts(vec![350, 300, 250], 0).unwrap(),
        6,
        5_000_000,
    );
}

#[test]
fn usd_ensemble_is_thread_count_invariant() {
    let config = Configuration::from_counts(vec![900, 400, 200], 0).unwrap();
    let master = SimSeed::from_u64(MASTER ^ 8);
    let single = UsdEnsemble::try_new(config.clone(), master, EnsembleChoice::new(8).threads(1))
        .unwrap()
        .run(stop(50_000_000));
    assert!(single.all_reached_goal());
    for threads in [2usize, 3, 8] {
        let outcome = UsdEnsemble::try_new(
            config.clone(),
            master,
            EnsembleChoice::new(8).threads(threads),
        )
        .unwrap()
        .run(stop(50_000_000));
        assert_eq!(
            outcome.results(),
            single.results(),
            "USD ensemble diverged between threads=1 and threads={threads}"
        );
    }
    // And against standalone batched runs, closing the triangle.
    for (i, seed) in EnsembleChoice::new(8).seeds(master).into_iter().enumerate() {
        let mut standalone =
            BatchedEngine::new(UndecidedStateDynamics::new(3), config.clone(), seed);
        assert_eq!(
            single.replica(i),
            &standalone.run_engine(stop(50_000_000)),
            "replica {i} diverged from its standalone run"
        );
    }
}

#[test]
fn cache_modes_and_capacities_never_change_results() {
    let config = Configuration::from_counts(vec![600, 250], 150).unwrap();
    let master = SimSeed::from_u64(MASTER ^ 2);
    let dynamics = ThreeMajority::new(2);
    let reference: Vec<RunResult> = EnsembleChoice::new(4)
        .seeds(master)
        .into_iter()
        .map(|seed| standalone_sampler(&dynamics, &config, seed, 5_000_000))
        .collect();
    for mode in [
        SharedCacheMode::Adaptive,
        SharedCacheMode::Always,
        SharedCacheMode::Never,
    ] {
        for capacity in [2usize, 1 << 20] {
            let mut ensemble = sampler_ensemble(&dynamics, &config, master, EnsembleChoice::new(4))
                .unwrap()
                .with_cache_mode(mode)
                .with_cache_capacity(capacity);
            let outcome = ensemble.run(stop(5_000_000));
            assert_eq!(
                outcome.results(),
                &reference[..],
                "{mode:?}/capacity {capacity} diverged"
            );
        }
    }
}

#[test]
fn ensemble_hitting_times_conform_to_fresh_standalone_runs() {
    // Beyond same-seed equality: ensemble replicas with seeds 0..runs and
    // *independently seeded* standalone runs must draw from one hitting-time
    // distribution (trajectory pinning via the conformance harness).
    let config = Configuration::from_counts(vec![160, 40], 0).unwrap();
    let conf = Conformance::default();
    let dynamics = ThreeMajority::new(2);
    let ensemble_times: Vec<f64> = {
        let mut ensemble = sampler_ensemble(
            &dynamics,
            &config,
            SimSeed::from_u64(0xA),
            EnsembleChoice::new(conf.runs as usize),
        )
        .unwrap();
        ensemble
            .run(stop(5_000_000))
            .results()
            .iter()
            .map(|r| r.interactions() as f64)
            .collect()
    };
    let mut i = 0usize;
    conf.pin_scalar(
        "3-majority hitting times: ensemble replicas vs fresh standalone seeds",
        |seed| {
            standalone_sampler(
                &dynamics,
                &config,
                SimSeed::from_u64(0xB00 + seed),
                5_000_000,
            )
            .interactions() as f64
        },
        |_seed| {
            let t = ensemble_times[i];
            i += 1;
            t
        },
    )
    .assert_consistent();
}

#[test]
fn unsupported_nestings_are_rejected_with_named_diagnostics() {
    let config = Configuration::from_counts(vec![60, 40], 0).unwrap();
    for (base, name) in [
        (EngineChoice::Exact, "exact-inside-ensemble"),
        (EngineChoice::Sharded, "sharded-inside-ensemble"),
        (EngineChoice::MeanField, "mean-field-inside-ensemble"),
    ] {
        let choice = EnsembleChoice::new(2).with_base(base);
        let err = UsdEnsemble::try_new(config.clone(), SimSeed::from_u64(1), choice).unwrap_err();
        assert_eq!(err, PpError::UnsupportedEngine { requested: name });
        let err =
            sampler_ensemble(&Voter::new(2), &config, SimSeed::from_u64(1), choice).unwrap_err();
        assert_eq!(err, PpError::UnsupportedEngine { requested: name });
    }
    // A dynamic without skip-ahead hooks is rejected at construction.
    #[derive(Debug, Clone)]
    struct NoHooks;
    impl SamplingDynamics for NoHooks {
        fn num_opinions(&self) -> usize {
            2
        }
        fn sample_size(&self) -> usize {
            1
        }
        fn update<R: rand::Rng + ?Sized>(
            &self,
            current: pp_core::AgentState,
            samples: &[pp_core::AgentState],
            _rng: &mut R,
        ) -> pp_core::AgentState {
            match samples[0] {
                pp_core::AgentState::Decided(_) => samples[0],
                pp_core::AgentState::Undecided => current,
            }
        }
    }
    let err = sampler_ensemble(
        &NoHooks,
        &config,
        SimSeed::from_u64(1),
        EnsembleChoice::new(2),
    )
    .unwrap_err();
    assert_eq!(
        err,
        PpError::UnsupportedEngine {
            requested: "ensemble"
        }
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation over the ensemble's *parallel* path: every replica
    /// keeps its population, stays internally consistent, and respects the
    /// budget exactly, for random configurations, replica counts, worker
    /// thread counts and budgets.
    #[test]
    fn ensemble_conserves_population_and_budget(
        counts in proptest::collection::vec(1u64..60, 2..5),
        undecided in 0u64..40,
        replicas in 1usize..6,
        threads in 1usize..5,
        budget in 1_000u64..40_000,
        seed in 0u64..1_000,
    ) {
        let population: u64 = counts.iter().sum::<u64>() + undecided;
        let config = Configuration::from_counts(counts, undecided).unwrap();
        let protocol = UndecidedStateDynamics::new(config.num_opinions());
        let members: Vec<_> = EnsembleChoice::new(replicas)
            .seeds(SimSeed::from_u64(seed))
            .into_iter()
            .map(|s| BatchedEngine::new(protocol, config.clone(), s))
            .collect();
        let mut ensemble = EnsembleEngine::try_new(members)
            .unwrap()
            .with_parallelism(Parallelism::fixed(threads));
        let outcome = ensemble.run(stop(budget));
        prop_assert_eq!(outcome.len(), replicas);
        for result in outcome.results() {
            prop_assert!(result.interactions() <= budget);
            prop_assert_eq!(result.final_configuration().population(), population);
            prop_assert!(result.final_configuration().is_consistent());
            if result.outcome() == pp_core::RunOutcome::BudgetExhausted {
                prop_assert_eq!(result.interactions(), budget);
            }
        }
    }

    /// Thread-count invariance as a property: random two-opinion majorities
    /// under random worker counts equal the single-threaded reference bit
    /// for bit.
    #[test]
    fn parallel_replicas_equal_single_threaded_runs(
        lead in 30u64..150,
        trail in 1u64..80,
        replicas in 2usize..7,
        threads in 2usize..6,
        seed in 0u64..300,
    ) {
        let config = Configuration::from_counts(vec![lead + trail, trail], 0).unwrap();
        let dynamics = ThreeMajority::new(2);
        let master = SimSeed::from_u64(seed);
        let single = sampler_ensemble(
            &dynamics,
            &config,
            master,
            EnsembleChoice::new(replicas).threads(1),
        )
        .unwrap()
        .run(stop(2_000_000));
        let parallel = sampler_ensemble(
            &dynamics,
            &config,
            master,
            EnsembleChoice::new(replicas).threads(threads),
        )
        .unwrap()
        .run(stop(2_000_000));
        prop_assert_eq!(parallel.results(), single.results());
    }

    /// Bit-exactness as a property: for random two-opinion majorities the
    /// ensemble replicas equal standalone same-seed runs.
    #[test]
    fn sampler_replicas_equal_standalone_runs(
        lead in 30u64..200,
        trail in 1u64..100,
        replicas in 1usize..5,
        seed in 0u64..500,
    ) {
        let config = Configuration::from_counts(vec![lead + trail, trail], 0).unwrap();
        let dynamics = ThreeMajority::new(2);
        let master = SimSeed::from_u64(seed);
        let choice = EnsembleChoice::new(replicas);
        let mut ensemble = sampler_ensemble(&dynamics, &config, master, choice).unwrap();
        let outcome = ensemble.run(stop(2_000_000));
        for (i, s) in choice.seeds(master).into_iter().enumerate() {
            let expected = standalone_sampler(&dynamics, &config, s, 2_000_000);
            prop_assert_eq!(outcome.replica(i), &expected);
        }
    }
}
