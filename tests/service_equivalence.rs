//! The service-layer determinism contract (issue acceptance): a scenario
//! submitted to a `pp_serve`-style job server produces a result
//! **bit-identical** to running it standalone — with at least four jobs in
//! flight at once and across a kill → reopen resume cycle.  The socket
//! transport is pinned by `crates/service/tests/socket_roundtrip.rs` and
//! the `usd_run --scenario` front-end by
//! `crates/experiments/tests/scenario_cli.rs`, both against the same
//! canonical result bytes.

use k_opinion_usd::service::runner::{result_json, run_scenario, RunControl, RunVerdict};
use k_opinion_usd::service::scenario::{Dynamic, ScenarioConfig};
use k_opinion_usd::service::server::{Server, ServerConfig};
use k_opinion_usd::service::{protocol, JobState};

fn standalone_json(scenario: &ScenarioConfig) -> String {
    let RunVerdict::Finished(outcome) =
        run_scenario(scenario, RunControl::default()).expect("standalone scenario run failed")
    else {
        panic!("a default RunControl cannot be interrupted");
    };
    result_json(&outcome)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("svc_equiv_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Four concurrent jobs on a two-worker pool — mixed engines and dynamics —
/// each bit-identical to its standalone run, regardless of scheduling.
#[test]
fn four_concurrent_jobs_match_standalone_bit_for_bit() {
    let scenarios = [
        ScenarioConfig::new(800, 3).with_seed(41),
        ScenarioConfig::new(700, 4)
            .with_seed(42)
            .with_engine(k_opinion_usd::core::EngineChoice::Batched),
        ScenarioConfig::new(600, 3).with_seed(43).with_replicas(3),
        ScenarioConfig::new(900, 2)
            .with_seed(44)
            .with_dynamic(Dynamic::Voter),
    ];
    let expected: Vec<String> = scenarios.iter().map(standalone_json).collect();

    let server = Server::open(ServerConfig {
        workers: Some(2),
        ..ServerConfig::default()
    })
    .expect("open in-memory server");
    let ids: Vec<_> = scenarios
        .iter()
        .map(|s| server.submit(*s, 0).expect("submit"))
        .collect();
    for (id, want) in ids.iter().zip(&expected) {
        let status = server.wait(*id).expect("wait");
        assert_eq!(status.state, JobState::Done, "job {id}: {:?}", status.error);
        assert_eq!(
            status.result.as_deref(),
            Some(want.as_str()),
            "job {id} diverged from its standalone run"
        );
    }
    // Submission order reversed, priorities shuffled: still bit-identical.
    let server2 = Server::open(ServerConfig {
        workers: Some(4),
        ..ServerConfig::default()
    })
    .expect("open second server");
    let ids2: Vec<_> = scenarios
        .iter()
        .rev()
        .enumerate()
        .map(|(i, s)| server2.submit(*s, i as i64 - 2).expect("submit"))
        .collect();
    for (id, want) in ids2.iter().zip(expected.iter().rev()) {
        let status = server2.wait(*id).expect("wait");
        assert_eq!(status.result.as_deref(), Some(want.as_str()));
    }
    server2.shutdown();
    server.shutdown();
}

/// Kill the server mid-job (checkpoint on disk, record left `running`),
/// reopen the state directory, and demand the resumed job finish on the
/// bit-identical result — the crash-recovery half of the contract.
#[test]
fn kill_and_reopen_resumes_jobs_bit_identically() {
    let scenario = ScenarioConfig::new(1_200, 3).with_seed(77);
    let expected = standalone_json(&scenario);
    let dir = temp_dir("kill");
    let cfg = || ServerConfig {
        workers: Some(1),
        state_dir: Some(dir.clone()),
        progress_every: 60,
        checkpoint_every: 60,
    };

    let server = Server::open(cfg()).expect("open server");
    let id = server.submit(scenario, 0).expect("submit");
    // Wait for the first progress event so the kill lands mid-run, then
    // pull the plug; workers halt at the next pause boundary with a final
    // checkpoint.
    let (events, _) = server.wait_events(id, 0).expect("first events");
    assert!(!events.is_empty());
    for line in &events {
        protocol::check_progress_line(line).expect("streamed line violates the schema");
    }
    server.kill();

    let reopened = Server::open(cfg()).expect("reopen state dir");
    let status = reopened.wait(id).expect("wait resumed job");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    assert_eq!(
        status.result.as_deref(),
        Some(expected.as_str()),
        "resumed job diverged from the uninterrupted run"
    );
    // The stored result file replays byte-for-byte on yet another open.
    reopened.shutdown();
    let third = Server::open(cfg()).expect("third open");
    let status = third.status(id).expect("job persisted");
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.result.as_deref(), Some(expected.as_str()));
    third.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancellation and failure surfaces stay deterministic too: a queued job
/// cancels to a terminal record, an invalid scenario never enters the
/// queue, and neither disturbs the jobs around them.
#[test]
fn cancellation_and_rejection_leave_neighbours_bit_identical() {
    let keeper = ScenarioConfig::new(640, 3).with_seed(13);
    let expected = standalone_json(&keeper);

    let server = Server::open(ServerConfig {
        workers: Some(1),
        ..ServerConfig::default()
    })
    .expect("open server");
    // A big decoy keeps the single worker busy so the victim stays queued.
    let decoy = server
        .submit(ScenarioConfig::new(30_000, 3).with_seed(1), 0)
        .expect("submit decoy");
    let victim = server
        .submit(ScenarioConfig::new(5_000, 3).with_seed(2), -1)
        .expect("submit victim");
    let kept = server.submit(keeper, 3).expect("submit keeper");

    let bad = ScenarioConfig::new(100, 3).with_samples(0);
    let err = server
        .submit(bad, 0)
        .expect_err("invalid scenario must be rejected");
    assert_eq!(err, "--samples must be positive");

    server.cancel(victim).expect("cancel queued job");
    let status = server.wait(victim).expect("wait cancelled job");
    assert_eq!(status.state, JobState::Cancelled);
    assert!(status.result.is_none());

    let status = server.wait(kept).expect("wait keeper");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    assert_eq!(status.result.as_deref(), Some(expected.as_str()));
    let status = server.wait(decoy).expect("wait decoy");
    assert_eq!(status.state, JobState::Done);
    server.shutdown();
}
