//! Statistical equivalence of the step-engine backends.
//!
//! The batched engine claims to induce *exactly* the same distribution over
//! trajectories as the exact per-interaction engine.  These tests check that
//! claim on observable statistics: consensus hitting times and winner
//! identity for the USD, and fixed-budget trajectory state for the Voter,
//! all at `n = 10⁴`, pinned through the reusable checkers in
//! [`pp_analysis::conformance`] (48 runs, 6 pooled quantile bins,
//! `α ≈ 0.001`; the test seeds are fixed, so the suite is deterministic).
//! A property test additionally drives the skip-ahead through arbitrary
//! configurations with the shared conservation checker.

use consensus_dynamics::PairwiseVoter;
use pp_analysis::Conformance;
use pp_core::engine::StepEngine;
use pp_core::{Advance, BatchedEngine, Configuration, EngineChoice, SimSeed, StopCondition};
use usd_core::{UndecidedStateDynamics, UsdSimulator};

const RUNS: u64 = 48;

/// One USD consensus hitting time at n = 10⁴ under the given backend, from
/// a deep-bias start (the null-dominated regime where batching skips the
/// most — exactly where a distributional bug would show).
fn usd_hitting_time(choice: EngineChoice, seed: u64) -> f64 {
    let config = Configuration::from_counts(vec![9_000, 500, 500], 0).unwrap();
    let mut sim = UsdSimulator::with_engine(config, SimSeed::from_u64(seed), choice);
    let result = sim.run_to_consensus(500_000_000);
    assert!(result.reached_consensus(), "run {seed:#x} did not converge");
    result.interactions() as f64
}

#[test]
fn usd_consensus_hitting_times_match_across_engines() {
    Conformance::default()
        .pin_scalar(
            "USD consensus hitting times, exact vs batched",
            |i| usd_hitting_time(EngineChoice::Exact, 0xE0_0000 + i),
            |i| usd_hitting_time(EngineChoice::Batched, 0xBA_0000 + i),
        )
        .assert_consistent();
}

/// Winner identity of the near-tied two-opinion USD (approximate majority):
/// the winner is decided by the chain's fluctuations, so any bias in the
/// skip-ahead's conditional event draws would shift these counts.
fn usd_winner_counts(choice: EngineChoice, seed_base: u64) -> [u64; 2] {
    let mut counts = [0u64; 2];
    for i in 0..RUNS {
        let config = Configuration::from_counts(vec![5_100, 4_900], 0).unwrap();
        let mut sim = UsdSimulator::with_engine(config, SimSeed::from_u64(seed_base + i), choice);
        let result = sim.run_to_settlement(500_000_000);
        let winner = result.winner().expect("settled run has a winner");
        counts[winner.index()] += 1;
    }
    counts
}

#[test]
fn usd_winner_distribution_matches_across_engines() {
    let exact = usd_winner_counts(EngineChoice::Exact, 0xE1_0000);
    let batched = usd_winner_counts(EngineChoice::Batched, 0xB1_0000);
    Conformance::default()
        .pin_counts("USD winner identity, exact vs batched", &exact, &batched)
        .assert_consistent();
}

/// Fixed-budget trajectory state of the Voter at n = 10⁴: the support of
/// opinion 0 after exactly 300 000 interactions, which probes the law of the
/// whole trajectory rather than only absorption behaviour.
fn voter_budgeted_support(choice: EngineChoice, seed: u64) -> f64 {
    let config = Configuration::from_counts(vec![7_000, 3_000], 0).unwrap();
    let mut engine = match choice {
        EngineChoice::Exact => pp_core::CountEngine::Exact(pp_core::CountSimulator::new(
            PairwiseVoter::new(2),
            config,
            SimSeed::from_u64(seed),
        )),
        EngineChoice::Batched => pp_core::CountEngine::Batched(BatchedEngine::new(
            PairwiseVoter::new(2),
            config,
            SimSeed::from_u64(seed),
        )),
        EngineChoice::Sharded | EngineChoice::MeanField | EngineChoice::Hybrid => {
            unreachable!("not under test")
        }
    };
    let result = engine.run_engine(StopCondition::opinion_settled().or_max_interactions(300_000));
    result.final_configuration().support(0) as f64
}

#[test]
fn voter_budgeted_state_distribution_matches_across_engines() {
    Conformance::default()
        .pin_scalar(
            "Voter budgeted trajectory state, exact vs batched",
            |i| voter_budgeted_support(EngineChoice::Exact, 0xE2_0000 + i),
            |i| voter_budgeted_support(EngineChoice::Batched, 0xB2_0000 + i),
        )
        .assert_consistent();
}

#[test]
fn batched_interaction_counts_are_geometric_not_truncated() {
    // Mean interactions consumed per event must match 1/p, the geometric
    // mean — a direct check that the skip-ahead neither truncates nor
    // double-counts null interactions.  x = (300, 700): p = 0.42.
    let config = Configuration::from_counts(vec![300, 700], 0).unwrap();
    let trials = 30_000u64;
    let mut consumed = 0u64;
    for i in 0..trials {
        let mut engine = BatchedEngine::new(
            UndecidedStateDynamics::new(2),
            config.clone(),
            SimSeed::from_u64(0xC0_0000 + i),
        );
        match engine.advance(u64::MAX) {
            Advance::Event => consumed += StepEngine::interactions(&engine),
            other => panic!("unexpected advance outcome {other:?}"),
        }
    }
    let mean = consumed as f64 / trials as f64;
    let expected = 1.0 / 0.42;
    assert!(
        (mean - expected).abs() < 0.05,
        "mean interactions per event {mean} vs geometric mean {expected}"
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Skip-ahead never changes the count-vector sum, no matter the
        /// configuration, budget slicing, or how far it jumps (the shared
        /// conservation checker verifies every engine-layer invariant).
        #[test]
        fn batched_skip_ahead_preserves_population(
            counts in proptest::collection::vec(0u64..200, 2..6),
            undecided in 0u64..200,
            seed in 0u64..1_000,
            budget in 1u64..20_000,
        ) {
            prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
            let config = Configuration::from_counts(counts.clone(), undecided).unwrap();
            let k = config.num_opinions();
            let mut engine = BatchedEngine::new(
                UndecidedStateDynamics::new(k),
                config,
                SimSeed::from_u64(seed),
            );
            pp_analysis::check_conservation(&mut engine, budget)
                .map_err(TestCaseError::Fail)?;
        }

        /// Both engines compute identical event probabilities from the same
        /// configuration — the skip distribution is shared exactly.
        #[test]
        fn engines_agree_on_productive_probability(
            counts in proptest::collection::vec(0u64..500, 2..6),
            undecided in 0u64..500,
        ) {
            prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
            let config = Configuration::from_counts(counts.clone(), undecided).unwrap();
            let k = config.num_opinions();
            let exact = pp_core::CountSimulator::new(
                UndecidedStateDynamics::new(k),
                config.clone(),
                SimSeed::from_u64(1),
            );
            let mut batched = BatchedEngine::new(
                UndecidedStateDynamics::new(k),
                config,
                SimSeed::from_u64(1),
            );
            let a = exact.productive_probability();
            let b = batched.productive_probability();
            prop_assert!((a - b).abs() < 1e-12, "exact {} vs batched {}", a, b);
        }
    }
}
