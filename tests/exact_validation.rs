//! Validates the simulators against the exact Markov-chain solution of the
//! two-opinion USD on small populations (the strongest correctness check we
//! have: not an asymptotic bound but the exact finite-n law).

use k_opinion_usd::prelude::*;
use pp_core::{Configuration, StopCondition};
use usd_core::exact::TwoOpinionChain;

#[test]
fn simulated_win_rate_matches_the_exact_chain() {
    let n = 30u64;
    let chain = TwoOpinionChain::solve(n, 1e-12, 200_000);
    // A moderately biased start where the exact win probability is strictly
    // between 0 and 1.
    let (x1, u) = (17u64, 4u64);
    let exact = chain.win_probability(x1, u).unwrap();
    assert!(
        exact > 0.55 && exact < 0.99,
        "test point not informative: {exact}"
    );

    let trials = 3_000u64;
    let mut wins = 0u64;
    for t in 0..trials {
        let config = Configuration::from_counts(vec![x1, n - x1 - u], u).unwrap();
        let mut sim = UsdSimulator::new(config, SimSeed::from_u64(1_000 + t));
        let result = sim.run_to_consensus(5_000_000);
        assert!(result.reached_consensus());
        if result.winner().unwrap().index() == 0 {
            wins += 1;
        }
    }
    let measured = wins as f64 / trials as f64;
    // Standard error at 3000 trials is ≈ 0.009; allow 4 sigma.
    assert!(
        (measured - exact).abs() < 0.04,
        "simulated win rate {measured} vs exact {exact}"
    );
}

#[test]
fn simulated_mean_consensus_time_matches_the_exact_chain() {
    let n = 24u64;
    let chain = TwoOpinionChain::solve(n, 1e-12, 200_000);
    let (x1, u) = (12u64, 0u64);
    let exact = chain.expected_interactions(x1, u).unwrap();

    let trials = 2_000u64;
    let mut total = 0u64;
    for t in 0..trials {
        let config = Configuration::from_counts(vec![x1, n - x1], u).unwrap();
        let mut sim = UsdSimulator::new(config, SimSeed::from_u64(50_000 + t));
        let result = sim.run_to_consensus(10_000_000);
        assert!(result.reached_consensus());
        total += result.interactions();
    }
    let measured = total as f64 / trials as f64;
    assert!(
        (measured - exact).abs() / exact < 0.1,
        "simulated mean time {measured} vs exact {exact}"
    );
}

#[test]
fn agent_level_simulator_also_matches_the_exact_chain() {
    let n = 20u64;
    let chain = TwoOpinionChain::solve(n, 1e-12, 200_000);
    let (x1, u) = (12u64, 2u64);
    let exact = chain.win_probability(x1, u).unwrap();

    let trials = 1_500u64;
    let mut wins = 0u64;
    let config = Configuration::from_counts(vec![x1, n - x1 - u], u).unwrap();
    for t in 0..trials {
        let mut sim = pp_core::AgentSimulator::new(
            UndecidedStateDynamics::new(2),
            &config,
            SimSeed::from_u64(90_000 + t),
        );
        let result = sim.run(StopCondition::consensus().or_max_interactions(5_000_000));
        assert!(result.reached_consensus());
        if result.winner().unwrap().index() == 0 {
            wins += 1;
        }
    }
    let measured = wins as f64 / trials as f64;
    assert!(
        (measured - exact).abs() < 0.05,
        "agent-simulator win rate {measured} vs exact {exact}"
    );
}

#[test]
fn mean_field_limit_is_consistent_with_large_simulations() {
    // The peak undecided fraction of a large stochastic run should be close
    // to the fluid-limit prediction.
    let n = 20_000u64;
    let k = 4usize;
    let config = InitialConfig::new(n, k)
        .multiplicative_bias(2.0)
        .build(SimSeed::from_u64(5))
        .unwrap();
    let mf_initial = usd_core::mean_field::MeanFieldState::from_configuration(&config);
    let mf = usd_core::mean_field::integrate_to_consensus(&mf_initial, 0.005, 1e-4, 5_000.0);

    let mut sim = UsdSimulator::new(config, SimSeed::from_u64(6));
    let mut trajectory = Trajectory::sampled_every(n / 20, 1.0);
    sim.run_recorded(
        StopCondition::opinion_settled().or_max_interactions(2_000_000_000),
        &mut trajectory,
    );
    let peak = trajectory.peak_undecided().unwrap() as f64 / n as f64;
    assert!(
        (peak - mf.peak_undecided).abs() < 0.05,
        "stochastic peak undecided fraction {peak} vs fluid limit {}",
        mf.peak_undecided
    );
}
