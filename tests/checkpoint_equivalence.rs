//! Checkpoint/restore round-trips are bit-exact across the engine stack.
//!
//! The contract under test (`pp_core::checkpoint`): a run restored from a
//! checkpoint captured at event *t* produces the **identical** trajectory
//! tail as the uninterrupted run — same events at the same interaction
//! counts, same final configuration, same winner — at every thread count,
//! after a full serialize → deserialize round trip through the JSON
//! document (including a trip through the filesystem for the simulator
//! paths, mirroring real crash recovery).
//!
//! Interrupt points are exercised both at fixed cadences and, via proptest,
//! at randomized cadences and seeds, because the bit-exactness argument
//! leans on a subtle invariant: captures land *between* `advance` calls of
//! a run chasing its final stop limit, where the batched engine's
//! geometric-skip overshoot is memoryless.

use k_opinion_usd::prelude::*;
use pp_core::ensemble::EnsembleChoice;
use pp_core::{Checkpoint, Configuration, EngineChoice, Recorder, RunResult, StopCondition};
use proptest::prelude::*;
use usd_core::UsdEnsemble;

const BUDGET: u64 = 100_000_000;

/// Records every event at or past `after` interactions — the trajectory
/// tail two runs must agree on.
struct Tail {
    after: u64,
    events: Vec<(u64, Vec<u64>, u64)>,
}

impl Tail {
    fn new(after: u64) -> Self {
        Tail {
            after,
            events: Vec::new(),
        }
    }

    /// The recorded events strictly after `at` (drops the initial echo a
    /// resumed run records at its own starting point).
    fn events_after(&self, at: u64) -> Vec<(u64, Vec<u64>, u64)> {
        self.events
            .iter()
            .filter(|(i, _, _)| *i > at)
            .cloned()
            .collect()
    }
}

impl Recorder for Tail {
    fn record(&mut self, interactions: u64, config: &Configuration) {
        if interactions >= self.after {
            self.events
                .push((interactions, config.supports().to_vec(), config.undecided()));
        }
    }
}

/// A unique scratch path for one test's checkpoint file.
fn scratch(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("usd_ckpt_eq_{name}_{}.json", std::process::id()));
    path
}

/// Drives `engine` to consensus four times over: uninterrupted (the
/// reference), with a periodic checkpoint sink (must not perturb), resumed
/// from the sunk checkpoint file (must replay the identical tail), and
/// interrupted deterministically at `interrupt` interactions via
/// `step()`/`capture()` — the original's continuation and the restored
/// copy's continuation must be event-for-event identical.
fn assert_simulator_roundtrip(
    name: &str,
    spec: &InitialConfig,
    engine: EngineChoice,
    seed: u64,
    cadence: u64,
    interrupt: u64,
) {
    let master = SimSeed::from_u64(seed);
    let config = spec.build(master).unwrap();
    let plan = spec.shard_plan();
    let stop = StopCondition::consensus().or_max_interactions(BUDGET);

    let mut reference =
        UsdSimulator::with_engine_plan(config.clone(), master.child(1), engine, plan);
    let mut reference_tail = Tail::new(0);
    let expected = reference.run_recorded(stop, &mut reference_tail);
    assert!(
        expected.reached_consensus(),
        "{name}: reference run must converge within the budget"
    );

    // Leg 2: the same run with a checkpoint sink attached. Captures are
    // pure reads — the trajectory must not move by a single event.
    let path = scratch(name);
    let mut sunk = UsdSimulator::with_engine_plan(config, master.child(1), engine, plan);
    sunk.set_checkpoint_sink(&path, cadence);
    let sunk_result = sunk.run_to_consensus(BUDGET);
    assert_eq!(
        sunk_result, expected,
        "{name}: attaching the checkpoint sink perturbed the run"
    );

    // Leg 3: restore the last sunk checkpoint from disk and resume toward
    // the same stop condition.  (The last periodic capture may coincide
    // with the final event when late-run event gaps exceed the cadence —
    // the tail comparison is then vacuous, which leg 4 compensates for.)
    let checkpoint = Checkpoint::load(&path).expect("the sink wrote a loadable checkpoint");
    let mut resumed = UsdSimulator::restore(&checkpoint, plan).expect("restore succeeds");
    let at = resumed.interactions();
    assert!(
        at > 0 && at <= expected.interactions(),
        "{name}: the interrupt point {at} should fall inside the run"
    );
    let mut resumed_tail = Tail::new(0);
    let resumed_result = resumed.run_recorded(stop, &mut resumed_tail);
    assert_eq!(
        resumed_result, expected,
        "{name}: resumed run diverged from the uninterrupted run"
    );
    assert_eq!(
        resumed_tail.events_after(at),
        reference_tail.events_after(at),
        "{name}: trajectory tail after interaction {at} is not bit-identical"
    );
    let _ = std::fs::remove_file(&path);

    // Leg 4: a deterministic interior interrupt.  Step an independent copy
    // exactly `interrupt` interactions in, capture between advances, and
    // round-trip through the JSON document.  From that shared mid-state,
    // the original and the restored copy chase the same stop condition —
    // their continuations must agree event for event.
    let mut original =
        UsdSimulator::with_engine_plan(spec.build(master).unwrap(), master.child(1), engine, plan);
    for _ in 0..interrupt {
        original.step();
    }
    let json = original
        .capture()
        .expect("interior capture succeeds")
        .to_json();
    let restored = Checkpoint::from_json(&json).expect("checkpoint JSON round-trips");
    let mut resumed = UsdSimulator::restore(&restored, plan).expect("restore succeeds");
    assert_eq!(resumed.interactions(), original.interactions());
    let mut original_tail = Tail::new(0);
    let mut resumed_tail = Tail::new(0);
    assert_eq!(
        original.run_recorded(stop, &mut original_tail),
        resumed.run_recorded(stop, &mut resumed_tail),
        "{name}: the restored copy's continuation diverged from the original's"
    );
    assert_eq!(
        original_tail.events, resumed_tail.events,
        "{name}: continuation tails after interaction {interrupt} differ"
    );
}

#[test]
fn exact_runs_resume_bit_identically() {
    let spec = InitialConfig::new(900, 3)
        .multiplicative_bias(1.5)
        .engine(EngineChoice::Exact);
    assert_simulator_roundtrip("exact", &spec, EngineChoice::Exact, 11, 4_000, 5_000);
}

#[test]
fn batched_runs_resume_bit_identically() {
    let spec = InitialConfig::new(4_000, 4)
        .multiplicative_bias(1.4)
        .engine(EngineChoice::Batched);
    assert_simulator_roundtrip("batched", &spec, EngineChoice::Batched, 7, 30_000, 45_000);
}

#[test]
fn sharded_runs_resume_bit_identically_at_two_thread_counts() {
    // The checkpointed/resumed legs run on the snapshot's own worker count;
    // the references run on one and three threads.  All four trajectories
    // must coincide — restore composes with the sharded engine's
    // thread-count independence.
    let base = InitialConfig::new(3_000, 3)
        .multiplicative_bias(1.6)
        .engine(EngineChoice::Sharded)
        .shards(4);
    let single = base.threads(1);
    let multi = base.threads(3);

    let master = SimSeed::from_u64(23);
    let mut reference = UsdSimulator::with_engine_plan(
        multi.build(master).unwrap(),
        master.child(1),
        EngineChoice::Sharded,
        multi.shard_plan(),
    );
    let multi_result = reference.run_to_consensus(BUDGET);

    assert_simulator_roundtrip(
        "sharded_t1",
        &single,
        EngineChoice::Sharded,
        23,
        50_000,
        60_000,
    );

    // The single-thread spec produced the run the roundtrip verified;
    // pin that it matches the three-thread reference too.
    let mut single_ref = UsdSimulator::with_engine_plan(
        single.build(master).unwrap(),
        master.child(1),
        EngineChoice::Sharded,
        single.shard_plan(),
    );
    assert_eq!(
        single_ref.run_to_consensus(BUDGET),
        multi_result,
        "sharded runs must be thread-count independent"
    );
}

#[test]
fn ensembles_resume_bit_identically_at_two_thread_counts() {
    let spec = InitialConfig::new(1_200, 3).multiplicative_bias(1.5);
    let master = SimSeed::from_u64(5);
    let config = spec.build(master).unwrap();
    let stop = StopCondition::consensus().or_max_interactions(BUDGET);

    let mut results: Vec<(Vec<RunResult>, u64)> = Vec::new();
    for threads in [1usize, 3] {
        let choice = EnsembleChoice::new(5).threads(threads);
        let mut reference = UsdEnsemble::try_new(config.clone(), master.child(1), choice).unwrap();
        let expected = reference.run(stop);

        // Pause after two lockstep windows, round-trip the checkpoint
        // through its JSON document, and finish from the restored copy.
        let mut paused = UsdEnsemble::try_new(config.clone(), master.child(1), choice).unwrap();
        assert!(
            paused.run_windows(stop, 2).is_none(),
            "a two-window budget must pause mid-run at this scale"
        );
        let json = paused.capture().to_json();
        let restored = Checkpoint::from_json(&json).unwrap();
        let mut resumed = UsdEnsemble::restore(&restored, choice).unwrap();
        let outcome = resumed
            .run_windows(stop, u64::MAX)
            .expect("an unbounded window budget cannot pause");

        assert_eq!(
            outcome.results(),
            expected.results(),
            "resumed ensemble diverged at {threads} thread(s)"
        );
        assert_eq!(outcome.rounds(), expected.rounds());
        results.push((expected.results().to_vec(), expected.rounds()));
    }
    assert_eq!(
        results[0], results[1],
        "ensemble outcomes must be thread-count independent"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seeds and random interrupt cadences: the restored run's
    /// endpoint and trajectory tail match the uninterrupted run exactly, on
    /// both per-activation (exact) and skip-ahead (batched) backends.
    #[test]
    fn restored_runs_are_bit_identical_at_random_interrupts(
        seed in 0u64..10_000,
        cadence in 2_000u64..40_000,
        engine_idx in 0usize..2,
    ) {
        let engine = if engine_idx == 1 { EngineChoice::Batched } else { EngineChoice::Exact };
        let spec = InitialConfig::new(800, 3)
            .multiplicative_bias(1.6)
            .engine(engine);
        let master = SimSeed::from_u64(seed);
        let config = spec.build(master).unwrap();
        let plan = spec.shard_plan();
        let stop = StopCondition::consensus().or_max_interactions(BUDGET);

        let mut reference =
            UsdSimulator::with_engine_plan(config.clone(), master.child(1), engine, plan);
        let mut reference_tail = Tail::new(0);
        let expected = reference.run_recorded(stop, &mut reference_tail);
        prop_assume!(expected.reached_consensus());

        let path = scratch(&format!("prop_{seed}_{cadence}_{engine_idx}"));
        let mut sunk = UsdSimulator::with_engine_plan(config, master.child(1), engine, plan);
        sunk.set_checkpoint_sink(&path, cadence);
        prop_assert_eq!(&sunk.run_to_consensus(BUDGET), &expected);

        // Short runs may finish before the first cadence tick; the sink
        // then wrote nothing and there is no interrupt to test.
        let Ok(checkpoint) = Checkpoint::load(&path) else {
            return Ok(());
        };
        let mut resumed = UsdSimulator::restore(&checkpoint, plan).unwrap();
        let at = resumed.interactions();
        let mut resumed_tail = Tail::new(0);
        prop_assert_eq!(&resumed.run_recorded(stop, &mut resumed_tail), &expected);
        prop_assert_eq!(
            resumed_tail.events_after(at),
            reference_tail.events_after(at)
        );
        let _ = std::fs::remove_file(&path);
    }
}
