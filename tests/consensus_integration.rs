//! End-to-end integration tests: workload generators → USD simulator →
//! paper-level guarantees (consensus, plurality preservation, bounds).

use k_opinion_usd::prelude::*;

fn budget(n: u64, k: usize) -> u64 {
    // Generous multiple of the paper's O(k n log n) bound.
    (300.0 * k as f64 * n as f64 * (n as f64).ln()) as u64 + 100_000
}

#[test]
fn additive_bias_runs_reach_plurality_consensus() {
    let n = 2_000;
    let k = 5;
    let mut plurality_wins = 0;
    let trials = 8;
    for trial in 0..trials {
        let seed = SimSeed::from_u64(100 + trial);
        let config = InitialConfig::new(n, k)
            .additive_bias_in_sqrt_n_log_n(2.0)
            .build(seed)
            .unwrap();
        assert!(bounds::undecided_admissible(&config));
        let mut sim = UsdSimulator::new(config, seed.child(1));
        let result = sim.run_to_consensus(budget(n, k));
        assert!(result.reached_consensus(), "trial {trial} did not converge");
        if result.winner().unwrap().index() == 0 {
            plurality_wins += 1;
        }
    }
    assert!(
        plurality_wins >= trials - 1,
        "plurality won only {plurality_wins}/{trials} trials with a 2-sigma additive bias"
    );
}

#[test]
fn multiplicative_bias_runs_are_faster_than_no_bias_runs() {
    let n = 1_500;
    let k = 6;
    let trials = 4;
    let mut biased_total = 0u64;
    let mut uniform_total = 0u64;
    for trial in 0..trials {
        let seed = SimSeed::from_u64(200 + trial);
        let biased = InitialConfig::new(n, k)
            .multiplicative_bias(3.0)
            .build(seed)
            .unwrap();
        let uniform = InitialConfig::new(n, k).build(seed).unwrap();
        let mut sim_b = UsdSimulator::new(biased, seed.child(1));
        let mut sim_u = UsdSimulator::new(uniform, seed.child(2));
        biased_total += sim_b.run_to_consensus(budget(n, k)).interactions();
        uniform_total += sim_u.run_to_consensus(budget(n, k)).interactions();
    }
    assert!(
        biased_total < uniform_total,
        "multiplicative-bias runs ({biased_total}) should be faster in total than uniform runs ({uniform_total})"
    );
}

#[test]
fn no_bias_runs_still_converge_within_the_k_n_log_n_envelope() {
    let n = 2_000;
    let k = 4;
    for trial in 0..5 {
        let seed = SimSeed::from_u64(300 + trial);
        let config = InitialConfig::new(n, k).build(seed).unwrap();
        let mut sim = UsdSimulator::new(config, seed.child(1));
        let result = sim.run_to_consensus(budget(n, k));
        assert!(result.reached_consensus());
        let envelope = 100.0 * bounds::theorem2_additive_bound_in_k(n, k);
        assert!(
            (result.interactions() as f64) < envelope,
            "trial {trial} took {} interactions, beyond 100x the k n log n envelope",
            result.interactions()
        );
    }
}

#[test]
fn initially_undecided_agents_are_admissible_and_converge() {
    let n = 1_500;
    let k = 3;
    let seed = SimSeed::from_u64(77);
    let config = InitialConfig::new(n, k)
        .multiplicative_bias(2.0)
        .max_admissible_undecided()
        .build(seed)
        .unwrap();
    assert!(bounds::undecided_admissible(&config));
    assert!(config.undecided() > 0);
    let mut sim = UsdSimulator::new(config, seed.child(1));
    let result = sim.run_to_consensus(budget(n, k));
    assert!(result.reached_consensus());
}

#[test]
fn dirichlet_and_power_law_workloads_converge() {
    let n = 1_200;
    let k = 6;
    for (idx, spec) in [
        InitialConfig::new(n, k).power_law(1.0),
        InitialConfig::new(n, k).dirichlet_like(2),
        InitialConfig::new(n, k).two_way_tie(0.5),
    ]
    .into_iter()
    .enumerate()
    {
        let seed = SimSeed::from_u64(400 + idx as u64);
        let config = spec.build(seed).unwrap();
        let mut sim = UsdSimulator::new(config, seed.child(9));
        let result = sim.run_to_consensus(budget(n, k));
        assert!(
            result.reached_consensus(),
            "workload {idx} did not converge"
        );
    }
}

#[test]
fn settlement_and_consensus_agree_on_the_winner() {
    let n = 1_000;
    let k = 4;
    for trial in 0..4 {
        let seed = SimSeed::from_u64(500 + trial);
        let config = InitialConfig::new(n, k)
            .additive_bias_in_sqrt_n_log_n(3.0)
            .build(seed)
            .unwrap();
        let mut a = UsdSimulator::new(config.clone(), seed.child(1));
        let mut b = UsdSimulator::new(config, seed.child(1));
        let settled = a.run_to_settlement(budget(n, k));
        let consensus = b.run_to_consensus(budget(n, k));
        assert_eq!(settled.winner(), consensus.winner());
        assert!(settled.interactions() <= consensus.interactions());
    }
}

#[test]
fn two_opinion_usd_recovers_approximate_majority() {
    let n = 4_000u64;
    let bias = (2.0 * bounds::bias_margin(n, 1.0)) as u64;
    let majority = (n + bias) / 2;
    let am = ApproximateMajority::new(majority, n - majority, 0).unwrap();
    let mut majority_wins = 0;
    for trial in 0..6 {
        let (outcome, result) = am.run(SimSeed::from_u64(600 + trial), budget(n, 2));
        assert!(result.reached_consensus());
        if outcome == k_opinion_usd::usd::two_opinion::MajorityOutcome::MajorityWon {
            majority_wins += 1;
        }
    }
    assert!(
        majority_wins >= 5,
        "majority won only {majority_wins}/6 runs"
    );
}
