//! Equivalence contracts of the multi-fidelity hybrid engine.
//!
//! The hybrid backend (`usd_core::HybridEngine` under the
//! `pp_core::hybrid` fidelity controller) promises four things beyond raw
//! speed, and this suite pins each one through the public simulator API:
//!
//! 1. **Thread-count bit-identity** — both fidelities are single-threaded
//!    per run, so the trajectory is independent of the shard plan's worker
//!    count, event for event.
//! 2. **Checkpoint/resume across a fidelity switch** — a run captured
//!    mid-ODE-phase (after the detector promoted) replays the identical
//!    tail, because the controller state rides in the checkpoint metadata.
//! 3. **Outcome conformance** — the winner-identity distribution over
//!    independently seeded runs matches the batched stochastic reference
//!    under the two-sample chi-squared check.  Hitting-time *variance* is
//!    deliberately out of scope: ODE stretches carry no sampling noise, so
//!    the hybrid compresses the hitting-time distribution by construction
//!    (the mean transit is preserved, the spread is not) — pinning winner
//!    identity is the honest accuracy contract.
//! 4. **Degeneration** — with promotion thresholds no realizable signal
//!    clears, the hybrid is the batched engine, bit for bit; the adaptive
//!    machinery costs nothing when it never fires.
//!
//! The telemetry counters (`hybrid.switches`, `hybrid.mean_field_fraction`)
//! double as evidence that the conformance runs actually exercised the
//! detector — a hybrid that never promoted would pass trivially.

use pp_analysis::Conformance;
use pp_core::recorder::NullRecorder;
use pp_core::{
    Checkpoint, Configuration, EngineChoice, FidelityConfig, FidelityController, ShardPlan,
    SimSeed, StopCondition, Telemetry,
};
use pp_workloads::InitialConfig;
use usd_core::UsdSimulator;

const BUDGET: u64 = 500_000_000;

/// A deep-bias three-opinion workload at `n = 20_000`: drift-dominated
/// enough that the detector promotes at the first pause boundary, small
/// enough for debug-build test time.
fn deep_bias_config() -> Configuration {
    Configuration::from_counts(vec![15_000, 3_000, 2_000], 0).unwrap()
}

#[test]
fn hybrid_trajectories_are_bit_identical_across_thread_counts() {
    let seed = SimSeed::from_u64(0x4B1D);
    let narrow = ShardPlan::new(1).threads(1);
    let wide = ShardPlan::new(8).threads(4);
    let mut on_narrow = UsdSimulator::with_engine_fidelity(
        deep_bias_config(),
        seed,
        EngineChoice::Hybrid,
        narrow,
        FidelityConfig::default(),
    );
    let mut on_wide = UsdSimulator::with_engine_fidelity(
        deep_bias_config(),
        seed,
        EngineChoice::Hybrid,
        wide,
        FidelityConfig::default(),
    );
    // Lockstep comparison interaction by interaction, not just at the
    // endpoints (`step` returns whether the interaction was productive —
    // that must agree too).
    while !on_narrow.configuration().is_consensus() && on_narrow.interactions() < BUDGET {
        let productive_narrow = on_narrow.step();
        let productive_wide = on_wide.step();
        assert_eq!(productive_narrow, productive_wide);
        assert_eq!(
            on_narrow.interactions(),
            on_wide.interactions(),
            "interaction counts diverged across thread counts"
        );
        assert_eq!(
            on_narrow.configuration(),
            on_wide.configuration(),
            "configurations diverged at interaction {}",
            on_narrow.interactions()
        );
    }
    assert!(
        on_narrow.configuration().is_consensus(),
        "the lockstep run must reach consensus within the budget"
    );
}

#[test]
fn resume_across_a_fidelity_switch_replays_the_identical_tail() {
    let seed = SimSeed::from_u64(0x5EAB);
    let make = || {
        UsdSimulator::with_engine_fidelity(
            deep_bias_config(),
            seed,
            EngineChoice::Hybrid,
            ShardPlan::default(),
            FidelityConfig::default(),
        )
    };
    let mut reference = make();
    let expected = reference.run_to_consensus(BUDGET);
    assert!(expected.reached_consensus());

    // Interrupt a copy mid-ODE through the cooperative pause seam (checked
    // between `advance` calls, where captures are exact and pausing is
    // documented not to perturb the trajectory).  The ODE stretch's span in
    // *interactions* depends on the workload, so scan forward in small
    // pause increments until the capture sits inside the mean-field phase —
    // that is the seam this test exists for.  The controller state is
    // readable straight from the checkpoint metadata.
    let stop = StopCondition::consensus().or_max_interactions(BUDGET);
    let mut interrupted = make();
    let mut at = 0u64;
    let checkpoint = loop {
        let next = at + 2_000;
        let paused =
            interrupted.run_interruptible(stop, &mut NullRecorder, &mut |done| done >= next);
        assert!(
            paused.is_none(),
            "the run finished before a capture landed inside the ODE phase"
        );
        at = interrupted.interactions();
        let checkpoint = interrupted.capture().expect("mid-run capture succeeds");
        let controller = FidelityController::read_meta(&checkpoint)
            .expect("a hybrid checkpoint carries its controller");
        if controller.current() == pp_core::Fidelity::MeanField {
            assert!(controller.switches() >= 1);
            break checkpoint;
        }
    };

    // JSON round trip, restore, and the continuation must converge to the
    // same consensus at the same interaction count as the uninterrupted
    // reference — and so must the interrupted original.
    let restored =
        Checkpoint::from_json(&checkpoint.to_json()).expect("checkpoint JSON round-trips");
    let mut resumed =
        UsdSimulator::restore(&restored, ShardPlan::default()).expect("restore succeeds");
    assert_eq!(resumed.interactions(), interrupted.interactions());
    let resumed_result = resumed
        .run_interruptible(stop, &mut NullRecorder, &mut |_| false)
        .expect("a never-pausing continuation finishes");
    let original_result = interrupted
        .run_interruptible(stop, &mut NullRecorder, &mut |_| false)
        .expect("a never-pausing continuation finishes");
    assert_eq!(
        resumed_result, original_result,
        "the restored copy's continuation diverged from the original's"
    );
    assert_eq!(
        resumed_result.interactions(),
        expected.interactions(),
        "the resumed run did not rejoin the uninterrupted trajectory"
    );
    assert_eq!(resumed_result.winner(), expected.winner());
}

#[test]
fn never_promoting_hybrid_degenerates_to_batched_bit_for_bit() {
    // Thresholds no realizable signal clears: the controller never fires
    // and the hybrid must BE the batched engine on the same seed.
    let fidelity = FidelityConfig {
        promote_ratio: 1e18,
        demote_ratio: 1e17,
        ..FidelityConfig::default()
    };
    let seed = SimSeed::from_u64(0xDE6E);
    let config = Configuration::from_counts(vec![1_800, 600, 600], 0).unwrap();
    let mut batched = UsdSimulator::with_engine(config.clone(), seed, EngineChoice::Batched);
    let mut hybrid = UsdSimulator::with_engine_fidelity(
        config,
        seed,
        EngineChoice::Hybrid,
        ShardPlan::default(),
        fidelity,
    );
    let expected = batched.run_to_consensus(BUDGET);
    let observed = hybrid.run_to_consensus(BUDGET);
    assert!(expected.reached_consensus());
    assert_eq!(observed.interactions(), expected.interactions());
    assert_eq!(observed.winner(), expected.winner());
    assert_eq!(batched.configuration(), hybrid.configuration());
}

/// One seeded winner index under the given backend, from a decisive
/// multiplicative-bias start (the regime where winner identity is a sharp
/// observable; near-tie starts are exactly where the ODE is *not*
/// trustworthy and the detector refuses to promote).
fn winner(choice: EngineChoice, seed: u64) -> usize {
    let spec = InitialConfig::new(10_000, 3)
        .multiplicative_bias(2.0)
        .engine(choice);
    let master = SimSeed::from_u64(seed);
    let config = spec.build(master).unwrap();
    let mut sim = UsdSimulator::with_engine(config, master.child(1), choice);
    let result = sim.run_to_consensus(BUDGET);
    assert!(result.reached_consensus(), "run {seed:#x} did not converge");
    result.winner().expect("consensus has a winner").index()
}

#[test]
fn winner_identity_is_conformant_with_the_batched_reference() {
    let conformance = Conformance::default();
    let mut batched_tally = vec![0u64; 3];
    let mut hybrid_tally = vec![0u64; 3];
    for i in 0..48 {
        batched_tally[winner(EngineChoice::Batched, 0xBA7_000 + i)] += 1;
        hybrid_tally[winner(EngineChoice::Hybrid, 0x4B1_000 + i)] += 1;
    }
    conformance
        .pin_counts(
            "USD winner identity, batched vs hybrid",
            &batched_tally,
            &hybrid_tally,
        )
        .assert_consistent();
}

#[test]
fn telemetry_counters_record_non_trivial_switching() {
    let mut sim = UsdSimulator::with_engine_fidelity(
        deep_bias_config(),
        SimSeed::from_u64(0x7E1E),
        EngineChoice::Hybrid,
        ShardPlan::default(),
        FidelityConfig::default(),
    );
    sim.set_telemetry(Telemetry::enabled());
    let result = sim.run_to_consensus(BUDGET);
    assert!(result.reached_consensus());
    let snap = result.telemetry().expect("telemetry was enabled");
    let switches = snap
        .counter("hybrid.switches")
        .expect("switch counter present");
    // At least the initial promotion and the guard-driven endgame demotion.
    assert!(
        switches >= 2,
        "expected a promote and an endgame demote, saw {switches} switches"
    );
    let fraction = snap
        .gauges()
        .iter()
        .find(|(name, _)| name == "hybrid.mean_field_fraction")
        .map(|(_, v)| *v)
        .expect("mean-field fraction gauge present");
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "the run should split interactions across both fidelities, saw {fraction}"
    );
}
