//! Integration tests for the phase structure (Section 2.1) and the
//! undecided-count bounds (Lemmas 3 and 4) on full runs.

use k_opinion_usd::prelude::*;
use pp_core::{Configuration, Recorder, StopCondition};

#[test]
fn phases_complete_in_order_on_biased_and_uniform_starts() {
    let n = 1_500;
    let k = 4;
    let budget = (200.0 * k as f64 * n as f64 * (n as f64).ln()) as u64;
    for (idx, spec) in [
        InitialConfig::new(n, k),
        InitialConfig::new(n, k).additive_bias_in_sqrt_n_log_n(2.0),
        InitialConfig::new(n, k).multiplicative_bias(2.0),
    ]
    .into_iter()
    .enumerate()
    {
        let seed = SimSeed::from_u64(900 + idx as u64);
        let config = spec.build(seed).unwrap();
        let mut sim = UsdSimulator::new(config, seed.child(1));
        let result = sim.run_with_phases(1.0, budget);
        assert!(
            result.run.reached_consensus(),
            "start {idx} did not converge"
        );
        assert!(
            result.phases.completed(),
            "start {idx} did not register all phases"
        );
        let mut last = 0;
        for phase in Phase::ALL {
            let t = result.phases.hitting_time(phase).unwrap();
            assert!(
                t >= last,
                "phase {phase} hit at {t} before its predecessor at {last}"
            );
            last = t;
        }
        // T5 equals the consensus time.
        assert_eq!(
            result.phases.hitting_time(Phase::Consensus).unwrap(),
            result.run.interactions()
        );
    }
}

#[test]
fn phase_one_completes_within_a_small_multiple_of_seven_n_ln_n() {
    let n: u64 = 3_000;
    let k = 4;
    let bound = 7.0 * n as f64 * (n as f64).ln();
    for trial in 0..5 {
        let seed = SimSeed::from_u64(1_000 + trial);
        let config = InitialConfig::new(n, k).build(seed).unwrap();
        let mut sim = UsdSimulator::new(config, seed.child(1));
        let result = sim.run_with_phases(1.0, (100.0 * bound) as u64);
        let t1 = result.phases.hitting_time(Phase::RiseOfUndecided).unwrap();
        assert!(
            (t1 as f64) <= bound,
            "T1 = {t1} exceeds the Lemma 1 bound 7 n ln n = {bound:.0}"
        );
    }
}

/// Tracks the undecided envelope online (max over the whole run, min of the
/// Lemma 4 margin after Phase 1).
#[derive(Default)]
struct Envelope {
    after_t1: bool,
    max_u: u64,
    min_margin: f64,
}

impl Recorder for Envelope {
    fn record(&mut self, _t: u64, config: &Configuration) {
        self.max_u = self.max_u.max(config.undecided());
        if !self.after_t1 && Phase::RiseOfUndecided.end_condition_met(config, 1.0) {
            self.after_t1 = true;
            self.min_margin = f64::INFINITY;
        }
        if self.after_t1 {
            let margin = config.undecided() as f64
                - (config.population() as f64 - config.max_support() as f64) / 2.0;
            self.min_margin = self.min_margin.min(margin);
        }
    }
}

#[test]
fn undecided_count_respects_the_lemma_3_and_4_envelope() {
    let n: u64 = 3_000;
    let k = 4;
    let n_f = n as f64;
    let budget = (100.0 * k as f64 * n_f * n_f.ln()) as u64;
    for trial in 0..4 {
        let seed = SimSeed::from_u64(1_100 + trial);
        let config = InitialConfig::new(n, k).build(seed).unwrap();
        let mut sim = UsdSimulator::new(config, seed.child(1));
        let mut env = Envelope::default();
        let result = sim.run_recorded(
            StopCondition::consensus().or_max_interactions(budget),
            &mut env,
        );
        assert!(result.reached_consensus());
        // Lemma 3: u(t) stays below n/2 (we use the plain n/2 form since the
        // 1/(5c) correction is tiny at this scale).
        assert!(
            (env.max_u as f64) < n_f / 2.0,
            "max undecided {} reached n/2",
            env.max_u
        );
        // Lemma 4: after T1 the margin never drops below -8 sqrt(n ln n).
        let slack = -8.0 * (n_f * n_f.ln()).sqrt();
        assert!(
            env.min_margin >= slack,
            "Lemma 4 margin {} fell below {slack}",
            env.min_margin
        );
    }
}

#[test]
fn lemma2_bias_survival_holds_at_the_end_of_phase_one() {
    // Start with an additive bias and check that at T1 the bias retained at
    // least a third of its initial value (Lemma 2, statement 1).
    let n: u64 = 4_000;
    let k = 3;
    let seed = SimSeed::from_u64(1_200);
    let config = InitialConfig::new(n, k)
        .additive_bias_in_sqrt_n_log_n(3.0)
        .build(seed)
        .unwrap();
    let survival = bounds::lemma2_survival(&config);

    struct AtT1 {
        bias_at_t1: Option<u64>,
        plurality_at_t1: Option<u64>,
    }
    impl Recorder for AtT1 {
        fn record(&mut self, _t: u64, config: &Configuration) {
            if self.bias_at_t1.is_none() && Phase::RiseOfUndecided.end_condition_met(config, 1.0) {
                self.bias_at_t1 = config.additive_bias();
                self.plurality_at_t1 = Some(config.max_support());
            }
        }
    }
    let mut probe = AtT1 {
        bias_at_t1: None,
        plurality_at_t1: None,
    };
    let mut sim = UsdSimulator::new(config, seed.child(1));
    sim.run_recorded(
        StopCondition::consensus().or_max_interactions(1_000_000_000),
        &mut probe,
    );
    let bias_at_t1 = probe.bias_at_t1.expect("phase 1 completed") as f64;
    let plurality_at_t1 = probe.plurality_at_t1.unwrap() as f64;
    assert!(
        bias_at_t1 >= survival.additive_bias_floor,
        "bias at T1 ({bias_at_t1}) below the Lemma 2 floor ({})",
        survival.additive_bias_floor
    );
    assert!(
        plurality_at_t1 >= survival.plurality_support_floor,
        "plurality support at T1 ({plurality_at_t1}) below the Lemma 2 floor ({})",
        survival.plurality_support_floor
    );
}
