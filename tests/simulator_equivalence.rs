//! The count-based simulator and the agent-level simulator implement the same
//! stochastic process.  These tests compare the two engines statistically on
//! small populations.

use k_opinion_usd::prelude::*;
use pp_analysis::Summary;
use pp_core::{AgentSimulator, CountSimulator, StopCondition};

fn consensus_times<F: Fn(u64) -> u64>(run: F, trials: u64) -> Summary {
    Summary::from_u64((0..trials).map(run))
}

#[test]
fn count_and_agent_simulators_have_matching_time_distributions() {
    let n = 400u64;
    let k = 3usize;
    let trials = 30;
    let budget = 10_000_000;
    let config = InitialConfig::new(n, k)
        .multiplicative_bias(2.0)
        .build(SimSeed::from_u64(1))
        .unwrap();

    let count_times = consensus_times(
        |t| {
            let mut sim = CountSimulator::new(
                UndecidedStateDynamics::new(k),
                config.clone(),
                SimSeed::from_u64(10_000 + t),
            );
            sim.run(StopCondition::consensus().or_max_interactions(budget))
                .interactions()
        },
        trials,
    );
    let agent_times = consensus_times(
        |t| {
            let mut sim = AgentSimulator::new(
                UndecidedStateDynamics::new(k),
                &config,
                SimSeed::from_u64(20_000 + t),
            );
            sim.run(StopCondition::consensus().or_max_interactions(budget))
                .interactions()
        },
        trials,
    );

    // The two engines simulate the same Markov chain, so their mean
    // convergence times must agree up to sampling error.  Use a tolerant
    // threshold: 35% relative difference of means with 30 trials each.
    let rel_diff = (count_times.mean() - agent_times.mean()).abs() / agent_times.mean();
    assert!(
        rel_diff < 0.35,
        "count simulator mean {} vs agent simulator mean {} (relative difference {rel_diff:.2})",
        count_times.mean(),
        agent_times.mean()
    );
}

#[test]
fn winner_distributions_match_between_engines() {
    // From a configuration with a moderate bias, both engines should let the
    // plurality win at comparable (high) rates.
    let n = 300u64;
    let k = 2usize;
    let trials = 40;
    let budget = 5_000_000;
    let config = InitialConfig::new(n, k)
        .additive_bias(40)
        .build(SimSeed::from_u64(2))
        .unwrap();

    let mut count_wins = 0u32;
    let mut agent_wins = 0u32;
    for t in 0..trials {
        let mut cs = CountSimulator::new(
            UndecidedStateDynamics::new(k),
            config.clone(),
            SimSeed::from_u64(30_000 + t),
        );
        if cs
            .run(StopCondition::consensus().or_max_interactions(budget))
            .winner()
            .map(|w| w.index())
            == Some(0)
        {
            count_wins += 1;
        }
        let mut asim = AgentSimulator::new(
            UndecidedStateDynamics::new(k),
            &config,
            SimSeed::from_u64(40_000 + t),
        );
        if asim
            .run(StopCondition::consensus().or_max_interactions(budget))
            .winner()
            .map(|w| w.index())
            == Some(0)
        {
            agent_wins += 1;
        }
    }
    let diff = (f64::from(count_wins) - f64::from(agent_wins)).abs() / trials as f64;
    assert!(
        diff < 0.3,
        "win rates diverge: count {count_wins}/{trials} vs agent {agent_wins}/{trials}"
    );
    assert!(
        count_wins as u64 > trials / 2,
        "plurality should usually win ({count_wins}/{trials})"
    );
}

#[test]
fn productive_step_fractions_agree_with_the_analytic_probability() {
    // Check the count engine's sampling against the closed-form productive
    // probability of Appendix B on a frozen configuration: take single steps
    // from many freshly-seeded simulators.
    let config = pp_core::Configuration::from_counts(vec![150, 100, 50], 100).unwrap();
    let analytic = k_opinion_usd::usd::potential::productive_probability(&config);
    let trials = 3_000u32;
    let mut productive = 0u32;
    for t in 0..trials {
        let mut sim = CountSimulator::new(
            UndecidedStateDynamics::new(3),
            config.clone(),
            SimSeed::from_u64(50_000 + u64::from(t)),
        );
        if sim.step() {
            productive += 1;
        }
    }
    let measured = f64::from(productive) / f64::from(trials);
    assert!(
        (measured - analytic).abs() < 0.04,
        "measured productive fraction {measured} vs analytic {analytic}"
    );
}
