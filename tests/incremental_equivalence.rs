//! Bit-exactness of the incremental maintenance layer.
//!
//! PR 6 put an `O(delta)` update path under every per-event law computation:
//! `BatchedEngine` patches its productive-row table across each applied
//! event, the j-Majority and MedianRule activation laws are patched in their
//! thread-local memos, and the lockstep ensemble derives missed shared
//! tables from cached neighbours by delta replay.  All of it claims exact
//! equality — every maintained weight is an integer, so a patched law is
//! *bit-identical* to a rebuilt one.  This suite drives that claim with
//! random event sequences:
//!
//! * **Row tables** — USD batched engines with patching on vs off advance in
//!   lockstep over random configurations; configurations, interaction
//!   counters and advance outcomes must agree at every event, and the
//!   maintenance counters must attribute the work to the right path.
//! * **Activation laws** — all five sampling dynamics × k ∈ {2, 4, 8}:
//!   twin runs with incremental laws on vs off (each on a fresh thread, so
//!   each twin starts from a cold memo and cannot mask the other's bugs by
//!   sharing it) must produce equal results and identical recorded
//!   trajectories.
//! * **Ensemble neighbour-delta** — shared-table derivation from cached
//!   neighbours at random replica/thread counts must leave every replica
//!   bit-identical to its standalone same-seed run.
//!
//! The CI incremental-equivalence step re-runs this suite with
//! `--features exhaustive-checks`, which additionally rebuilds and compares
//! every patched table inside the engines themselves on every refresh.

use consensus_dynamics::{
    sampler_ensemble, set_incremental_laws, JMajority, MedianRule, SamplingDynamics,
    SequentialSampler, ThreeMajority, TwoChoices, Voter,
};
use pp_core::engine::{Advance, StepEngine};
use pp_core::ensemble::EnsembleChoice;
use pp_core::{BatchedEngine, Configuration, RunResult, SimSeed, StopCondition};
use proptest::prelude::*;
use usd_core::{UndecidedStateDynamics, UsdEnsemble};

fn stop(budget: u64) -> StopCondition {
    StopCondition::consensus().or_max_interactions(budget)
}

/// Runs `dynamics` through the sequential sampler's skip-ahead driver on a
/// fresh thread (fresh thread = cold thread-local law memos) with the
/// incremental-law switch set as requested, recording the full trajectory.
fn recorded_sampler_run<D: SamplingDynamics + Send + 'static>(
    dynamics: D,
    config: Configuration,
    seed: SimSeed,
    budget: u64,
    incremental: bool,
) -> (RunResult, Vec<(u64, Configuration)>) {
    std::thread::spawn(move || {
        set_incremental_laws(incremental);
        let mut sim = SequentialSampler::new(dynamics, config, seed);
        let mut trace: Vec<(u64, Configuration)> = Vec::new();
        let mut recorder = |t: u64, c: &Configuration| trace.push((t, c.clone()));
        let result = sim.run_engine_recorded(stop(budget), &mut recorder);
        (result, trace)
    })
    .join()
    .expect("sampler twin panicked")
}

/// Twin runs (incremental laws on vs off) of one dynamic must agree on the
/// run result and on the whole recorded trajectory, event for event.
fn assert_law_twins_agree<D: SamplingDynamics + Clone + Send + 'static>(
    dynamics: D,
    config: &Configuration,
    seed: u64,
    budget: u64,
) -> Result<(), TestCaseError> {
    let seed = SimSeed::from_u64(seed);
    let (patched, patched_trace) =
        recorded_sampler_run(dynamics.clone(), config.clone(), seed, budget, true);
    let (rebuilt, rebuilt_trace) =
        recorded_sampler_run(dynamics, config.clone(), seed, budget, false);
    prop_assert_eq!(&patched, &rebuilt, "run results diverged at {}", config);
    prop_assert_eq!(
        patched_trace.len(),
        rebuilt_trace.len(),
        "trajectory lengths diverged at {}",
        config
    );
    prop_assert!(
        patched_trace == rebuilt_trace,
        "trajectories diverged at {}",
        config
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// USD batched engines with row patching on vs off, advanced in
    /// lockstep: every advance outcome, configuration and counter must
    /// agree, at every event of the random trajectory.
    #[test]
    fn usd_incremental_rows_match_rebuilds_at_every_event(
        counts in collection::vec(0u64..60, 2..9),
        undecided in 0u64..60,
        seed in 0u64..u64::MAX,
    ) {
        let config = Configuration::from_counts(counts, undecided).unwrap();
        prop_assume!(config.population() >= 2);
        let k = config.num_opinions();
        let mut patched = BatchedEngine::new(
            UndecidedStateDynamics::new(k),
            config.clone(),
            SimSeed::from_u64(seed),
        );
        let mut rebuilt = BatchedEngine::new(
            UndecidedStateDynamics::new(k),
            config,
            SimSeed::from_u64(seed),
        );
        rebuilt.set_incremental_rows(false);
        let limit = 300_000u64;
        let mut events = 0u64;
        loop {
            let a = patched.advance(limit);
            let b = rebuilt.advance(limit);
            prop_assert_eq!(a, b, "advance outcomes diverged after {} events", events);
            prop_assert_eq!(
                StepEngine::configuration(&patched),
                StepEngine::configuration(&rebuilt),
                "configurations diverged after {} events",
                events
            );
            prop_assert_eq!(patched.interactions(), rebuilt.interactions());
            if a != Advance::Event {
                break;
            }
            events += 1;
        }
        let patched_stats = patched.maintenance().expect("batched engines count");
        let rebuilt_stats = rebuilt.maintenance().expect("batched engines count");
        prop_assert_eq!(rebuilt_stats.rows_patched, 0, "baseline must never patch");
        if events > 0 {
            prop_assert!(patched_stats.rows_patched >= events.saturating_sub(1));
            prop_assert!(patched_stats.rows_rebuilt <= 1 + events);
        }
    }

    /// All five dynamics × k ∈ {2, 4, 8}: incremental vs rebuilt activation
    /// laws give identical trajectories over random event sequences.
    #[test]
    fn sampling_law_twins_are_bit_identical(
        k_index in 0usize..3,
        raw_counts in collection::vec(0u64..40, 8..9),
        undecided in 0u64..40,
        seed in 0u64..u64::MAX,
    ) {
        let k = [2usize, 4, 8][k_index];
        let counts: Vec<u64> = raw_counts[..k].to_vec();
        let config = Configuration::from_counts(counts, undecided).unwrap();
        prop_assume!(config.population() >= 2);
        let budget = 150_000u64;
        assert_law_twins_agree(Voter::new(k), &config, seed, budget)?;
        assert_law_twins_agree(TwoChoices::new(k), &config, seed ^ 1, budget)?;
        assert_law_twins_agree(ThreeMajority::new(k), &config, seed ^ 2, budget)?;
        assert_law_twins_agree(JMajority::new(k, 5), &config, seed ^ 3, budget)?;
        assert_law_twins_agree(MedianRule::new(k), &config, seed ^ 4, budget)?;
    }

    /// Ensemble shared-table neighbour-delta derivation at random replica
    /// and thread counts: every replica stays bit-identical to its
    /// standalone same-seed run, for both the USD (row tables) and the
    /// 3-Majority (activation laws, derived through the sampler memo).
    #[test]
    fn ensemble_neighbour_delta_keeps_replicas_standalone_exact(
        replicas in 2usize..6,
        threads in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let budget = 2_000_000u64;
        let master = SimSeed::from_u64(seed);
        let choice = EnsembleChoice::new(replicas).threads(threads);

        let usd_config = Configuration::from_counts(vec![150, 90, 60], 0).unwrap();
        let outcome = UsdEnsemble::try_new(usd_config.clone(), master, choice)
            .expect("batched base engine")
            .run(stop(budget));
        for (i, seed) in choice.seeds(master).into_iter().enumerate() {
            let mut standalone =
                BatchedEngine::new(UndecidedStateDynamics::new(3), usd_config.clone(), seed);
            let expected = standalone.run_engine(stop(budget));
            prop_assert_eq!(outcome.replica(i), &expected, "USD replica {} diverged", i);
        }

        let maj_config = Configuration::from_counts(vec![120, 80, 40], 30).unwrap();
        let dynamics = ThreeMajority::new(3);
        let outcome = sampler_ensemble(&dynamics, &maj_config, master, choice)
            .expect("3-majority supports the ensemble")
            .run(stop(budget));
        for (i, seed) in choice.seeds(master).into_iter().enumerate() {
            let mut standalone = SequentialSampler::new(dynamics, maj_config.clone(), seed);
            let expected = standalone.run_engine(stop(budget));
            prop_assert_eq!(
                outcome.replica(i),
                &expected,
                "3-majority replica {} diverged",
                i
            );
        }
    }
}

/// The deterministic smoke version of the law-twin property, so a plain
/// `cargo test` failure names the dynamic without a proptest shrink.
#[test]
fn law_twins_agree_on_fixed_configurations() {
    let config = Configuration::from_counts(vec![60, 35, 25], 20).unwrap();
    assert_law_twins_agree(ThreeMajority::new(3), &config, 7, 500_000).unwrap();
    assert_law_twins_agree(JMajority::new(3, 5), &config, 8, 500_000).unwrap();
    assert_law_twins_agree(MedianRule::new(3), &config, 9, 500_000).unwrap();
}

/// The incremental layer must actually engage on a long majority run — and
/// its counters must surface through the recorded `RunResult`.
#[test]
fn majority_run_reports_mostly_patched_laws() {
    let config = Configuration::from_counts(vec![400, 300, 300], 0).unwrap();
    let mut sim = SequentialSampler::new(ThreeMajority::new(3), config, SimSeed::from_u64(5));
    let result = sim.run_engine(stop(10_000_000));
    assert!(result.reached_consensus());
    let stats = result.maintenance().expect("samplers report maintenance");
    assert!(
        stats.law_patches > stats.law_rebuilds,
        "patching should dominate: {stats:?}"
    );
    assert!(
        stats.law_patched_fraction().unwrap() > 0.9,
        "long runs should be overwhelmingly patched: {stats:?}"
    );
}
