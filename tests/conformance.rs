//! Statistical conformance of the closed-form conditional samplers.
//!
//! PR 3 gave the multi-sample dynamics (j-Majority, MedianRule) closed-form
//! skip-ahead hooks: an exact null-activation probability and a direct
//! conditional sampler for the productive event, replacing the rejection
//! loop.  This suite pins those samplers to the per-activation reference
//! implementations through the reusable checkers in
//! [`pp_analysis::conformance`]:
//!
//! * **single-event distribution** — the law of one productive `(from, to)`
//!   transition, conditional sampler vs the rejection loop over `update`,
//!   chi-squared over the `(k+1)²` transition bins for j ∈ {3, 5, 7} and
//!   k ∈ {2, 4, 8} (j-Majority) and for the MedianRule;
//! * **trajectory pinning** — consensus hitting times of full skip-ahead
//!   runs vs per-activation runs;
//! * **conservation and counters** — proptests that the null probability is
//!   a probability consistent with the empirical null frequency, that the
//!   conditional sampler never returns a null move and conserves the
//!   population, and the regression gate that `rejection_misses` is exactly
//!   `Some(0)` under the batched driver.

use consensus_dynamics::{
    JMajority, MedianRule, SamplingDynamics, SequentialSampler, ThreeMajority,
};
use pp_analysis::conformance::{Conformance, EventTally};
use pp_core::engine::StepEngine;
use pp_core::{AgentState, Configuration, SimSeed, StopCondition};
use rand::rngs::SmallRng;
use rand::Rng;

/// Draws one category proportionally to counts (the activation law).
fn sample_category(config: &Configuration, rng: &mut SmallRng) -> AgentState {
    let k = config.num_opinions();
    let mut target = rng.gen_range(0..config.population());
    for cat in 0..=k {
        let c = config.category_count(cat);
        if target < c {
            return AgentState::from_category(cat, k);
        }
        target -= c;
    }
    unreachable!("category weights exceeded the population")
}

/// The reference sampler: realizes one productive activation by rejection
/// over the dynamic's own `update` rule — the per-activation implementation
/// the closed forms must match.
fn rejection_reference<D: SamplingDynamics>(
    dynamics: &D,
    config: &Configuration,
    rng: &mut SmallRng,
) -> (AgentState, AgentState) {
    let mut samples = vec![AgentState::Undecided; dynamics.sample_size()];
    loop {
        let current = sample_category(config, rng);
        for s in samples.iter_mut() {
            *s = sample_category(config, rng);
        }
        let new = dynamics.update(current, &samples, rng);
        if new != current {
            return (current, new);
        }
    }
}

/// Pins the closed-form conditional sampler of `dynamics` to the rejection
/// reference on one frozen configuration, via the single-event tally.
fn pin_single_event<D: SamplingDynamics>(dynamics: &D, config: &Configuration, draws: u32) {
    let k = config.num_opinions();
    let mut reference = EventTally::new(k);
    let mut candidate = EventTally::new(k);
    let mut ref_rng = SimSeed::from_u64(0xEEF).rng();
    let mut cand_rng = SimSeed::from_u64(0xCAFE).rng();
    for _ in 0..draws {
        let (from, to) = rejection_reference(dynamics, config, &mut ref_rng);
        reference.record(from.category(k), to.category(k));
        let (from, to) = dynamics
            .sample_productive_move(config, &mut cand_rng)
            .expect("closed-form sampler is present");
        assert_ne!(from, to, "conditional sampler returned a null move");
        candidate.record(from.category(k), to.category(k));
    }
    Conformance::default()
        .pin_counts(
            &format!("{} single-event law at {config}", dynamics.name()),
            reference.counts(),
            candidate.counts(),
        )
        .assert_consistent();
}

#[test]
fn j_majority_single_event_law_matches_rejection_sampling() {
    // The satellite grid: j ∈ {3, 5, 7} × k ∈ {2, 4, 8}, on a skewed
    // configuration with undecided mass so every transition class is live.
    for j in [3usize, 5, 7] {
        for k in [2usize, 4, 8] {
            let mut counts: Vec<u64> = (0..k as u64).map(|i| 60 + 25 * i).collect();
            counts[0] += 100; // a clear plurality plus a graded tail
            let config = Configuration::from_counts(counts, 40).unwrap();
            pin_single_event(&JMajority::new(k, j), &config, 4_000);
        }
    }
}

#[test]
fn three_majority_wrapper_shares_the_j_majority_law() {
    let config = Configuration::from_counts(vec![120, 80, 50], 30).unwrap();
    pin_single_event(&ThreeMajority::new(3), &config, 6_000);
}

#[test]
fn median_rule_single_event_law_matches_rejection_sampling() {
    // Ordered opinions with mass on both flanks so below-pairs, above-pairs
    // and undecided adoptions all occur.
    let config = Configuration::from_counts(vec![70, 40, 90, 30, 60], 35).unwrap();
    pin_single_event(&MedianRule::new(5), &config, 8_000);
}

#[test]
fn j_majority_hitting_times_match_per_activation_runs() {
    let conf = Conformance::default();
    conf.pin_scalar(
        "3-majority consensus hitting times, skip-ahead vs per-activation",
        |seed| {
            let config = Configuration::from_counts(vec![600, 250, 150], 0).unwrap();
            let mut sim = SequentialSampler::new(
                ThreeMajority::new(3),
                config,
                SimSeed::from_u64(0xA3_0000 + seed),
            );
            let result = sim.run(StopCondition::consensus().or_max_interactions(5_000_000));
            assert!(result.reached_consensus());
            result.interactions() as f64
        },
        |seed| {
            let config = Configuration::from_counts(vec![600, 250, 150], 0).unwrap();
            let mut sim = SequentialSampler::new(
                ThreeMajority::new(3),
                config,
                SimSeed::from_u64(0xB3_0000 + seed),
            );
            let result = sim.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
            assert!(result.reached_consensus());
            result.interactions() as f64
        },
    )
    .assert_consistent();
}

#[test]
fn median_rule_hitting_times_match_per_activation_runs() {
    let conf = Conformance::default();
    conf.pin_scalar(
        "median-rule consensus hitting times, skip-ahead vs per-activation",
        |seed| {
            let config = Configuration::from_counts(vec![150, 400, 250, 200], 0).unwrap();
            let mut sim = SequentialSampler::new(
                MedianRule::new(4),
                config,
                SimSeed::from_u64(0xA4_0000 + seed),
            );
            let result = sim.run(StopCondition::consensus().or_max_interactions(5_000_000));
            assert!(result.reached_consensus());
            result.interactions() as f64
        },
        |seed| {
            let config = Configuration::from_counts(vec![150, 400, 250, 200], 0).unwrap();
            let mut sim = SequentialSampler::new(
                MedianRule::new(4),
                config,
                SimSeed::from_u64(0xB4_0000 + seed),
            );
            let result = sim.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
            assert!(result.reached_consensus());
            result.interactions() as f64
        },
    )
    .assert_consistent();
}

#[test]
fn rejection_misses_are_exactly_zero_under_the_batched_driver() {
    // The regression gate for the ROADMAP's batched-conditionals item: the
    // rejection fallback must never fire for the new closed-form samplers
    // (E8's "rejection misses" column reads `mean 0` off the same counter).
    type CounterRun = Box<dyn Fn() -> (u64, Option<u64>)>;
    let grid: Vec<(&str, CounterRun)> = vec![
        (
            "3-majority",
            Box::new(|| {
                let config = Configuration::from_counts(vec![500, 300, 200], 0).unwrap();
                let mut sim =
                    SequentialSampler::new(ThreeMajority::new(3), config, SimSeed::from_u64(1));
                let r = sim.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
                assert!(r.reached_consensus());
                (sim.rejection_fallbacks(), r.rejection_misses())
            }),
        ),
        (
            "5-majority",
            Box::new(|| {
                let config = Configuration::from_counts(vec![400, 250, 150, 100], 100).unwrap();
                let mut sim =
                    SequentialSampler::new(JMajority::new(4, 5), config, SimSeed::from_u64(2));
                let r = sim.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
                assert!(r.reached_consensus());
                (sim.rejection_fallbacks(), r.rejection_misses())
            }),
        ),
        (
            "median rule",
            Box::new(|| {
                let config = Configuration::from_counts(vec![150, 500, 150, 200], 0).unwrap();
                let mut sim =
                    SequentialSampler::new(MedianRule::new(4), config, SimSeed::from_u64(3));
                let r = sim.run_engine(StopCondition::consensus().or_max_interactions(5_000_000));
                assert!(r.reached_consensus());
                (sim.rejection_fallbacks(), r.rejection_misses())
            }),
        ),
    ];
    for (name, run) in grid {
        let (fallbacks, misses) = run();
        assert_eq!(fallbacks, 0, "{name} fell back to rejection sampling");
        assert_eq!(misses, Some(0), "{name} discarded rejection draws");
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Null probability checked against the empirical null frequency with a
    /// generous tolerance (3 standard errors plus slack at 600 draws).
    fn check_null_probability<D: SamplingDynamics>(
        dynamics: &D,
        config: &Configuration,
        seed: u64,
    ) -> Result<(), TestCaseError> {
        let p = dynamics
            .null_activation_probability(config)
            .expect("closed form is present");
        prop_assert!(
            (0.0..=1.0).contains(&p),
            "null probability {p} out of range"
        );
        let mut rng = SimSeed::from_u64(seed).rng();
        let trials = 600u32;
        let mut nulls = 0u32;
        let mut samples = vec![AgentState::Undecided; dynamics.sample_size()];
        for _ in 0..trials {
            let current = sample_category(config, &mut rng);
            for s in samples.iter_mut() {
                *s = sample_category(config, &mut rng);
            }
            if dynamics.update(current, &samples, &mut rng) == current {
                nulls += 1;
            }
        }
        let empirical = f64::from(nulls) / f64::from(trials);
        let tolerance = 3.0 * (p * (1.0 - p) / f64::from(trials)).sqrt() + 0.02;
        prop_assert!(
            (p - empirical).abs() <= tolerance,
            "closed form {} vs empirical {} at {}",
            p,
            empirical,
            config
        );
        Ok(())
    }

    /// The conditional sampler must return productive, count-conserving
    /// moves whenever the null probability says one exists.
    fn check_productive_moves<D: SamplingDynamics>(
        dynamics: &D,
        config: &Configuration,
        seed: u64,
    ) -> Result<(), TestCaseError> {
        let p_null = dynamics
            .null_activation_probability(config)
            .expect("closed form is present");
        if p_null >= 1.0 {
            return Ok(());
        }
        let mut rng = SimSeed::from_u64(seed).rng();
        for _ in 0..40 {
            let (from, to) = dynamics
                .sample_productive_move(config, &mut rng)
                .expect("closed form is present");
            prop_assert!(from != to, "sampler returned the null composition");
            let mut moved = config.clone();
            prop_assert!(moved.apply_move(from, to).is_ok(), "move not applicable");
            prop_assert_eq!(moved.population(), config.population());
            prop_assert!(moved.is_consistent());
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn j_majority_null_probability_is_consistent(
            counts in proptest::collection::vec(0u64..60, 2..6),
            undecided in 0u64..60,
            j in 1usize..8,
            seed in 0u64..1_000,
        ) {
            prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
            let config = Configuration::from_counts(counts, undecided).unwrap();
            let dynamics = JMajority::new(config.num_opinions(), j);
            check_null_probability(&dynamics, &config, seed)?;
            check_productive_moves(&dynamics, &config, seed ^ 0x5EED)?;
        }

        #[test]
        fn median_rule_null_probability_is_consistent(
            counts in proptest::collection::vec(0u64..60, 2..7),
            undecided in 0u64..60,
            seed in 0u64..1_000,
        ) {
            prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
            let config = Configuration::from_counts(counts, undecided).unwrap();
            let dynamics = MedianRule::new(config.num_opinions());
            check_null_probability(&dynamics, &config, seed)?;
            check_productive_moves(&dynamics, &config, seed ^ 0x5EED)?;
        }

        /// Driving the skip-ahead sampler through arbitrary budgets upholds
        /// the engine-layer invariants (shared conservation checker).
        #[test]
        fn skip_ahead_driver_conserves_population(
            counts in proptest::collection::vec(0u64..100, 2..5),
            undecided in 0u64..100,
            seed in 0u64..1_000,
            budget in 1u64..20_000,
        ) {
            prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
            let config = Configuration::from_counts(counts.clone(), undecided).unwrap();
            let k = config.num_opinions();
            let mut sim = SequentialSampler::new(
                ThreeMajority::new(k),
                config.clone(),
                SimSeed::from_u64(seed),
            );
            pp_analysis::check_conservation(&mut sim, budget)
                .map_err(TestCaseError::Fail)?;
            let mut sim = SequentialSampler::new(
                MedianRule::new(k),
                config,
                SimSeed::from_u64(seed),
            );
            pp_analysis::check_conservation(&mut sim, budget)
                .map_err(TestCaseError::Fail)?;
        }
    }
}
