//! Property-based tests of the core invariants, spanning the workload
//! generators, the configuration algebra, the USD protocol and the coupling.

use k_opinion_usd::prelude::*;
use pp_core::{AgentState, Configuration, OpinionProtocol, StopCondition};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The USD never invents opinions: running from any configuration can only
    /// shrink the set of opinions with non-zero support.
    #[test]
    fn usd_never_creates_new_opinions(
        counts in proptest::collection::vec(0u64..50, 2..6),
        undecided in 0u64..50,
        steps in 1u64..2_000,
        seed in 0u64..1_000,
    ) {
        prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
        let config = Configuration::from_counts(counts.clone(), undecided).unwrap();
        let live_before: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
        let mut sim = UsdSimulator::new(config, SimSeed::from_u64(seed));
        for _ in 0..steps {
            sim.step();
        }
        for (i, &was_live) in live_before.iter().enumerate() {
            if !was_live {
                prop_assert_eq!(sim.configuration().support(i), 0,
                    "opinion {} appeared out of nowhere", i);
            }
        }
        prop_assert!(sim.configuration().is_consistent());
        prop_assert_eq!(sim.configuration().population(), counts.iter().sum::<u64>() + undecided);
    }

    /// The USD transition function is exactly the paper's table for arbitrary
    /// state pairs.
    #[test]
    fn usd_transition_matches_paper_table(k in 1usize..12, r in 0usize..13, i in 0usize..13) {
        let usd = UndecidedStateDynamics::new(k);
        let to_state = |idx: usize| if idx >= k { AgentState::Undecided } else { AgentState::decided(idx) };
        let responder = to_state(r.min(k));
        let initiator = to_state(i.min(k));
        let out = usd.respond(responder, initiator);
        let expected = match (responder, initiator) {
            (AgentState::Decided(a), AgentState::Decided(b)) if a != b => AgentState::Undecided,
            (AgentState::Undecided, AgentState::Decided(b)) => AgentState::Decided(b),
            _ => responder,
        };
        prop_assert_eq!(out, expected);
    }

    /// Workload builders always produce configurations with the requested
    /// population, opinion count and (when applicable) bias direction.
    #[test]
    fn workload_builder_invariants(
        n in 50u64..5_000,
        k in 2usize..10,
        bias_mult in 0.0f64..3.0,
        undecided_frac in 0.0f64..0.5,
        seed in 0u64..500,
    ) {
        let config = InitialConfig::new(n, k)
            .additive_bias_in_sqrt_n_log_n(bias_mult)
            .undecided_fraction(undecided_frac)
            .build(SimSeed::from_u64(seed))
            .unwrap();
        prop_assert_eq!(config.population(), n);
        prop_assert_eq!(config.num_opinions(), k);
        prop_assert!(config.is_consistent());
        // Opinion 0 is always a (possibly tied) plurality for these builders.
        prop_assert_eq!(config.max_opinion().index(), 0);
        let expected_u = (n as f64 * undecided_frac).round() as u64;
        prop_assert!(config.undecided().abs_diff(expected_u) <= k as u64 + 1);
    }

    /// The multiplicative-bias generator respects the requested factor.
    #[test]
    fn multiplicative_bias_generator_respects_factor(
        n in 500u64..20_000,
        k in 2usize..12,
        factor in 1.05f64..5.0,
    ) {
        let config = pp_workloads::with_multiplicative_bias(n, k, factor).unwrap();
        prop_assert_eq!(config.population(), n);
        let measured = config.multiplicative_bias().unwrap();
        prop_assert!(measured >= factor * 0.98,
            "requested factor {} but measured {}", factor, measured);
    }

    /// Configuration::apply_move conserves the population and round-trips
    /// through the explicit agent-state representation.
    #[test]
    fn configuration_moves_and_round_trips(
        counts in proptest::collection::vec(0u64..30, 1..6),
        undecided in 0u64..30,
        moves in proptest::collection::vec((0usize..7, 0usize..7), 0..40),
    ) {
        prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
        let k = counts.len();
        let mut config = Configuration::from_counts(counts, undecided).unwrap();
        let population = config.population();
        for (from, to) in moves {
            let from_state = if from >= k { AgentState::Undecided } else { AgentState::decided(from) };
            let to_state = if to >= k { AgentState::Undecided } else { AgentState::decided(to) };
            // Ignore invalid moves; valid ones must preserve the population.
            let _ = config.apply_move(from_state, to_state);
            prop_assert_eq!(config.population(), population);
            prop_assert!(config.is_consistent());
        }
        let rebuilt = Configuration::from_states(&config.to_states(), k).unwrap();
        prop_assert_eq!(rebuilt, config);
    }

    /// The Lemma 17 coupling never violates majorization, from any starting
    /// configuration (not only the Phase 5 precondition).
    #[test]
    fn coupling_invariant_holds_from_arbitrary_starts(
        counts in proptest::collection::vec(1u64..40, 2..5),
        undecided in 0u64..40,
        steps in 1u64..3_000,
        seed in 0u64..300,
    ) {
        let config = Configuration::from_counts(counts, undecided).unwrap();
        let mut coupled = CoupledUsd::new(&config, SimSeed::from_u64(seed));
        for _ in 0..steps {
            prop_assert!(coupled.step(), "majorization violated at step {}", coupled.interactions());
        }
        prop_assert_eq!(coupled.k_configuration().population(), config.population());
        prop_assert_eq!(coupled.two_configuration().population(), config.population());
    }

    /// Small biased instances settle on the plurality often enough to be
    /// consistent with the w.h.p. statement (sanity, not a sharp bound).
    #[test]
    fn strongly_biased_small_runs_settle(
        seed in 0u64..30,
    ) {
        let config = Configuration::from_counts(vec![300, 50, 50], 0).unwrap();
        let mut sim = UsdSimulator::new(config, SimSeed::from_u64(seed));
        let result = sim.run_to_settlement(20_000_000);
        prop_assert!(result.opinion_settled());
    }

    /// Stop conditions behave monotonically: a run that stops at settlement
    /// never uses more interactions than one that stops at consensus.
    #[test]
    fn settlement_never_slower_than_consensus(seed in 0u64..40) {
        let config = Configuration::from_counts(vec![120, 60, 20], 0).unwrap();
        let mut a = UsdSimulator::new(config.clone(), SimSeed::from_u64(seed));
        let mut b = UsdSimulator::new(config, SimSeed::from_u64(seed));
        let settled = a.run_to_settlement(50_000_000);
        let consensus = b.run_to_consensus(50_000_000);
        prop_assert!(settled.interactions() <= consensus.interactions());
    }

    /// The gossip engine preserves the population for any protocol round.
    #[test]
    fn gossip_rounds_preserve_population(
        counts in proptest::collection::vec(1u64..60, 2..5),
        rounds in 1u64..20,
        seed in 0u64..200,
    ) {
        let config = Configuration::from_counts(counts, 0).unwrap();
        let mut sim = gossip_model::UsdGossip::new(&config, SimSeed::from_u64(seed));
        for _ in 0..rounds {
            sim.round();
            prop_assert_eq!(sim.configuration().population(), config.population());
            prop_assert!(sim.configuration().is_consistent());
        }
    }
}

#[test]
fn stop_condition_without_goal_or_budget_is_rejected_by_simulators() {
    // Not a proptest: a single deterministic check that unbounded stop
    // conditions are refused loudly rather than looping forever.
    let unbounded = StopCondition::after_interactions(0);
    assert!(unbounded.is_bounded());
}
