//! Bit-identity of instrumented runs: attaching a [`Telemetry`] handle must
//! never change a trajectory.
//!
//! The observability layer (`pp_core::telemetry`) promises that spans and
//! counters are pure observers — they consume no randomness and take no
//! branch the uninstrumented run would not take.  This suite pins that
//! promise the same way `ensemble_equivalence` pins the replica engine:
//!
//! * **USD engines** — exact, batched and sharded (the latter at several
//!   worker-thread counts) run with `Telemetry::enabled()` vs
//!   `Telemetry::disabled()` and are compared `==`, *including the full
//!   recorded `(interactions, configuration)` trajectory*, plus a phased
//!   run under the recommended per-phase engine policy.
//! * **All five sampling dynamics** — Voter, TwoChoices, 3-Majority,
//!   j-Majority and MedianRule through the replica ensemble, instrumented
//!   vs silent, across thread counts, compared `==` per replica.
//! * **A proptest** drives random populations, opinion counts, seeds,
//!   engines and thread counts against the uninstrumented reference.
//! * **Chrome-trace validity** — the `--trace` artifact parses as JSON,
//!   every complete event carries the Perfetto-required fields, span
//!   counts match the registry, and per-track timestamps nest properly
//!   (via `pp_core::telemetry::check_span_nesting`), with worker tracks
//!   present for multi-threaded runs.

use consensus_dynamics::{
    sampler_ensemble, JMajority, MedianRule, SamplingDynamics, ThreeMajority, TwoChoices, Voter,
};
use pp_core::ensemble::EnsembleChoice;
use pp_core::telemetry::{check_span_nesting, COORDINATOR_TID};
use pp_core::{
    Configuration, EngineChoice, RunResult, ShardPlan, SimSeed, StopCondition, Telemetry,
};
use proptest::prelude::*;
use usd_core::{EnginePolicy, UsdSimulator};
use usd_experiments::trend::{parse_json, Json};

const MASTER: u64 = 0x07E1_E0B5;

fn stop(budget: u64) -> StopCondition {
    StopCondition::consensus().or_max_interactions(budget)
}

/// Runs a USD simulator with or without telemetry attached, returning the
/// result, the full recorded trajectory, and the handle (disabled handles
/// simply report nothing).
fn usd_run(
    config: &Configuration,
    seed: u64,
    choice: EngineChoice,
    plan: ShardPlan,
    budget: u64,
    instrumented: bool,
) -> (RunResult, Vec<(u64, Configuration)>, Telemetry) {
    let tel = if instrumented {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut sim =
        UsdSimulator::with_engine_plan(config.clone(), SimSeed::from_u64(seed), choice, plan);
    sim.set_telemetry(tel.clone());
    let mut trace: Vec<(u64, Configuration)> = Vec::new();
    let mut recorder = |t: u64, c: &Configuration| trace.push((t, c.clone()));
    let result = sim.run_recorded(stop(budget), &mut recorder);
    (result, trace, tel)
}

#[test]
fn telemetry_is_invisible_to_every_usd_engine() {
    let config = Configuration::from_counts(vec![900, 400, 200], 0).unwrap();
    let cases: Vec<(EngineChoice, ShardPlan)> = vec![
        (EngineChoice::Exact, ShardPlan::default()),
        (EngineChoice::Batched, ShardPlan::default()),
        (EngineChoice::Sharded, ShardPlan::new(4).threads(1)),
        (EngineChoice::Sharded, ShardPlan::new(4).threads(2)),
        (EngineChoice::Sharded, ShardPlan::new(4).threads(3)),
    ];
    for (choice, plan) in cases {
        let (silent, silent_trace, _) = usd_run(&config, MASTER, choice, plan, 50_000_000, false);
        let (traced, traced_trace, tel) = usd_run(&config, MASTER, choice, plan, 50_000_000, true);
        assert_eq!(
            traced, silent,
            "{choice:?}: attaching telemetry changed the run result"
        );
        assert_eq!(
            traced_trace, silent_trace,
            "{choice:?}: attaching telemetry changed the recorded trajectory"
        );
        // The instrumented run actually observed something — equality above
        // must not hold because telemetry was silently dropped.  (Batched
        // counters live on the result snapshot; sharded epochs also hit the
        // live registry as spans.)
        if choice != EngineChoice::Exact {
            assert!(
                traced.telemetry().is_some_and(|snap| !snap.is_empty()),
                "{choice:?}: instrumented run carries no metrics snapshot"
            );
        }
        if choice == EngineChoice::Sharded {
            assert!(
                !tel.spans().is_empty(),
                "sharded run emitted no epoch spans"
            );
        }
    }
}

#[test]
fn telemetry_is_invisible_to_phased_runs() {
    let config = Configuration::from_counts(vec![2_000, 600, 400], 0).unwrap();
    let policy = EnginePolicy::recommended();
    let mut silent = UsdSimulator::new(config.clone(), SimSeed::from_u64(MASTER ^ 3));
    let expected = silent.run_with_phases_policy(1.0, 100_000_000, &policy);
    let tel = Telemetry::enabled();
    let mut sim = UsdSimulator::new(config, SimSeed::from_u64(MASTER ^ 3));
    sim.set_telemetry(tel.clone());
    let traced = sim.run_with_phases_policy(1.0, 100_000_000, &policy);
    assert_eq!(traced.run, expected.run);
    assert_eq!(traced.phases, expected.phases);
    // The phase spans land on the coordinator track and nest.
    let spans = tel.spans();
    assert!(spans.iter().any(|s| s.name.starts_with("usd.phase.")));
    check_span_nesting(&spans).expect("phase spans must nest");
}

/// Pins a sampling dynamic: ensemble runs with an enabled handle equal
/// silent runs, per replica, at every thread count.
fn pin_sampler_telemetry<D: SamplingDynamics + Clone + Send>(
    dynamics: D,
    config: Configuration,
    replicas: usize,
    budget: u64,
) {
    let master = SimSeed::from_u64(MASTER ^ 0x5A);
    for threads in [1usize, 3] {
        let choice = EnsembleChoice::new(replicas).threads(threads);
        let silent = sampler_ensemble(&dynamics, &config, master, choice)
            .expect("shipped dynamics support the ensemble")
            .run(stop(budget));
        let tel = Telemetry::enabled();
        let mut instrumented = sampler_ensemble(&dynamics, &config, master, choice).unwrap();
        instrumented.set_telemetry(tel.clone());
        let outcome = instrumented.run(stop(budget));
        assert_eq!(
            outcome,
            silent,
            "{} diverged under telemetry at threads={threads}",
            dynamics.name()
        );
        // Every window span the run emitted nests properly per track.
        check_span_nesting(&tel.spans()).expect("ensemble spans must nest");
        assert!(
            tel.snapshot().counter("ensemble.rounds").unwrap_or(0) > 0,
            "{} recorded no lockstep rounds",
            dynamics.name()
        );
    }
}

#[test]
fn telemetry_is_invisible_to_all_five_sampling_dynamics() {
    let biased = Configuration::from_counts(vec![600, 250], 0).unwrap();
    let with_undecided = Configuration::from_counts(vec![400, 200], 200).unwrap();
    pin_sampler_telemetry(Voter::new(2), with_undecided, 4, 5_000_000);
    pin_sampler_telemetry(TwoChoices::new(2), biased.clone(), 4, 5_000_000);
    pin_sampler_telemetry(ThreeMajority::new(2), biased, 4, 5_000_000);
    pin_sampler_telemetry(
        JMajority::new(3, 5),
        Configuration::from_counts(vec![450, 300, 150], 0).unwrap(),
        4,
        5_000_000,
    );
    pin_sampler_telemetry(
        MedianRule::new(3),
        Configuration::from_counts(vec![350, 300, 250], 0).unwrap(),
        4,
        5_000_000,
    );
}

#[test]
fn chrome_traces_parse_with_nested_per_track_spans() {
    // A multi-threaded ensemble run populates worker tracks beyond the
    // coordinator's.
    let config = Configuration::from_counts(vec![3_000, 1_000, 1_000], 0).unwrap();
    let tel = Telemetry::enabled();
    let mut ensemble = UsdSimulator::ensemble(
        config,
        SimSeed::from_u64(MASTER ^ 0xC4),
        EnsembleChoice::new(8).threads(3),
    )
    .unwrap();
    ensemble.set_telemetry(tel.clone());
    let outcome = ensemble.run(stop(50_000_000));
    assert!(outcome.all_reached_goal());

    let spans = tel.spans();
    assert!(!spans.is_empty(), "instrumented ensemble emitted no spans");
    check_span_nesting(&spans).expect("registry spans must nest per track");
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.contains(&COORDINATOR_TID) && tids.len() >= 2,
        "expected coordinator + worker tracks, got tids {tids:?}"
    );

    // The exported chrome trace mirrors the registry: one "ph":"X" complete
    // event per span, each carrying the fields Perfetto requires, with
    // monotone non-negative timestamps.
    let doc = parse_json(&tel.chrome_trace_json()).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("trace has a traceEvents array");
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(
        complete.len(),
        spans.len(),
        "one complete event per recorded span"
    );
    for event in complete {
        assert!(event.get("name").and_then(Json::as_str).is_some());
        let num = |key: &str| event.get(key).and_then(Json::as_f64).unwrap();
        assert!(num("pid") > 0.0);
        assert!(num("tid") >= 0.0);
        assert!(num("ts") >= 0.0);
        assert!(num("dur") >= 0.0);
    }
    // Thread-name metadata labels each track for the trace viewer.
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
        "trace carries thread_name metadata events"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bit-identity as a property: random populations, opinion counts,
    /// seeds, engines and thread counts — the instrumented run equals the
    /// silent run, result and trajectory both.
    #[test]
    fn instrumented_runs_equal_silent_runs(
        lead in 200u64..1_200,
        trail in 50u64..400,
        extra in 0u64..300,
        engine_pick in 0usize..3,
        threads in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let config = Configuration::from_counts(vec![lead + trail, trail], extra).unwrap();
        let (choice, plan) = match engine_pick {
            0 => (EngineChoice::Batched, ShardPlan::default()),
            1 => (EngineChoice::Sharded, ShardPlan::new(2).threads(threads)),
            _ => (EngineChoice::Sharded, ShardPlan::new(4).threads(threads)),
        };
        let (silent, silent_trace, _) = usd_run(&config, seed, choice, plan, 20_000_000, false);
        let (traced, traced_trace, tel) = usd_run(&config, seed, choice, plan, 20_000_000, true);
        prop_assert_eq!(traced, silent);
        prop_assert_eq!(traced_trace, silent_trace);
        prop_assert!(check_span_nesting(&tel.spans()).is_ok());
    }
}
