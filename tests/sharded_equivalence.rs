//! Statistical equivalence and conservation laws of the sharded engine.
//!
//! The sharded engine is documented-approximate (cross-shard reconciliation
//! reads initiator counts frozen at the reconcile pass that follows each
//! epoch's intra-shard advancement), with the bias tunable
//! through the epoch length.  These tests pin it to the exact engine at the
//! default epoch length (`n/32`) on the same observables the batched engine
//! is pinned on: consensus hitting times and winner identity at `n = 10⁴`,
//! via the shared checkers in [`pp_analysis::conformance`].  Property
//! tests additionally check the structural invariants: the proportional
//! split conserves every per-opinion count (merge ∘ split = identity), and
//! epoch-sliced advancement conserves the population under arbitrary shard
//! counts, epoch lengths and budget boundaries.

use pp_analysis::Conformance;
use pp_core::engine::StepEngine;
use pp_core::shard::multinomial::{merge_configurations, shard_populations, split_configuration};
use pp_core::shard::{ShardPlan, ShardedEngine};
use pp_core::{Advance, Configuration, EngineChoice, SimSeed};
use usd_core::{UndecidedStateDynamics, UsdSimulator};

const RUNS: u64 = 48;

/// One USD consensus hitting time at n = 10⁴ under the given backend, from
/// a deep-bias start (long null-dominated stretches, which the sharded
/// engine spends almost entirely inside reconciliation epochs).
fn usd_hitting_time(choice: EngineChoice, seed: u64) -> f64 {
    let config = Configuration::from_counts(vec![9_000, 500, 500], 0).unwrap();
    let mut sim = UsdSimulator::with_engine(config, SimSeed::from_u64(seed), choice);
    let result = sim.run_to_consensus(500_000_000);
    assert!(result.reached_consensus(), "run {seed:#x} did not converge");
    result.interactions() as f64
}

#[test]
fn usd_consensus_hitting_times_match_exact_engine() {
    Conformance::default()
        .pin_scalar(
            "USD consensus hitting times, exact vs sharded",
            |i| usd_hitting_time(EngineChoice::Exact, 0xE4_0000 + i),
            |i| usd_hitting_time(EngineChoice::Sharded, 0x5A_0000 + i),
        )
        .assert_consistent();
}

/// Winner identity of the near-tied two-opinion USD: decided by the chain's
/// fluctuations, so a biased reconciliation would shift these counts.
fn usd_winner_counts(choice: EngineChoice, seed_base: u64) -> [u64; 2] {
    let mut counts = [0u64; 2];
    for i in 0..RUNS {
        let config = Configuration::from_counts(vec![5_100, 4_900], 0).unwrap();
        let mut sim = UsdSimulator::with_engine(config, SimSeed::from_u64(seed_base + i), choice);
        let result = sim.run_to_settlement(500_000_000);
        let winner = result.winner().expect("settled run has a winner");
        counts[winner.index()] += 1;
    }
    counts
}

#[test]
fn usd_winner_distribution_matches_exact_engine() {
    let exact = usd_winner_counts(EngineChoice::Exact, 0xE5_0000);
    let sharded = usd_winner_counts(EngineChoice::Sharded, 0x5B_0000);
    Conformance::default()
        .pin_counts("USD winner identity, exact vs sharded", &exact, &sharded)
        .assert_consistent();
}

#[test]
fn sharded_engine_interaction_counter_lands_on_epoch_boundaries() {
    let config = Configuration::from_counts(vec![700, 300], 0).unwrap();
    let plan = ShardPlan::new(4).epoch_interactions(100);
    let mut engine = ShardedEngine::new(
        UndecidedStateDynamics::new(2),
        config,
        SimSeed::from_u64(1),
        &plan,
    );
    assert_eq!(engine.epoch_length(), 100);
    let adv = engine.advance(1_000_000);
    assert_eq!(adv, Advance::Event);
    assert_eq!(
        engine.interactions() % 100,
        0,
        "advance must land on an epoch boundary"
    );
    // A limit inside an epoch clips the epoch exactly to the limit.
    let now = engine.interactions();
    let _ = engine.advance(now + 37);
    assert!(engine.interactions() <= now + 37);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Split ∘ merge is the identity on per-opinion counts, for any
        /// configuration and shard count — the reconciliation layer can
        /// never create or destroy agents of any opinion at rest.
        #[test]
        fn sharded_split_conserves_per_opinion_counts(
            counts in proptest::collection::vec(0u64..500, 1..7),
            undecided in 0u64..500,
            shards in 1usize..9,
        ) {
            prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
            let config = Configuration::from_counts(counts, undecided).unwrap();
            let shards = shards.min(config.population() as usize);
            let populations = shard_populations(config.population(), shards);
            let parts = split_configuration(&config, &populations);
            for (part, &pop) in parts.iter().zip(&populations) {
                prop_assert_eq!(part.population(), pop);
                prop_assert!(part.is_consistent());
            }
            prop_assert_eq!(merge_configurations(&parts), config);
        }

        /// Epoch-sliced advancement conserves the population under arbitrary
        /// shard counts, epoch lengths, and budget boundaries, and the
        /// interaction counter respects every budget exactly.
        #[test]
        fn sharded_advance_conserves_population(
            counts in proptest::collection::vec(0u64..200, 2..6),
            undecided in 0u64..200,
            shards in 1usize..6,
            epoch in 1u64..300,
            seed in 0u64..1_000,
            budget in 1u64..20_000,
        ) {
            prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
            let config = Configuration::from_counts(counts, undecided).unwrap();
            let k = config.num_opinions();
            let population = config.population();
            let plan = ShardPlan::new(shards).epoch_interactions(epoch);
            let mut engine = ShardedEngine::new(
                UndecidedStateDynamics::new(k),
                config,
                SimSeed::from_u64(seed),
                &plan,
            );
            let mut last_interactions = 0u64;
            loop {
                let outcome = engine.advance(budget);
                let now = StepEngine::interactions(&engine);
                prop_assert!(now >= last_interactions, "interaction counter went backwards");
                prop_assert!(now <= budget, "advance overshot the budget");
                last_interactions = now;
                prop_assert_eq!(engine.configuration().population(), population);
                prop_assert!(engine.configuration().is_consistent());
                // Shard-level conservation: merging the shards reproduces the
                // engine's merged view.
                let parts: Vec<Configuration> = (0..engine.num_shards())
                    .map(|s| engine.shard_configuration(s).clone())
                    .collect();
                prop_assert_eq!(&merge_configurations(&parts), engine.configuration());
                match outcome {
                    Advance::Event => {}
                    Advance::LimitReached | Advance::Absorbed => break,
                }
            }
            prop_assert_eq!(last_interactions, budget);
        }

        /// The sharded and exact engines compute identical productive
        /// probabilities from the same merged configuration.
        #[test]
        fn sharded_engine_agrees_on_productive_probability(
            counts in proptest::collection::vec(0u64..500, 2..6),
            undecided in 0u64..500,
            shards in 1usize..6,
        ) {
            prop_assume!(counts.iter().sum::<u64>() + undecided > 0);
            let config = Configuration::from_counts(counts, undecided).unwrap();
            let k = config.num_opinions();
            let exact = pp_core::CountSimulator::new(
                UndecidedStateDynamics::new(k),
                config.clone(),
                SimSeed::from_u64(1),
            );
            let engine = ShardedEngine::new(
                UndecidedStateDynamics::new(k),
                config,
                SimSeed::from_u64(1),
                &ShardPlan::new(shards),
            );
            let a = exact.productive_probability();
            let b = engine.productive_probability();
            prop_assert!((a - b).abs() < 1e-12, "exact {} vs sharded {}", a, b);
        }
    }
}
