//! Cross-crate integration of the baseline dynamics and the gossip-model
//! engines against the same workloads as the USD.

use consensus_dynamics::{
    MedianRule, SequentialSampler, SynchronizedUsd, ThreeMajority, TwoChoices, Voter,
};
use gossip_model::{PoissonGossip, UsdGossip};
use k_opinion_usd::prelude::*;
use pp_core::StopCondition;

#[test]
fn all_baselines_reach_consensus_on_a_biased_start() {
    let n = 800;
    let k = 4;
    let config = InitialConfig::new(n, k)
        .multiplicative_bias(2.0)
        .build(SimSeed::from_u64(1))
        .unwrap();
    let budget = 50_000_000;
    let stop = StopCondition::consensus().or_max_interactions(budget);

    let voter =
        SequentialSampler::new(Voter::new(k), config.clone(), SimSeed::from_u64(2)).run(stop);
    assert!(voter.reached_consensus(), "voter did not converge");

    let two =
        SequentialSampler::new(TwoChoices::new(k), config.clone(), SimSeed::from_u64(3)).run(stop);
    assert!(two.reached_consensus(), "two-choices did not converge");
    assert_eq!(
        two.winner().unwrap().index(),
        0,
        "two-choices should preserve a 2x plurality"
    );

    let three = SequentialSampler::new(ThreeMajority::new(k), config.clone(), SimSeed::from_u64(4))
        .run(stop);
    assert!(three.reached_consensus(), "3-majority did not converge");
    assert_eq!(
        three.winner().unwrap().index(),
        0,
        "3-majority should preserve a 2x plurality"
    );

    let median =
        SequentialSampler::new(MedianRule::new(k), config.clone(), SimSeed::from_u64(5)).run(stop);
    assert!(median.reached_consensus(), "median rule did not converge");

    let mut sync = SynchronizedUsd::new(&config, SimSeed::from_u64(6));
    let sync_result = sync.run(100_000);
    assert!(
        sync_result.reached_consensus(),
        "synchronized USD did not converge"
    );
    assert_eq!(sync_result.winner().unwrap().index(), 0);
}

#[test]
fn gossip_usd_converges_in_fewer_rounds_than_population_parallel_time_without_bias() {
    // One gossip round can flip Θ(n) agents, so from a uniform start the
    // gossip USD should use at most as much parallel time as the population
    // USD (which needs Θ(k n log n) interactions = Θ(k log n) parallel time).
    let n = 2_000;
    let k = 8;
    let config = InitialConfig::new(n, k)
        .build(SimSeed::from_u64(7))
        .unwrap();

    let mut pp = UsdSimulator::new(config.clone(), SimSeed::from_u64(8));
    let pp_result = pp.run_to_consensus(10_000_000_000);
    assert!(pp_result.reached_consensus());

    let mut gossip = UsdGossip::new(&config, SimSeed::from_u64(9));
    let gossip_result = gossip.run(1_000_000);
    assert!(gossip_result.reached_consensus());

    assert!(
        (gossip_result.interactions() as f64) <= pp_result.parallel_time() * 3.0,
        "gossip rounds {} vs population parallel time {:.1}",
        gossip_result.interactions(),
        pp_result.parallel_time()
    );
}

#[test]
fn poisson_clock_variant_matches_population_model_interaction_counts() {
    let n = 1_000;
    let k = 3;
    let config = InitialConfig::new(n, k)
        .multiplicative_bias(2.0)
        .build(SimSeed::from_u64(10))
        .unwrap();
    let mut poisson = PoissonGossip::new(
        UndecidedStateDynamics::new(k),
        config.clone(),
        SimSeed::from_u64(11),
    )
    .unwrap();
    let result = poisson.run(StopCondition::consensus().or_max_interactions(500_000_000));
    assert!(result.reached_consensus());
    // Continuous time ≈ interactions / n.
    let expected = result.interactions() as f64 / n as f64;
    let measured = poisson.continuous_time();
    assert!(
        (measured - expected).abs() / expected < 0.2,
        "continuous time {measured} vs interactions/n {expected}"
    );
}

#[test]
fn usd_beats_the_voter_process_from_a_tie() {
    // The Voter process needs Θ(n) parallel time from a two-way tie, the USD
    // only Θ(k log n): on a small instance the USD should be significantly
    // faster.
    let n = 1_500;
    let k = 2;
    let config = InitialConfig::new(n, k)
        .build(SimSeed::from_u64(12))
        .unwrap();
    let budget = 500_000_000;

    let mut usd = UsdSimulator::new(config.clone(), SimSeed::from_u64(13));
    let usd_time = usd.run_to_consensus(budget).parallel_time();

    let voter_time = SequentialSampler::new(Voter::new(k), config, SimSeed::from_u64(14))
        .run(StopCondition::consensus().or_max_interactions(budget))
        .parallel_time();

    assert!(
        usd_time * 2.0 < voter_time,
        "expected the USD ({usd_time:.1}) to be much faster than the Voter process ({voter_time:.1})"
    );
}

#[test]
fn gossip_and_population_usd_agree_on_the_winner_under_strong_bias() {
    let n = 2_000;
    let k = 5;
    let config = InitialConfig::new(n, k)
        .multiplicative_bias(4.0)
        .build(SimSeed::from_u64(15))
        .unwrap();

    let mut pp = UsdSimulator::new(config.clone(), SimSeed::from_u64(16));
    let pp_winner = pp.run_to_consensus(10_000_000_000).winner();

    let mut gossip = UsdGossip::new(&config, SimSeed::from_u64(17));
    let gossip_winner = gossip.run(1_000_000).winner();

    assert_eq!(pp_winner.map(|w| w.index()), Some(0));
    assert_eq!(gossip_winner.map(|w| w.index()), Some(0));
}
